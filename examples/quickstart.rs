//! Quickstart: evaluate MTTSF and communication cost for the paper's
//! default mission configuration, and find the optimal detection interval.
//!
//! Run with: `cargo run --release -p examples --example quickstart`

use examples::{pretty_duration, row};
use gcsids::config::SystemConfig;
use gcsids::metrics::evaluate;
use gcsids::sweep::sweep_tids;

fn main() {
    // The paper's §5 parameterization: 100 nodes, 500 m operational radius,
    // λq = 1/min, λc = 1/12h, p1 = p2 = 1%, m = 5 vote participants.
    let cfg = SystemConfig::paper_default();
    println!(
        "== point evaluation at TIDS = {:.0} s ==",
        cfg.detection.base_interval
    );
    let e = evaluate(&cfg).expect("evaluation");
    println!(
        "{}",
        row(
            "MTTSF",
            format!(
                "{:.3e} s ({})",
                e.mttsf_seconds,
                pretty_duration(e.mttsf_seconds)
            )
        )
    );
    println!(
        "{}",
        row(
            "C_total",
            format!("{:.3e} hop·bits/s", e.c_total_hop_bits_per_sec)
        )
    );
    println!(
        "{}",
        row(
            "P[failure by data leak (C1)]",
            format!("{:.3}", e.p_failure_c1)
        )
    );
    println!(
        "{}",
        row(
            "P[failure by Byzantine capture (C2)]",
            format!("{:.3}", e.p_failure_c2)
        )
    );
    println!("{}", row("CTMC states solved", e.state_count));

    println!("\n== cost breakdown (hop·bits/s) ==");
    let c = &e.cost_components;
    println!(
        "{}",
        row("group communication", format!("{:.3e}", c.group_comm))
    );
    println!("{}", row("status exchange", format!("{:.3e}", c.status)));
    println!(
        "{}",
        row("rekeying (join/leave/evict)", format!("{:.3e}", c.rekey))
    );
    println!("{}", row("voting IDS", format!("{:.3e}", c.ids)));
    println!("{}", row("beacons", format!("{:.3e}", c.beacon)));
    println!(
        "{}",
        row("partition/merge", format!("{:.3e}", c.partition_merge))
    );

    println!("\n== optimal detection interval (paper grid) ==");
    let series = sweep_tids(&cfg, SystemConfig::paper_tids_grid(), "default").expect("sweep");
    for p in &series.points {
        println!(
            "  TIDS = {:>5.0} s  →  MTTSF = {:.3e} s, C_total = {:.3e}",
            p.t_ids, p.evaluation.mttsf_seconds, p.evaluation.c_total_hop_bits_per_sec
        );
    }
    let best = series.optimal_tids_for_mttsf().expect("non-empty sweep");
    let cheapest = series.optimal_tids_for_cost().expect("non-empty sweep");
    println!("\nbest TIDS for survivability: {best:.0} s; cheapest TIDS: {cheapest:.0} s");
}
