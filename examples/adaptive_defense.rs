//! Adaptive defense: the paper's closed loop — classify the attacker's
//! strength from observed compromise pacing, answer with the *matching*
//! detection function, and pick the MTTSF-optimal interval from the
//! analytic response surface.
//!
//! The scenario: the defender initially assumes a linear attacker, but the
//! actual adversary compromises nodes at polynomially accelerating speed.
//!
//! Run with: `cargo run --release -p examples --example adaptive_defense`

use examples::row;
use gcsids::config::SystemConfig;
use gcsids::sweep::sweep_tids;
use ids::adaptive::{AdaptiveController, ResponseSurface};
use ids::functions::RateShape;
use numerics::dist::sample_exponential;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut cfg = SystemConfig::paper_default();

    // --- 1. ground truth: a polynomial attacker ---------------------------
    let truth = RateShape::Polynomial;
    cfg.attacker.shape = truth;
    println!(
        "ground-truth attacker: {} (hidden from the defender)",
        truth.name()
    );

    // --- 2. the defender observes compromise events -----------------------
    let mut controller = AdaptiveController::new(3.0, cfg.detection.base_interval);
    // detlint::allow(D003): pedagogical demo with a fixed literal seed — not part of the replication pipeline
    let mut rng = StdRng::seed_from_u64(7);
    let mut trusted = cfg.node_count;
    let mut undetected = 0u32;
    for i in 0..60 {
        let rate = cfg.attacker.rate(trusted, undetected);
        let dt = sample_exponential(&mut rng, rate);
        trusted -= 1;
        undetected += 1;
        controller.observe(dt, (trusted + undetected) as f64 / trusted as f64);
        if i % 15 == 14 {
            let est = controller.attacker().expect("enough observations");
            println!(
                "  after {:>2} compromises: classified as {:<12} (λ̂c = {:.2e}/s)",
                i + 1,
                est.shape.name(),
                est.base_rate
            );
        }
    }

    // --- 3. build the response surface for the matched defense ------------
    let matched_shape = controller.matching_shape();
    println!(
        "\ndefender selects {} detection (matching rule)",
        matched_shape.name()
    );
    let matched_cfg = cfg.with_detection_shape(matched_shape);
    let series =
        sweep_tids(&matched_cfg, SystemConfig::paper_tids_grid(), "matched").expect("sweep");
    let surface = ResponseSurface::new(series.mttsf_surface());
    let profile = controller.recommend(Some(&surface));
    println!(
        "{}",
        row("recommended detection shape", profile.shape.name())
    );
    println!(
        "{}",
        row(
            "recommended base interval",
            format!("{:.0} s", profile.base_interval)
        )
    );

    // --- 4. compare against a naive (mismatched, default-interval) defense -
    let naive =
        gcsids::metrics::evaluate(&cfg.with_detection_shape(RateShape::Linear).with_tids(120.0))
            .expect("naive evaluation");
    let adapted = gcsids::metrics::evaluate(
        &cfg.with_detection_shape(profile.shape)
            .with_tids(profile.base_interval),
    )
    .expect("adapted evaluation");
    println!("\n== survivability comparison ==");
    println!(
        "{}",
        row(
            "naive (linear @ 120 s) MTTSF",
            format!("{:.3e} s", naive.mttsf_seconds)
        )
    );
    println!(
        "{}",
        row("adaptive MTTSF", format!("{:.3e} s", adapted.mttsf_seconds))
    );
    println!(
        "{}",
        row(
            "improvement",
            format!(
                "{:.1}%",
                100.0 * (adapted.mttsf_seconds / naive.mttsf_seconds - 1.0)
            )
        )
    );
}
