//! Analytic-vs-simulation validation at example scale: the SPN solution,
//! the SPN token-game simulation, the protocol-level DES, and the
//! mobility-coupled DES should agree on MTTSF (the DESes execute real
//! votes and GDH rekeys rather than the analytic Pfn/Pfp; the mobility
//! variant additionally replaces the birth–death group dynamics with live
//! random-waypoint connectivity).
//!
//! Run with: `cargo run --release -p examples --example validate_des`

use examples::row;
use gcsids::config::SystemConfig;
use gcsids::des::{run_des_replications, DesConfig};
use gcsids::des_mobility::{run_mobility_des_replications, MobilityDesConfig};
use gcsids::metrics::evaluate;
use gcsids::model::build_model;
use manet::{CalibrationConfig, MobilityConfig};
use spn::reward::RewardSet;
use spn::sim::{SimOptions, Simulator};

fn main() {
    // Accelerated system: 30 nodes, base compromise every 30 minutes.
    let mut cfg = SystemConfig::paper_default();
    cfg.node_count = 30;
    cfg.attacker.base_rate = 1.0 / 1_800.0;
    cfg.detection = cfg.detection.with_interval(60.0);
    let replications = 3_000;

    // The shipped group-dynamics calibration is for the paper's 100-node
    // density; this example runs 30 nodes, which partitions far more often.
    // Recalibrate so the analytic model and the mobility-coupled simulator
    // describe the same physical network.
    println!("recalibrating group dynamics for 30 nodes …");
    let cal = manet::calibrate(
        &CalibrationConfig {
            duration: 8_000.0,
            seeds: 4,
            mobility: MobilityConfig {
                node_count: 30,
                ..Default::default()
            },
            ..Default::default()
        },
        2009,
    );
    cfg.apply_calibration(&cal);
    println!(
        "  ν_p = {:.3e}/s, ν_m = {:.3e}/s, hops = {:.2}\n",
        cal.partition_rate_per_group, cal.merge_rate_per_group, cal.mean_hops
    );

    let analytic = evaluate(&cfg).expect("analytic");
    println!(
        "{}",
        row(
            "analytic MTTSF",
            format!("{:.4e} s", analytic.mttsf_seconds)
        )
    );
    println!(
        "{}",
        row(
            "analytic failure split C1/C2",
            format!("{:.2}/{:.2}", analytic.p_failure_c1, analytic.p_failure_c2)
        )
    );

    let model = build_model(&cfg);
    let rewards = RewardSet::new();
    let sim = Simulator::new(&model.net, &rewards, SimOptions::default());
    let tg = sim.run_replications(replications, 42).expect("token game");
    let ci = tg.mtta_ci(0.95);
    println!(
        "{}",
        row(
            "SPN token game MTTSF (95% CI)",
            format!(
                "{:.4e} ± {:.2e} s (n={replications})",
                ci.mean, ci.half_width
            )
        )
    );
    println!(
        "{}",
        row(
            "analytic inside token-game CI",
            ci.contains(analytic.mttsf_seconds)
        )
    );

    let des = run_des_replications(&DesConfig::new(cfg.clone()), replications, 43);
    let dci = des.mttsf.confidence_interval(0.95);
    let deviation = (dci.mean / analytic.mttsf_seconds - 1.0) * 100.0;
    println!(
        "{}",
        row(
            "protocol DES MTTSF (95% CI)",
            format!("{:.4e} ± {:.2e} s", dci.mean, dci.half_width)
        )
    );
    println!(
        "{}",
        row("protocol DES deviation", format!("{deviation:+.1}%"))
    );
    println!(
        "{}",
        row(
            "protocol DES failure split C1/C2",
            format!("{}/{}", des.c1_failures, des.c2_failures)
        )
    );
    println!(
        "{}",
        row(
            "protocol DES mean cost rate",
            format!("{:.4e} hop·bits/s", des.cost_rate.mean())
        )
    );
    println!(
        "{}",
        row(
            "analytic C_total",
            format!("{:.4e} hop·bits/s", analytic.c_total_hop_bits_per_sec)
        )
    );

    // The expensive, fully integrated check: groups from live connectivity.
    let mut mob = MobilityDesConfig::new(cfg.clone());
    mob.dt = 2.0;
    let m = run_mobility_des_replications(&mob, 300, 44);
    let mci = m.mttsf.confidence_interval(0.95);
    println!(
        "{}",
        row(
            "mobility-coupled DES MTTSF (95% CI)",
            format!("{:.4e} ± {:.2e} s (n=300)", mci.mean, mci.half_width)
        )
    );
    println!(
        "{}",
        row(
            "mobility DES deviation",
            format!("{:+.1}%", (mci.mean / analytic.mttsf_seconds - 1.0) * 100.0)
        )
    );
    println!(
        "{}",
        row(
            "observed partition rate",
            format!(
                "{:.2e} /s (calibrated: {:.2e})",
                m.partition_rate.mean(),
                cfg.partition_rate_per_group
            )
        )
    );
}
