//! Engine tour: one `ScenarioSpec`, four backends, one report shape.
//!
//! Runs an accelerated-attack scenario through the exact CTMC solver, the
//! SPN Monte-Carlo simulator, the protocol DES, and the mobility DES, and
//! prints the unified reports side by side — the cross-validation story of
//! the paper in a dozen lines. Also demonstrates the JSON round-trip that
//! lets scenario files live outside the binary.
//!
//! Run with: `cargo run --release -p examples --example engine_tour`

use engine::{BackendKind, Runner, ScenarioGrid, ScenarioSpec};
use examples::{pretty_duration, row};

fn main() {
    // An accelerated attacker on a small group keeps every backend fast.
    let mut base = ScenarioSpec::paper_default(BackendKind::Exact);
    base.name = "tour".into();
    base.system.node_count = 20;
    base.system.vote_participants = 3;
    base.system.attacker.base_rate = 1.0 / 1800.0; // one compromise / 30 min
    base.stochastic.sampling = engine::SamplingPlan::Fixed(400);
    base.stochastic.max_time = 1.0e6;
    base.mobility.dt = 2.0;

    // The spec is plain data: it survives a JSON round-trip unchanged.
    let json = base.to_json();
    let parsed = ScenarioSpec::from_json(&json).expect("round-trip");
    assert_eq!(parsed, base);
    println!("spec JSON ({} bytes): {}…\n", json.len(), &json[..72]);

    let specs = ScenarioGrid::new(base)
        .backends(&BackendKind::all())
        .expand();
    let reports = Runner::new().run_batch(&specs).expect("engine run");

    for r in &reports {
        println!("== {} ==", r.backend.name());
        let mttsf = match r.mttsf.ci {
            Some((lo, hi)) => format!(
                "{} (95% CI {} – {})",
                pretty_duration(r.mttsf.value),
                pretty_duration(lo),
                pretty_duration(hi)
            ),
            None => format!("{} (exact)", pretty_duration(r.mttsf.value)),
        };
        println!("{}", row("MTTSF", mttsf));
        println!(
            "{}",
            row("C_total", format!("{:.3e} hop·bits/s", r.c_total.value))
        );
        println!(
            "{}",
            row(
                "failure split C1 / C2 / other",
                format!(
                    "{:.2} / {:.2} / {:.2}",
                    r.failure.p_c1, r.failure.p_c2, r.failure.p_other
                )
            )
        );
        if let Some(states) = r.state_count {
            println!("{}", row("CTMC states", states));
        }
        if let Some(n) = r.replications {
            println!(
                "{}",
                row(
                    "replications (censored)",
                    format!("{n} ({})", r.censored.unwrap_or(0))
                )
            );
        }
        println!("{}", row("wall time", format!("{:.2} s", r.wall_seconds)));
        println!();
    }
    println!("all four evaluators ran from the same ScenarioSpec.");
}
