//! Shared helpers for the runnable examples.

/// Render a simple two-column table row.
pub fn row(label: &str, value: impl std::fmt::Display) -> String {
    format!("{label:<44} {value}")
}

/// Format seconds as a human-readable duration.
pub fn pretty_duration(seconds: f64) -> String {
    if seconds >= 86_400.0 {
        format!("{:.2} days", seconds / 86_400.0)
    } else if seconds >= 3_600.0 {
        format!("{:.2} hours", seconds / 3_600.0)
    } else if seconds >= 60.0 {
        format!("{:.2} minutes", seconds / 60.0)
    } else {
        format!("{seconds:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(pretty_duration(30.0), "30.00 s");
        assert_eq!(pretty_duration(120.0), "2.00 minutes");
        assert_eq!(pretty_duration(7_200.0), "2.00 hours");
        assert_eq!(pretty_duration(172_800.0), "2.00 days");
    }

    #[test]
    fn row_alignment() {
        let r = row("x", 1);
        assert!(r.starts_with('x'));
        assert!(r.ends_with('1'));
    }
}
