//! Collusion sensitivity study (extension beyond the paper, which fixes
//! full collusion): how much of the voting IDS's error rate is due to the
//! adversary coordinating votes, and how much survivability does each
//! increment of collusion cost the defender?
//!
//! Also contrasts GDH.2 vs GDH.3 rekey pricing, since eviction-heavy
//! regimes make the key agreement choice visible in Ĉtotal.
//!
//! Run with: `cargo run --release -p examples --example collusion_study`

use examples::row;
use gcsids::config::{KeyAgreementProtocol, SystemConfig};
use gcsids::metrics::evaluate;
use ids::voting::{
    p_false_negative_with_collusion, p_false_positive_with_collusion, CollusionModel,
};

fn main() {
    // --- voting error rates vs collusion probability ------------------------
    println!("== voting error rates in a 30-good / 8-bad group (m = 5, p1 = p2 = 1%) ==");
    println!("{:>6} {:>12} {:>12}", "q", "Pfp", "Pfn");
    for i in 0..=5 {
        let q = i as f64 / 5.0;
        let c = CollusionModel::Probabilistic(q);
        let fp = p_false_positive_with_collusion(30, 8, 5, 0.01, c);
        let fnn = p_false_negative_with_collusion(30, 8, 5, 0.01, c);
        println!("{q:>6.1} {fp:>12.4e} {fnn:>12.4e}");
    }

    // --- end-to-end MTTSF vs collusion -------------------------------------
    // Per-vote error rates react strongly to collusion (table above), yet
    // the system-level effect is small: colluding voters must actually be
    // *drawn* into the m-participant sample in force, which is rare before
    // the C2 boundary absorbs the system, and the C1 data-leak channel
    // bypasses voting entirely. The squad-sized group below shows the
    // largest effect; at the paper's N = 100 it is under 1%. This
    // robustness-by-sampling is an emergent property of the paper's
    // protocol worth knowing when budgeting m.
    println!("\n== system-level effect (N = 12, accelerated attacker, TIDS = 600 s) ==");
    let mut base = SystemConfig::paper_default().with_tids(600.0);
    base.node_count = 12;
    base.attacker.base_rate = 1.0 / 1_800.0;
    for (label, model) in [
        ("no collusion", CollusionModel::None),
        ("q = 0.5", CollusionModel::Probabilistic(0.5)),
        ("full collusion (paper)", CollusionModel::Full),
    ] {
        let mut cfg = base.clone();
        cfg.collusion = model;
        let e = evaluate(&cfg).expect("evaluation");
        println!(
            "{}",
            row(
                label,
                format!(
                    "MTTSF = {:.4e} s, C_total = {:.4e}",
                    e.mttsf_seconds, e.c_total_hop_bits_per_sec
                )
            )
        );
    }

    // --- key agreement protocol choice --------------------------------------
    println!("\n== rekey pricing at paper scale: GDH.2 (paper) vs GDH.3 ==");
    let paper = SystemConfig::paper_default().with_tids(60.0);
    for (label, proto) in [
        ("GDH.2", KeyAgreementProtocol::Gdh2),
        ("GDH.3", KeyAgreementProtocol::Gdh3),
    ] {
        let mut cfg = paper.clone();
        cfg.key_agreement = proto;
        let e = evaluate(&cfg).expect("evaluation");
        println!(
            "{}",
            row(
                label,
                format!(
                    "C_rekey = {:.4e}, C_mp = {:.4e}, C_total = {:.4e} hop·bits/s",
                    e.cost_components.rekey,
                    e.cost_components.partition_merge,
                    e.c_total_hop_bits_per_sec
                )
            )
        );
    }
}
