//! A tour of the SPN engine on textbook models — shows the substrate is a
//! general stochastic Petri net tool, not just the paper's fixed net.
//!
//! Run with: `cargo run --release -p examples --example spn_playground`

use examples::row;
use spn::ctmc::{Ctmc, TransientOptions};
use spn::model::{SpnBuilder, TransitionDef};
use spn::reach::{explore, ExploreOptions};
use spn::reward::{RateReward, RewardSet};
use spn::sim::{SimOptions, Simulator};

fn main() {
    // --- M/M/2/10 queue: steady-state mean queue length ---------------------
    let mut b = SpnBuilder::new();
    let q = b.add_place("queue", 0);
    let (lambda, mu, servers, cap) = (3.0, 2.0, 2u32, 10u32);
    b.add_transition(
        TransitionDef::timed_const("arrive", lambda)
            .output(q, 1)
            .inhibitor(q, cap),
    );
    b.add_transition(
        TransitionDef::timed("serve", move |m| mu * m.tokens(q).min(servers) as f64).input(q, 1),
    );
    let net = b.build().expect("valid net");
    let graph = explore(&net, &ExploreOptions::default()).expect("finite");
    let ctmc = Ctmc::from_graph(&graph).expect("ctmc");
    let pi = ctmc.steady_state().expect("ergodic");
    let mean_len: f64 = graph
        .states
        .iter()
        .zip(&pi)
        .map(|(m, p)| m.tokens(q) as f64 * p)
        .sum();
    println!("== M/M/2/10 queue (λ=3, μ=2) ==");
    println!("{}", row("states", graph.state_count()));
    println!(
        "{}",
        row("steady-state mean queue length", format!("{mean_len:.4}"))
    );
    println!(
        "{}",
        row(
            "P[queue full]",
            format!(
                "{:.4e}",
                pi[graph
                    .states
                    .iter()
                    .position(|m| m.tokens(q) == cap)
                    .expect("full state reachable")]
            )
        )
    );

    // --- dependable system: MTTF with repair --------------------------------
    let mut b = SpnBuilder::new();
    let up = b.add_place("up", 3);
    let down = b.add_place("down", 0);
    b.add_transition(
        TransitionDef::timed("fail", move |m| 0.01 * m.tokens(up) as f64)
            .input(up, 1)
            .output(down, 1),
    );
    b.add_transition(
        TransitionDef::timed(
            "repair",
            move |m| if m.tokens(down) > 0 { 0.1 } else { 0.0 },
        )
        .input(down, 1)
        .output(up, 1)
        // single repair crew, system dead at 0 working units
        .guard(move |m| m.tokens(up) > 0),
    );
    b.absorbing_when(move |m| m.tokens(up) == 0);
    let net = b.build().expect("valid net");
    let graph = explore(&net, &ExploreOptions::default()).expect("finite");
    let ctmc = Ctmc::from_graph(&graph).expect("ctmc");
    let analysis = ctmc.mean_time_to_absorption().expect("absorbing");
    println!("\n== 3-unit repairable system (fail 0.01/unit, repair 0.1) ==");
    println!(
        "{}",
        row(
            "MTTF (analytic)",
            format!("{:.2} time units", analysis.mtta)
        )
    );

    // confirm with the token-game simulator and an uptime reward
    let rewards =
        RewardSet::new().with_rate(RateReward::new("units_up", move |m| m.tokens(up) as f64));
    let sim = Simulator::new(&net, &rewards, SimOptions::default());
    let stats = sim.run_replications(100_000, 7).expect("simulate");
    let ci = stats.mtta_ci(0.95);
    println!(
        "{}",
        row(
            "MTTF (simulated, 95% CI)",
            format!("{:.2} ± {:.2}", ci.mean, ci.half_width)
        )
    );
    println!("{}", row("analytic inside CI", ci.contains(analysis.mtta)));
    println!(
        "{}",
        row(
            "expected unit-seconds until failure",
            format!("{:.2}", stats.accumulated[0].mean())
        )
    );

    // transient availability at t = 10
    let pi10 = ctmc.transient_distribution(10.0, &TransientOptions::default());
    let avail: f64 = graph
        .states
        .iter()
        .zip(&pi10)
        .filter(|(m, _)| m.tokens(up) > 0)
        .map(|(_, p)| p)
        .sum();
    println!("{}", row("P[alive at t = 10]", format!("{avail:.6}")));

    // structural check: tokens conserved between up/down
    let report = spn::structural::analyze(&net);
    println!(
        "{}",
        row("P-invariants", format!("{:?}", report.p_invariants))
    );
}
