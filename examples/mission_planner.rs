//! Mission planning: the paper's design-time use case. Enumerate the
//! (m, TIDS) design space, compute the MTTSF-vs-cost Pareto frontier, and
//! answer the two planning questions the paper poses: the cheapest design
//! that survives the mission, and the most survivable design under a
//! traffic budget.
//!
//! Run with: `cargo run --release -p examples --example mission_planner`

use examples::pretty_duration;
use gcsids::config::SystemConfig;
use gcsids::pareto::{best_mttsf_under_cost, cheapest_meeting_mttsf, design_space, pareto_front};

fn main() {
    let cfg = SystemConfig::paper_default();
    let points = design_space(
        &cfg,
        SystemConfig::paper_m_grid(),
        SystemConfig::paper_tids_grid(),
    )
    .expect("design space evaluation");
    println!("evaluated {} (m, TIDS) designs\n", points.len());

    println!("== Pareto frontier (maximize MTTSF, minimize C_total) ==");
    println!(
        "{:>3} {:>8} {:>16} {:>18}",
        "m", "TIDS(s)", "MTTSF", "C_total(hop·b/s)"
    );
    let front = pareto_front(&points);
    for p in &front {
        println!(
            "{:>3} {:>8.0} {:>16} {:>18.4e}",
            p.m,
            p.t_ids,
            pretty_duration(p.evaluation.mttsf_seconds),
            p.evaluation.c_total_hop_bits_per_sec
        );
    }
    println!(
        "({} of {} designs are Pareto-efficient)\n",
        front.len(),
        points.len()
    );

    // Planning question 1: survive a two-week mission as cheaply as possible.
    let mission = 14.0 * 86_400.0;
    match cheapest_meeting_mttsf(&points, mission) {
        Some(p) => println!(
            "cheapest design surviving {}: m = {}, TIDS = {:.0} s ({} at {:.3e} hop·bits/s)",
            pretty_duration(mission),
            p.m,
            p.t_ids,
            pretty_duration(p.evaluation.mttsf_seconds),
            p.evaluation.c_total_hop_bits_per_sec
        ),
        None => println!("no design survives {}", pretty_duration(mission)),
    }

    // Planning question 2: the most survivable design under 0.9 Mhop·bit/s.
    let budget = 9.0e5;
    match best_mttsf_under_cost(&points, budget) {
        Some(p) => println!(
            "most survivable under {budget:.1e} hop·bits/s: m = {}, TIDS = {:.0} s ({})",
            p.m,
            p.t_ids,
            pretty_duration(p.evaluation.mttsf_seconds)
        ),
        None => println!("no design fits the {budget:.1e} hop·bits/s budget"),
    }
}
