//! Mobility calibration: reproduce the paper's §4.1 step "group
//! merging/partitioning rates obtained by simulation", then feed the
//! measured rates into the analytic model and show their (small) effect.
//!
//! Run with: `cargo run --release -p examples --example mobility_calibration`

use examples::row;
use gcsids::config::SystemConfig;
use gcsids::metrics::evaluate;
use manet::{calibrate, CalibrationConfig, MobilityConfig};

fn main() {
    // A sparser radio range than the paper default (250 m) so partition /
    // merge dynamics are actually visible within a short demo run; at the
    // paper's density the 100-node network is connected almost always
    // (partitions ~2e-5/s — see EXPERIMENTS.md).
    let cal_cfg = CalibrationConfig {
        duration: 5_000.0,
        seeds: 4,
        mobility: MobilityConfig::default(),
        radio_range: 150.0,
        ..Default::default()
    };
    println!(
        "simulating {} nodes, {:.0} m disc, {:.0} m radio range, {} × {:.0} s …",
        cal_cfg.mobility.node_count,
        cal_cfg.mobility.area_radius,
        cal_cfg.radio_range,
        cal_cfg.seeds,
        cal_cfg.duration
    );
    let cal = calibrate(&cal_cfg, 2009);
    println!(
        "{}",
        row(
            "mean number of groups",
            format!("{:.4}", cal.mean_group_count)
        )
    );
    println!(
        "{}",
        row("mean group size", format!("{:.2}", cal.mean_group_size))
    );
    println!(
        "{}",
        row(
            "partition rate ν_p",
            format!("{:.3e} /s per group", cal.partition_rate_per_group)
        )
    );
    println!(
        "{}",
        row(
            "merge rate ν_m",
            format!("{:.3e} /s per group", cal.merge_rate_per_group)
        )
    );
    println!("{}", row("mean hop count", format!("{:.2}", cal.mean_hops)));

    // Feed into the analytic model.
    let mut cfg = SystemConfig::paper_default();
    let before = evaluate(&cfg).expect("shipped calibration");
    cfg.apply_calibration(&cal);
    let after = evaluate(&cfg).expect("fresh calibration");
    println!("\n== analytic metrics: shipped vs freshly calibrated dynamics ==");
    println!(
        "{}",
        row("MTTSF (shipped)", format!("{:.4e} s", before.mttsf_seconds))
    );
    println!(
        "{}",
        row("MTTSF (fresh)", format!("{:.4e} s", after.mttsf_seconds))
    );
    println!(
        "{}",
        row(
            "C_total (shipped)",
            format!("{:.4e}", before.c_total_hop_bits_per_sec)
        )
    );
    println!(
        "{}",
        row(
            "C_total (fresh)",
            format!("{:.4e}", after.c_total_hop_bits_per_sec)
        )
    );
}
