//! Offline, dependency-free subset of the `criterion` benchmarking API.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! implements the surface the workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop: a short calibration pass picks an
//! iteration count per sample, `sample_size` samples are taken, and the
//! min / mean / max time per iteration is printed.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier (`function name` / `parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { name: s }
    }
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Time the routine. The return value is passed through [`black_box`]
    /// so the computation cannot be optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: aim for samples of at least ~2 ms, cap total work.
        let t0 = Instant::now();
        black_box(routine());
        let one = t0.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(2);
        self.iters_per_sample = (target.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{label:<48} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Measurement time hint (accepted for API compatibility; the stub's
    /// calibration ignores it).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.name));
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_count);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.name));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_sample_count: usize,
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_count = if self.default_sample_count == 0 {
            10
        } else {
            self.default_sample_count
        };
        BenchmarkGroup {
            name: name.into(),
            sample_count,
            _parent: self,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(if self.default_sample_count == 0 {
            10
        } else {
            self.default_sample_count
        });
        f(&mut b);
        b.report(name);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("n", 7), &7u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2e-6).ends_with("µs"));
        assert!(fmt_time(2e-9).ends_with("ns"));
    }
}
