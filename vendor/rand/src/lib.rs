//! Offline, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! provides exactly the surface the workspace uses: [`SeedableRng`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`, `sample`), [`rngs::StdRng`],
//! [`rngs::SmallRng`], and [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! Both RNGs are xoshiro256++ generators seeded through SplitMix64 — a
//! different stream than upstream `rand`, but deterministic per seed, which
//! is all the simulators require.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 uniformly random bits per call.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding from a `u64` (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64` in `[0,1)`, uniform `u64`/`u32`, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Sample from an explicit distribution object.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// xoshiro256++ core shared by both named generators.
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the reference seeding procedure.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Stand-in for `rand::rngs::StdRng` (xoshiro256++ here).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    /// Stand-in for `rand::rngs::SmallRng` (xoshiro256++ here).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_u64(seed))
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Domain-separate from StdRng so the two families differ.
            Self(Xoshiro256::from_u64(seed ^ 0x5D4B_9EF2_A3C1_0087))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Distributions and range sampling.
pub mod distributions {
    #[allow(unused_imports)]
    use super::RngCore;
    use super::{Range, RangeInclusive, Rng};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a primitive type.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Ranges that can produce one uniform sample.
    pub trait SampleRange<T> {
        /// Draw a uniform sample from the range.
        ///
        /// # Panics
        /// Panics on an empty range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Uniform integer in `[0, bound)` by widening multiply (Lemire).
    fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + bounded_u64(rng, span) as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
                }
            }
        )*};
    }

    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "empty range");
            let u: f64 = Standard.sample(rng);
            self.start + u * (self.end - self.start)
        }
    }

    impl SampleRange<f64> for RangeInclusive<f64> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range");
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
            lo + u * (hi - lo)
        }
    }

    impl SampleRange<f32> for Range<f32> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "empty range");
            let u: f32 = Standard.sample(rng);
            self.start + u * (self.end - self.start)
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::Rng;

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
                Some(&self[idx])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Convenience prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn std_and_small_streams_differ() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_f64_in_range_and_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_int_bounds_hit() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(-3i32..3);
            assert!((-3..3).contains(&v));
        }
        for _ in 0..100 {
            let v = rng.gen_range(2u64..10);
            assert!((2..10).contains(&v));
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs = [1, 2, 3, 4];
        assert!(xs.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements virtually never shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
