//! Offline, dependency-free subset of the `proptest` property-testing API.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! supports the surface the workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! attribute), range/tuple/`any::<bool>()`/`collection::vec` strategies, and
//! the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test name (fully reproducible runs), and
//! failing inputs are reported but not shrunk.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary label (the test name).
    pub fn from_label(label: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in [0, 1].
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derive a strategy by transforming generated values.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span.saturating_add(1)) as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_unit() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.next_unit() * (hi - lo)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the `proptest::prelude::*` import provides.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property body; on failure the case (with its inputs) is
/// reported and the test fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)*), file!(), line!()
            ));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs,
                file!(),
                line!()
            ));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                lhs,
                file!(),
                line!()
            ));
        }
    }};
}

/// Discard the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Define property tests. Each function parameter is drawn from its strategy
/// for every generated case.
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute. Extra attributes (e.g.
    // `#[should_panic]`) go *after* `#[test]` to keep parsing unambiguous.
    (
        #![proptest_config($cfg:expr)]
        $(
            #[test]
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest!(@impl ($cfg); $($(#[$meta])* fn $name($($arg in $strat),+) $body)*);
    };
    // Without a config attribute.
    (
        $(
            #[test]
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default());
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> ::std::result::Result<(), String> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("property {} failed on case {}/{} [{}]: {}",
                            stringify!($name), case + 1, config.cases, inputs, msg);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -2.5f64..2.5, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            let _: bool = b;
        }

        #[test]
        fn vec_strategy_lengths(xs in crate::collection::vec(0i32..5, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            for &x in &xs {
                prop_assert!((0..5).contains(&x));
            }
        }

        #[test]
        fn tuple_strategies_work(xs in crate::collection::vec((0usize..4, 0usize..4), 0..6)) {
            for &(a, b) in &xs {
                prop_assert!(a < 4 && b < 4);
            }
        }

        #[test]
        fn assume_discards(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_attribute_accepted(x in 0u32..3) {
            prop_assert!(x < 3);
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "property")]
        fn failing_property_panics(x in 0u32..4) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    fn deterministic_generation() {
        let mut a = TestRng::from_label("same");
        let mut b = TestRng::from_label("same");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
