//! Offline, dependency-free subset of the `rayon` parallel-iterator API.
//!
//! The build environment has no access to crates.io, so this vendored stub
//! implements the surface the workspace uses — `par_iter()` /
//! `into_par_iter()` followed by `.map(...).collect()` — with real
//! parallelism on `std::thread::scope`. Items are materialized eagerly,
//! split into one contiguous chunk per available core, mapped on worker
//! threads, and reassembled in input order, so outputs are identical to the
//! sequential result (the workspace's deterministic per-replication seeding
//! does not depend on scheduling).

use std::num::NonZeroUsize;

/// Everything the workspace imports from `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

/// Number of worker threads in the (implicit) global pool — the same count
/// `parallel_map` splits work across. API-compatible with real rayon's
/// `current_num_threads`, so callers can pick sequential fast paths when
/// only one worker exists.
pub fn current_num_threads() -> usize {
    thread_count()
}

/// Number of worker threads to use (`RAYON_NUM_THREADS` override honored).
fn thread_count() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

/// Order-preserving parallel map over owned items.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = thread_count().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    // Split from the back so each drain is O(chunk).
    while items.len() > chunk {
        let tail = items.split_off(items.len() - chunk);
        chunks.push(tail);
    }
    chunks.push(items);
    chunks.reverse(); // restore input order: first chunk = first items

    let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            match h.join() {
                Ok(r) => results.push(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    results.into_iter().flatten().collect()
}

/// An eager "parallel iterator" holding its items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator (map is deferred until `collect`).
pub struct Map<T, F> {
    items: Vec<T>,
    f: F,
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Consume `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
range_into_par!(u32, u64, usize, i32, i64);

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Collection types constructible from a parallel map's output.
pub trait FromParallelIterator<T>: Sized {
    /// Assemble from results in input order.
    fn from_ordered_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(v: Vec<T>) -> Self {
        v
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_vec(v: Vec<Result<T, E>>) -> Self {
        v.into_iter().collect()
    }
}

/// The operations the workspace chains on a parallel iterator.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;

    /// Map each item (executed in parallel at `collect`).
    fn map<R, F>(self, f: F) -> Map<Self::Item, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send;
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn map<R, F>(self, f: F) -> Map<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        Map {
            items: self.items,
            f,
        }
    }
}

impl<T: Send, F> Map<T, F> {
    /// Run the map in parallel and collect results in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(T) -> R + Sync + Send,
        R: Send,
        C: FromParallelIterator<R>,
    {
        C::from_ordered_vec(parallel_map(self.items, &self.f))
    }

    /// Parallel map followed by a sequential sum.
    pub fn sum<R>(self) -> R
    where
        F: Fn(T) -> R + Sync + Send,
        R: Send + std::iter::Sum<R>,
    {
        parallel_map(self.items, &self.f).into_iter().sum()
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000u64).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u64 * 2);
        }
    }

    #[test]
    fn par_iter_over_slice() {
        let xs = vec![1.0f64, 2.0, 3.0];
        let squares: Vec<f64> = xs.par_iter().map(|&x| x * x).collect();
        assert_eq!(squares, vec![1.0, 4.0, 9.0]);
    }

    #[test]
    fn result_collect_short_circuits_to_first_error() {
        let r: Result<Vec<u32>, String> = (0..100u32)
            .into_par_iter()
            .map(|i| {
                if i == 57 {
                    Err(format!("bad {i}"))
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(r.unwrap_err(), "bad 57");
        let ok: Result<Vec<u32>, String> = (0..10u32).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 10);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn parallel_sum() {
        let s: u64 = (0..101u64).into_par_iter().map(|i| i).sum();
        assert_eq!(s, 5050);
    }
}
