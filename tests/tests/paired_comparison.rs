//! Golden-fixture and property tests for the CRN-paired A/B comparison
//! engine.
//!
//! `fixtures/comparisons/` holds a committed [`engine::ComparisonReport`]
//! produced by `engine::compare` on two committed spec fixtures. The
//! replication engine is deterministic (seeded counter-based RNG, no
//! wall-clock in the report), so the golden must be reproduced
//! byte-for-byte by recomputing the comparison — any drift is a behavior
//! change in the backends or the pairing, not noise. The same fixture
//! pins the headline acceptance number: at an identical replication
//! budget, the paired Δ-interval is tighter than differencing two
//! independent runs (see `results/paired_ab.md`).
//!
//! Regenerate after an intentional change with:
//! `cargo test -p integration-tests regenerate_comparison_fixtures -- --ignored`

use engine::{compare, BackendKind, ComparisonReport, RunBudget, ScenarioSpec};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// A committed spec fixture, re-targeted at a stochastic backend (the
/// committed files carry the exact backend; `compare` needs replications).
fn spec_on(name: &str, backend: BackendKind) -> ScenarioSpec {
    let path = fixtures_dir().join("specs").join(name);
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (run regenerate_fixtures)", path.display()));
    let mut spec = ScenarioSpec::from_json(text.trim_end()).unwrap();
    spec.backend = backend;
    spec
}

/// The one committed comparison: burst adversary vs baseline on the
/// protocol DES, full 400-pair fixture budget.
fn golden_comparison() -> ComparisonReport {
    let base = spec_on("ab-baseline.json", BackendKind::Des);
    let variant = spec_on("ab-burst.json", BackendKind::Des);
    compare(&base, &variant, &RunBudget::default()).unwrap()
}

const GOLDEN: &str = "ab-baseline-vs-burst-des.json";

#[test]
#[ignore = "fixture regeneration tool, not a check"]
fn regenerate_comparison_fixtures() {
    let dir = fixtures_dir().join("comparisons");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join(GOLDEN), golden_comparison().to_json() + "\n").unwrap();
}

#[test]
fn comparison_golden_matches_recomputation_byte_for_byte() {
    let path = fixtures_dir().join("comparisons").join(GOLDEN);
    let text = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (run regenerate_comparison_fixtures)",
            path.display()
        )
    });
    assert_eq!(
        golden_comparison().to_json(),
        text.trim_end(),
        "committed comparison golden drifted from recomputation"
    );
    // and the committed bytes round-trip through the decoder canonically
    let parsed = ComparisonReport::from_json(text.trim_end()).unwrap();
    assert_eq!(parsed.to_json(), text.trim_end());
}

/// The acceptance criterion for the pairing itself: on the committed
/// fixture, at the same replication budget, differencing per replication
/// yields a measurably tighter ΔMTTSF (and Δcost) interval than
/// differencing two independent runs.
#[test]
fn paired_interval_beats_unpaired_on_committed_fixture() {
    let path = fixtures_dir().join("comparisons").join(GOLDEN);
    let text = fs::read_to_string(&path).unwrap();
    let report = ComparisonReport::from_json(text.trim_end()).unwrap();
    for (metric, d) in [
        ("delta_mttsf", &report.delta_mttsf),
        ("delta_cost", &report.delta_cost),
    ] {
        assert!(
            d.paired_halfwidth.is_finite() && d.paired_halfwidth > 0.0,
            "{metric}: degenerate paired half-width {}",
            d.paired_halfwidth
        );
        assert!(
            d.paired_halfwidth < d.unpaired_halfwidth,
            "{metric}: paired ±{} is not tighter than unpaired ±{}",
            d.paired_halfwidth,
            d.unpaired_halfwidth
        );
    }
    // the burst adversary measurably shortens the mission lifetime: the
    // paired interval excludes zero
    let (lo, hi) = report.delta_mttsf.delta.ci.unwrap();
    assert!(hi < 0.0, "ΔMTTSF CI ({lo}, {hi}) should exclude zero");
}

/// The six ab-* scenario configurations, as (index-addressable) variants.
fn ab_fixture_names() -> [&'static str; 6] {
    [
        "ab-baseline.json",
        "ab-burst.json",
        "ab-stealth.json",
        "ab-targeted.json",
        "ab-quarantine.json",
        "ab-throttle.json",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Zero-delta invariant (CRN pairing correctness): comparing any
    // scenario fixture against itself, on any stochastic backend, any
    // seed, differences to bitwise zero — per replication (the max-|Δ|
    // diagnostics) and in every aggregate.
    #[test]
    fn self_comparison_differences_to_exactly_zero(
        which in 0usize..6,
        backend_pick in 0u8..2,
        seed in any::<u64>(),
        reps in 20u64..60,
    ) {
        let backend = if backend_pick == 0 {
            BackendKind::SpnSim
        } else {
            BackendKind::Des
        };
        let mut spec = spec_on(ab_fixture_names()[which], backend);
        spec.stochastic.master_seed = seed;
        let budget = RunBudget {
            max_replications: Some(reps),
            ..RunBudget::default()
        };
        let report = compare(&spec, &spec, &budget).unwrap();
        prop_assert_eq!(report.replications, reps);
        prop_assert_eq!(report.max_abs_delta_time, 0.0);
        prop_assert_eq!(report.max_abs_delta_cost, 0.0);
        prop_assert_eq!(report.delta_mttsf.delta.value, 0.0);
        prop_assert_eq!(report.delta_cost.delta.value, 0.0);
        prop_assert_eq!(report.delta_mttsf.delta.ci, Some((0.0, 0.0)));
        prop_assert_eq!(report.delta_cost.delta.ci, Some((0.0, 0.0)));
        for (_t, d) in report.delta_survival.as_deref().unwrap_or(&[]) {
            prop_assert_eq!(d.delta.value, 0.0);
            prop_assert_eq!(d.delta.ci, Some((0.0, 0.0)));
        }
    }
}
