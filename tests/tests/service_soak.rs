//! Soak test of the scenario-evaluation service loop (satellite 4).
//!
//! Submits 100+ specs across several structural families through the
//! spool-directory protocol and asserts the tentpole properties:
//!
//! * cache hit-rate > 0.9 after warmup (repeat-family submissions skip
//!   exploration and CTMC pattern building),
//! * every service report is **bit-identical** to a one-shot runner
//!   execution of the same spec (up to `wall_seconds` and the cache
//!   telemetry field, which one-shot runs don't carry),
//! * memory stays bounded under eviction pressure (a one-template budget
//!   still serves every family, with evictions counted),
//! * per-spec failures are isolated into error artifacts, never aborting
//!   the loop.

use engine::service::{serve, CacheBudget, ServiceConfig, TemplateCache};
use engine::{BackendKind, RunReport, Runner, SamplingPlan, ScenarioSpec};
use std::fs;
use std::path::{Path, PathBuf};

/// Flat exact spec in the structural family selected by `node_count`,
/// varied within the family by the detection interval.
fn family_spec(name: &str, node_count: u32, tids: f64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::paper_default(BackendKind::Exact);
    spec.name = name.into();
    spec.system.node_count = node_count;
    spec.system.vote_participants = 3;
    spec.system = spec.system.with_tids(tids);
    spec
}

/// The soak workload: `total` specs round-robined across three structural
/// families (node counts 10/11/12), each with a per-index detection
/// interval so every submission is a distinct scenario.
fn soak_specs(total: usize) -> Vec<ScenarioSpec> {
    let families = [10u32, 11, 12];
    (0..total)
        .map(|i| {
            let n = families[i % families.len()];
            let tids = 60.0 + (i / families.len()) as f64 * 15.0;
            family_spec(&format!("soak-{i:03}"), n, tids)
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gcsids-service-soak-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn spool_specs(spool: &Path, specs: &[ScenarioSpec]) {
    for (i, spec) in specs.iter().enumerate() {
        // write-then-rename, as the protocol requires
        let tmp = spool.join(format!("s{i:03}.tmp"));
        fs::write(&tmp, spec.to_json()).unwrap();
        fs::rename(&tmp, spool.join(format!("s{i:03}.json"))).unwrap();
    }
}

/// Strip the fields a one-shot run legitimately differs in, then encode.
fn normalized(mut report: RunReport) -> String {
    report.wall_seconds = 0.0;
    report.template_cache = None;
    report.to_json()
}

#[test]
fn soak_cache_hit_rate_and_bit_identical_reports() {
    let root = temp_dir("main");
    let spool = root.join("spool");
    let results = root.join("results");
    let specs = soak_specs(102);
    fs::create_dir_all(&spool).unwrap();
    spool_specs(&spool, &specs);

    let mut cfg = ServiceConfig::new(&spool, &results);
    cfg.workers = 4;
    cfg.drain = true;
    let summary = serve(&cfg).unwrap();

    assert_eq!(summary.processed, 102);
    assert_eq!(summary.failed, 0);
    // 3 structural families → 3 misses, 99 hits: far past the 0.9 bar
    assert_eq!(summary.cache.misses, 3);
    assert_eq!(summary.cache.hits, 99);
    assert!(
        summary.cache.hit_rate().unwrap() > 0.9,
        "hit rate {:?}",
        summary.cache.hit_rate()
    );
    assert_eq!(summary.cache.evictions, 0);
    assert_eq!(summary.cache.entries, 3);

    // every report is bit-identical to a one-shot runner execution
    let runner = Runner::new();
    for (i, spec) in specs.iter().enumerate() {
        let path = results.join(format!("s{i:03}.report.json"));
        let text = fs::read_to_string(&path).unwrap();
        let served = RunReport::from_json(&text).unwrap();
        let info = served
            .template_cache
            .expect("service reports carry telemetry");
        assert!(info.hits + info.misses >= 1);
        let one_shot = runner.run(spec).unwrap();
        assert_eq!(
            normalized(served),
            normalized(one_shot),
            "{} diverged from its one-shot run",
            spec.name
        );
    }

    // the summary artifact exists and parses
    let summary_text = fs::read_to_string(results.join("service.summary.json")).unwrap();
    assert!(summary_text.contains("\"hit_rate\":"));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn soak_eviction_pressure_keeps_memory_bounded() {
    // One-template budget: every family switch evicts the previous
    // template, yet every spec still evaluates and residency never
    // exceeds the budget.
    let root = temp_dir("evict");
    let spool = root.join("spool");
    let results = root.join("results");
    let specs = soak_specs(30);
    fs::create_dir_all(&spool).unwrap();
    spool_specs(&spool, &specs);

    let mut cfg = ServiceConfig::new(&spool, &results);
    cfg.cache_budget = CacheBudget {
        max_templates: 1,
        max_cached_states: usize::MAX,
    };
    // single worker: submissions round-robin families in spool order, so
    // under a one-entry budget every cacheable lookup evicts its
    // predecessor deterministically
    cfg.workers = 1;
    cfg.drain = true;
    let summary = serve(&cfg).unwrap();

    assert_eq!(summary.processed, 30);
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.cache.entries, 1, "residency bounded by the budget");
    assert!(
        summary.cache.evictions >= summary.cache.misses - 1,
        "every rebuild past the first must have evicted: {:?}",
        summary.cache
    );
    // thrashing: each family switch misses (29 switches + initial build)
    assert_eq!(summary.cache.misses, 30);
    // evaluation is still correct under pressure — spot-check one report
    let text = fs::read_to_string(results.join("s007.report.json")).unwrap();
    let served = RunReport::from_json(&text).unwrap();
    let one_shot = Runner::new().run(&specs[7]).unwrap();
    assert_eq!(normalized(served), normalized(one_shot));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn soak_isolates_failures_and_mixes_backends() {
    let root = temp_dir("mixed");
    let spool = root.join("spool");
    let results = root.join("results");
    fs::create_dir_all(&spool).unwrap();

    // two good exact specs (same family: one miss, one hit)
    spool_specs(
        &spool,
        &[
            family_spec("mixed-0", 12, 60.0),
            family_spec("mixed-1", 12, 90.0),
        ],
    );
    // a stochastic spec: bypasses the cache, streams progress
    let mut des = family_spec("mixed-des", 12, 60.0);
    des.backend = BackendKind::Des;
    des.system.attacker.base_rate = 1.0 / 600.0;
    des.system.detection = des.system.detection.with_interval(120.0);
    des.stochastic.max_time = 200_000.0;
    des.stochastic.sampling = SamplingPlan::Adaptive {
        target_rel_halfwidth: 1e-6, // unreachable: every round streams
        min: 10,
        max: 30,
        batch: 10,
    };
    fs::write(spool.join("zdes.json"), des.to_json()).unwrap();
    // a malformed submission and an invalid spec
    fs::write(spool.join("bad.json"), "{not json").unwrap();
    let mut invalid = family_spec("invalid", 12, 60.0);
    invalid.system.node_count = 0;
    fs::write(spool.join("invalid.json"), invalid.to_json()).unwrap();

    let mut cfg = ServiceConfig::new(&spool, &results);
    cfg.drain = true;
    let summary = serve(&cfg).unwrap();

    assert_eq!(summary.processed, 3);
    assert_eq!(summary.failed, 2);
    assert_eq!(summary.cache.bypasses, 1);
    // failures left named error artifacts; successes their reports
    assert!(results.join("bad.error.json").exists());
    assert!(results.join("invalid.error.json").exists());
    assert!(results.join("s000.report.json").exists());
    assert!(results.join("s001.report.json").exists());
    // the adaptive DES streamed one progress line per round
    let progress = fs::read_to_string(results.join("zdes.progress.jsonl")).unwrap();
    let lines: Vec<&str> = progress.lines().collect();
    assert_eq!(lines.len(), 3, "{progress}");
    assert!(lines[0].contains("\"replications\":10"));
    assert!(lines[2].contains("\"replications\":30"));
    // and the DES report matches its one-shot run bit-for-bit
    let served =
        RunReport::from_json(&fs::read_to_string(results.join("zdes.report.json")).unwrap())
            .unwrap();
    let one_shot = Runner::new().run(&des).unwrap();
    assert_eq!(normalized(served), normalized(one_shot));
    // nothing is left claimed in the spool
    assert!(fs::read_dir(&spool).unwrap().next().is_none());
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn warm_cache_skips_exploration_and_pattern_build() {
    // The acceptance criterion behind the hit-rate number: a repeat-family
    // submission must not re-explore or rebuild the CTMC pattern.
    let cache = TemplateCache::default();
    let opts = spn::reach::ExploreOptions::default();
    let (t1, _) = cache.lookup(&family_spec("w0", 12, 60.0), &opts).unwrap();
    let t1 = t1.unwrap();
    let before = t1.stats();
    assert_eq!((before.explorations, before.pattern_builds), (1, 1));
    // three more submissions in the family, different rates
    let runner = Runner::with_cache(Default::default(), std::sync::Arc::new(cache));
    for (i, tids) in [90.0, 120.0, 240.0].iter().enumerate() {
        runner
            .run_cached(&family_spec(&format!("w{}", i + 1), 12, *tids))
            .unwrap();
    }
    let after = t1.stats();
    assert_eq!(
        (after.explorations, after.pattern_builds),
        (1, 1),
        "repeat-family submissions must reuse the cached exploration"
    );
}
