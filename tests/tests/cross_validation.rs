//! Three-way cross-validation at accelerated scale: the analytic CTMC
//! solution, the SPN token-game Monte Carlo, and the protocol-level DES
//! must agree on MTTSF — and the analytic failure-cause split must match
//! the simulated one.

use gcsids::config::SystemConfig;
use gcsids::des::{run_des_replications, DesConfig};
use gcsids::metrics::evaluate;
use gcsids::model::build_model;
use spn::reward::RewardSet;
use spn::sim::{SimOptions, Simulator};

/// Accelerated configuration (fast attacker, small group) so thousands of
/// replications complete in seconds.
fn hot() -> SystemConfig {
    let mut c = SystemConfig::paper_default();
    c.node_count = 24;
    c.vote_participants = 3;
    c.attacker.base_rate = 1.0 / 1_200.0;
    c.detection = c.detection.with_interval(60.0);
    c
}

#[test]
fn token_game_confirms_analytic_mttsf() {
    let cfg = hot();
    let analytic = evaluate(&cfg).unwrap();
    let model = build_model(&cfg);
    let rewards = RewardSet::new();
    let sim = Simulator::new(&model.net, &rewards, SimOptions::default());
    let stats = sim.run_replications(8_000, 11).unwrap();
    assert_eq!(stats.censored, 0);
    let ci = stats.mtta_ci(0.99);
    assert!(
        ci.contains(analytic.mttsf_seconds),
        "token game CI [{:.4e}, {:.4e}] excludes analytic {:.4e}",
        ci.lo(),
        ci.hi(),
        analytic.mttsf_seconds
    );
}

#[test]
fn protocol_des_matches_analytic_within_modeling_tolerance() {
    // The DES executes real votes per group rather than the hypergeometric
    // abstraction; agreement within 15% validates the Equation-1
    // reconstruction and the SPN structure (EXPERIMENTS.md records the
    // measured gap).
    let cfg = hot();
    let analytic = evaluate(&cfg).unwrap();
    let stats = run_des_replications(&DesConfig::new(cfg), 4_000, 17);
    let sim_mean = stats.mttsf.mean();
    let rel = (sim_mean - analytic.mttsf_seconds).abs() / analytic.mttsf_seconds;
    assert!(
        rel < 0.15,
        "DES {sim_mean:.4e} vs analytic {:.4e}: {:.1}% apart",
        analytic.mttsf_seconds,
        rel * 100.0
    );
}

#[test]
fn failure_cause_split_agrees_between_analytic_and_des() {
    let cfg = hot();
    let analytic = evaluate(&cfg).unwrap();
    let stats = run_des_replications(&DesConfig::new(cfg), 4_000, 23);
    let failures = (stats.c1_failures + stats.c2_failures) as f64;
    assert!(failures > 0.0);
    let sim_c1 = stats.c1_failures as f64 / failures;
    assert!(
        (sim_c1 - analytic.p_failure_c1).abs() < 0.08,
        "C1 share: DES {sim_c1:.3} vs analytic {:.3}",
        analytic.p_failure_c1
    );
}

#[test]
fn des_cost_rate_within_factor_two_of_analytic() {
    // Cost accounting differs structurally (event-level GDH + per-group
    // floods vs state-averaged rates) — they must still land in the same
    // ballpark.
    let cfg = hot();
    let analytic = evaluate(&cfg).unwrap();
    let stats = run_des_replications(&DesConfig::new(cfg), 1_000, 29);
    let ratio = stats.cost_rate.mean() / analytic.c_total_hop_bits_per_sec;
    assert!(
        (0.5..2.0).contains(&ratio),
        "cost ratio {ratio:.2} (DES {:.3e} vs analytic {:.3e})",
        stats.cost_rate.mean(),
        analytic.c_total_hop_bits_per_sec
    );
}

#[test]
fn occupancy_integral_reproduces_mttsf_definition() {
    // The paper defines MTTSF as ∫ Σ_{i∉absorbing} P_i(t) dt; check the
    // uniformization evaluation of that integral against the linear-solve
    // MTTA on the real model. Uniformization cost scales with q·t, so use a
    // small, slow system (the identity is exact regardless of scale).
    let mut cfg = hot();
    cfg.node_count = 10;
    cfg.detection = cfg.detection.with_interval(300.0);
    cfg.attacker.base_rate = 1.0 / 600.0;
    let model = build_model(&cfg);
    let graph = spn::reach::explore(&model.net, &Default::default()).unwrap();
    let ctmc = spn::ctmc::Ctmc::from_graph(&graph).unwrap();
    let analytic = ctmc.mean_time_to_absorption().unwrap();
    let horizon = analytic.mtta * 12.0;
    let occ = ctmc.expected_occupancy(horizon, &spn::ctmc::TransientOptions::default());
    let integral: f64 = occ
        .iter()
        .enumerate()
        .filter(|&(i, _)| !ctmc.absorbing()[i])
        .map(|(_, &o)| o)
        .sum();
    let rel = (integral - analytic.mtta).abs() / analytic.mtta;
    assert!(
        rel < 5e-3,
        "integral {integral:.6e} vs MTTA {:.6e}",
        analytic.mtta
    );
}

// ---------------------------------------------------------------------------
// Mission-survivability cross-validation (engine-level)
// ---------------------------------------------------------------------------

use engine::{
    backend_for, cross_validate_dir, BackendKind, CrossValOptions, RunBudget, Runner, ScenarioSpec,
};
use std::path::PathBuf;

/// The committed acceptance check: on the paper's §5 default system, the
/// exact `P[survive t]` from uniformization lies inside the 95% confidence
/// intervals of both the SPN token-game simulation and the protocol DES on
/// a 5-point mission grid. Seeds are fixed and the vendored RNG is
/// deterministic, so this is a regression pin, not a flaky statistical
/// test.
#[test]
fn exact_survival_inside_stochastic_cis_on_paper_default_mission_grid() {
    // Scale the grid to the model's own MTTSF so the points land in the
    // mission-relevant band (hours-to-days; S ≈ 0.97…0.99+) whatever the
    // calibration constants are. Uniformization cost grows with q·t_max
    // and the simulators with replications × horizon, so the grid stays
    // shallow to keep debug-mode tier-1 runs fast.
    let probe = Runner::new()
        .run(&ScenarioSpec::paper_default(BackendKind::Exact))
        .unwrap();
    let m = probe.mttsf.value;
    let times: Vec<f64> = [0.006, 0.012, 0.018, 0.024, 0.03]
        .iter()
        .map(|f| f * m)
        .collect();

    let mut base = ScenarioSpec::paper_default(BackendKind::Exact).with_mission_times(&times);
    base.name = "paper-default-mission".into();
    // Censor right past the last grid point: later behaviour is irrelevant
    // to the mission question and this keeps replications cheap.
    base.stochastic.max_time = times[4] * 1.01;
    base.stochastic.sampling = engine::SamplingPlan::Fixed(60);
    base.stochastic.confidence = 0.95;
    let exact = Runner::new().run(&base).unwrap();
    let exact_curve = exact.survival.as_ref().unwrap();
    assert_eq!(exact_curve.len(), 5);

    for kind in [BackendKind::SpnSim, BackendKind::Des] {
        let mut spec = base.clone();
        spec.backend = kind;
        let report = backend_for(kind).run(&spec, &RunBudget::default()).unwrap();
        let curve = report.survival.as_ref().unwrap();
        for ((t, e), (_, s)) in exact_curve.iter().zip(curve) {
            let (lo, hi) = s.ci.expect("stochastic survival carries a CI");
            assert!(
                lo <= e.value && e.value <= hi,
                "{kind:?} at t={t:.3e}: exact {:.4} outside 95% CI [{lo:.4}, {hi:.4}]",
                e.value
            );
        }
    }
}

/// The committed fixture specs must pass the full cross-validation harness
/// (the same check CI runs through the `runner` binary, here at reduced
/// replications so the suite stays fast).
#[test]
fn crossval_harness_agrees_on_committed_fixture_specs() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/specs");
    let opts = CrossValOptions {
        budget: RunBudget {
            max_replications: Some(150),
            ..Default::default()
        },
        ..Default::default()
    };
    let report = cross_validate_dir(&dir, &opts).unwrap();
    assert_eq!(report.specs.len(), 11);
    // every scenario-axis fixture is in the validated set: one per
    // attacker strategy and one per response policy
    for name in [
        "ab-baseline",
        "ab-burst",
        "ab-stealth",
        "ab-targeted",
        "ab-quarantine",
        "ab-throttle",
    ] {
        assert!(
            report.specs.iter().any(|s| s.name == name),
            "{name} fixture missing from crossval"
        );
    }
    assert!(
        report.agrees(),
        "cross-backend disagreement: {}",
        report.to_json()
    );
    // mission-grid specs must actually compare survival points
    let mission = report
        .specs
        .iter()
        .find(|s| s.name == "hot-mission")
        .expect("hot-mission fixture present");
    for c in &mission.comparisons {
        assert!(
            c.checks.iter().any(|ch| ch.metric.starts_with("survival@")),
            "{:?} compared no survival points",
            c.backend
        );
    }
    // the long-horizon spec must compare MTTSF itself
    let longrun = report
        .specs
        .iter()
        .find(|s| s.name == "hot-longrun")
        .expect("hot-longrun fixture present");
    for c in &longrun.comparisons {
        assert!(
            c.checks.iter().any(|ch| ch.metric == "mttsf"),
            "{:?} skipped MTTSF: {:?}",
            c.backend,
            c.skipped
        );
    }
    // the clustered fixture runs on the lumped/composed exact path and
    // must compare both MTTSF and survival against the stochastic
    // backends' order-statistic compositions
    let clustered = report
        .specs
        .iter()
        .find(|s| s.name == "clustered-mission")
        .expect("clustered-mission fixture present");
    assert!(
        clustered.exact.lumping_reduction.unwrap() > 1.0,
        "clustered exact reference must record its reduction factor"
    );
    for c in &clustered.comparisons {
        assert!(
            c.checks.iter().any(|ch| ch.metric == "mttsf"),
            "{:?} skipped clustered MTTSF: {:?}",
            c.backend,
            c.skipped
        );
        assert!(
            c.checks.iter().any(|ch| ch.metric.starts_with("survival@")),
            "{:?} compared no clustered survival points",
            c.backend
        );
    }
    // the adaptive fixture must have chosen its replication count at
    // runtime and recorded the verdict in its report
    let adaptive = report
        .specs
        .iter()
        .find(|s| s.name == "hot-adaptive")
        .expect("hot-adaptive fixture present");
    for c in &adaptive.comparisons {
        assert!(c.report.target_met.is_some(), "{:?}", c.backend);
        assert!(c.report.replications.unwrap() <= 150, "budget cap applies");
    }
}

/// The symmetry-lumping acceptance criterion: the committed ≥100-node
/// clustered fixture is solvable by the lumped/composed exact path under a
/// state budget that the unlumped flat exploration of the very same net
/// provably exceeds.
#[test]
fn lumped_exact_solves_clustered_fixture_beyond_unlumped_state_budget() {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/specs/clustered-mission.json");
    let text = std::fs::read_to_string(&path).expect("clustered fixture committed");
    let spec = ScenarioSpec::from_json(text.trim_end()).unwrap();
    let topo = spec.clustered.expect("fixture is clustered");
    assert!(
        spec.system.node_count * topo.clusters >= 100,
        "fixture must model a 100+-node system"
    );

    let budget = RunBudget {
        max_states: 100_000,
        ..Default::default()
    };
    // Unlumped flat exploration of the same clustered net blows the budget.
    let model = gcsids::build_clustered_model(&spec.system, &topo);
    let opts = spn::reach::ExploreOptions {
        max_states: budget.max_states,
        ..Default::default()
    };
    let unlumped = spn::reach::explore(&model.net, &opts);
    assert!(
        matches!(
            unlumped,
            Err(spn::error::SpnError::StateSpaceExceeded { .. })
        ),
        "unlumped exploration unexpectedly fit the budget: {unlumped:?}"
    );

    // The lumped/composed path solves it under the very same budget.
    let report = Runner::with_budget(budget).run(&spec).unwrap();
    assert!(report.mttsf.value.is_finite() && report.mttsf.value > 0.0);
    assert!(report.state_count.unwrap() <= budget.max_states);
    assert!(
        report.lumping_reduction.unwrap() > 100.0,
        "reduction {:?}",
        report.lumping_reduction
    );
    let surv = report.survival.as_ref().unwrap();
    assert_eq!(surv.len(), 5);
    assert!((surv[0].1.value - 1.0).abs() < 1e-9);
    for w in surv.windows(2) {
        assert!(w[1].1.value <= w[0].1.value + 1e-12, "{surv:?}");
    }
}

/// The adaptive-sampling acceptance criterion: a spec with an `Adaptive`
/// plan yields a report whose MTTSF CI half-width meets the requested
/// relative target — or that explicitly reports budget exhaustion — with
/// the replication count actually used recorded in the report JSON.
#[test]
fn adaptive_spec_meets_precision_target_or_reports_exhaustion() {
    let mut spec = ScenarioSpec::paper_default(BackendKind::Des);
    spec.name = "adaptive-acceptance".into();
    spec.system = hot();
    spec.system.node_count = 12;
    spec.stochastic.max_time = 1.0e6;
    let target = 0.25;
    spec.stochastic.sampling = engine::SamplingPlan::Adaptive {
        target_rel_halfwidth: target,
        min: 20,
        max: 600,
        batch: 40,
    };
    let report = backend_for(BackendKind::Des)
        .run(&spec, &RunBudget::default())
        .unwrap();
    let n = report.replications.expect("replications-used is recorded");
    assert!((20..=600).contains(&n));
    match report.target_met.expect("adaptive verdict is recorded") {
        true => {
            let (lo, hi) = report.mttsf.ci.expect("met target implies a CI");
            let rel_half = (hi - lo) / 2.0 / report.mttsf.value.abs();
            assert!(
                rel_half <= target,
                "claimed target {target} but achieved {rel_half}"
            );
        }
        false => assert_eq!(n, 600, "unmet target must exhaust the budget"),
    }
    // and both facts survive the report's JSON round-trip
    let json = report.to_json();
    let back = engine::RunReport::from_json(&json).unwrap();
    assert_eq!(back.replications, Some(n));
    assert_eq!(back.target_met, report.target_met);
    assert!(json.contains("\"replications\":"));
    assert!(json.contains("\"target_met\":"));
}
