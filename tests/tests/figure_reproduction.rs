//! Paper-scale integration tests: the reproduction targets for Figures 2–5
//! (who wins, orderings, where optima fall) asserted against the exact
//! analytic model at the paper's N = 100 parameterization.

use gcsids::config::SystemConfig;
use gcsids::metrics::evaluate;
use gcsids::sweep::{sweep_tids, sweep_tids_by_detection_shape, sweep_tids_by_m};
use ids::functions::RateShape;

fn paper() -> SystemConfig {
    SystemConfig::paper_default()
}

/// Figure 2: the optimal TIDS shrinks as m grows (the paper reports
/// 480/60/15/5 s for m = 3/5/7/9) and peak MTTSF increases with m.
#[test]
fn fig2_optimal_tids_shrinks_and_mttsf_grows_with_m() {
    let series = sweep_tids_by_m(
        &paper(),
        SystemConfig::paper_tids_grid(),
        SystemConfig::paper_m_grid(),
    )
    .unwrap();
    let optima: Vec<f64> = series
        .iter()
        .map(|s| s.optimal_tids_for_mttsf().expect("non-empty series"))
        .collect();
    // paper's exact grid points
    assert_eq!(
        optima,
        vec![480.0, 60.0, 15.0, 5.0],
        "optimal TIDS by m = 3/5/7/9"
    );
    let peaks: Vec<f64> = series
        .iter()
        .map(|s| {
            s.points
                .iter()
                .map(|p| p.evaluation.mttsf_seconds)
                .fold(f64::MIN, f64::max)
        })
        .collect();
    for w in peaks.windows(2) {
        assert!(w[1] > w[0], "peak MTTSF must increase with m: {peaks:?}");
    }
    // magnitudes: paper's Figure 2 tops out in the units of 1e6 s
    assert!(
        peaks[3] > 1.0e6 && peaks[3] < 1.0e8,
        "m=9 peak {:.3e}",
        peaks[3]
    );
}

/// Figure 2 mechanism: MTTSF rises then falls in TIDS for every m.
#[test]
fn fig2_interior_optimum_for_every_m() {
    let series = sweep_tids_by_m(&paper(), SystemConfig::paper_tids_grid(), &[5, 7]).unwrap();
    for s in &series {
        let v: Vec<f64> = s
            .points
            .iter()
            .map(|p| p.evaluation.mttsf_seconds)
            .collect();
        let peak = v.iter().cloned().fold(f64::MIN, f64::max);
        assert!(peak > v[0], "{}: no rise from the short-TIDS side", s.label);
        assert!(
            peak > *v.last().unwrap(),
            "{}: no fall to the long-TIDS side",
            s.label
        );
    }
}

/// Figure 3: larger m costs more at every interval, and each curve has an
/// interior cost optimum for m ≥ 5.
#[test]
fn fig3_cost_ordering_and_interior_optimum() {
    let grid = &SystemConfig::paper_tids_grid()[2..];
    let series = sweep_tids_by_m(&paper(), grid, SystemConfig::paper_m_grid()).unwrap();
    #[allow(clippy::needless_range_loop)] // index couples `grid` with every series
    for i in 0..grid.len() {
        let costs: Vec<f64> = series
            .iter()
            .map(|s| s.points[i].evaluation.c_total_hop_bits_per_sec)
            .collect();
        for w in costs.windows(2) {
            assert!(
                w[1] > w[0] * 0.999,
                "cost must not decrease with m at TIDS={}: {costs:?}",
                grid[i]
            );
        }
    }
    for s in &series[1..] {
        let v: Vec<f64> = s
            .points
            .iter()
            .map(|p| p.evaluation.c_total_hop_bits_per_sec)
            .collect();
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            min < v[0] && min < *v.last().unwrap(),
            "{}: no interior optimum",
            s.label
        );
    }
}

/// Figure 4 crossovers: logarithmic detection wins at the smallest
/// interval, polynomial wins at the largest.
#[test]
fn fig4_shape_crossovers() {
    let series = sweep_tids_by_detection_shape(&paper(), SystemConfig::paper_tids_grid()).unwrap();
    let at = |shape_idx: usize, tids_idx: usize| {
        series[shape_idx].points[tids_idx].evaluation.mttsf_seconds
    };
    let (log, lin, poly) = (0usize, 1, 2);
    // paper: log performs well when TIDS is small (< 15 s)
    assert!(
        at(log, 0) > at(lin, 0) && at(log, 0) > at(poly, 0),
        "log must win at TIDS=5"
    );
    // paper: poly performs well when TIDS is large (> 240 s)
    let last = SystemConfig::paper_tids_grid().len() - 1;
    assert!(
        at(poly, last) > at(lin, last),
        "poly must beat linear at TIDS=1200"
    );
    assert!(
        at(poly, last) > at(log, last),
        "poly must beat log at TIDS=1200"
    );
    // linear's peak lands in the paper's 60–120 s region
    let lin_opt = series[lin]
        .optimal_tids_for_mttsf()
        .expect("non-empty series");
    assert!(
        (60.0..=240.0).contains(&lin_opt),
        "linear optimum at {lin_opt}"
    );
}

/// Figure 5: linear detection is the cheapest at the paper's quoted
/// optimum (TIDS = 240 s); polynomial is the most expensive at small
/// intervals; logarithmic becomes the most expensive at large intervals.
#[test]
fn fig5_cost_crossovers() {
    let grid = &SystemConfig::paper_tids_grid()[1..];
    let series = sweep_tids_by_detection_shape(&paper(), grid).unwrap();
    let cost = |shape_idx: usize, tids_idx: usize| {
        series[shape_idx].points[tids_idx]
            .evaluation
            .c_total_hop_bits_per_sec
    };
    let (log, lin, poly) = (0usize, 1, 2);
    let i240 = grid.iter().position(|&t| t == 240.0).unwrap();
    assert!(
        cost(lin, i240) < cost(log, i240),
        "linear cheapest at 240 (vs log)"
    );
    assert!(
        cost(lin, i240) < cost(poly, i240),
        "linear cheapest at 240 (vs poly)"
    );
    // poly most expensive at TIDS = 15 and 30
    for i in 0..2 {
        assert!(cost(poly, i) > cost(lin, i) && cost(poly, i) > cost(log, i));
    }
    // log most expensive at the largest intervals
    let last = grid.len() - 1;
    assert!(cost(log, last) > cost(lin, last));
    assert!(cost(log, last) > cost(poly, last));
}

/// The paper's magnitudes: MTTSF in the 1e5–5e6 s band near optima and
/// C_total in the 1e5–1e7 hop·bits/s band (Figures 2–5 axis ranges).
#[test]
fn magnitudes_in_paper_bands() {
    let e = evaluate(&paper().with_tids(60.0)).unwrap();
    assert!(
        (1.0e4..5.0e7).contains(&e.mttsf_seconds),
        "MTTSF {:.3e} out of band",
        e.mttsf_seconds
    );
    assert!(
        (1.0e4..1.0e7).contains(&e.c_total_hop_bits_per_sec),
        "C_total {:.3e} out of band",
        e.c_total_hop_bits_per_sec
    );
}

/// The adaptive loop's payoff is interval selection: operating at the
/// response-surface optimum beats operating at either grid extreme by a
/// large factor, for every attacker shape. (Attacker *shape* itself barely
/// moves MTTSF while the IDS keeps the compromised fraction low — mc stays
/// near 1 — which is why the paper varies only the detection function in
/// Figures 4–5; EXPERIMENTS.md discusses this.)
#[test]
fn adaptive_interval_selection_pays_off_for_every_attacker() {
    let grid = SystemConfig::paper_tids_grid();
    for attacker_shape in RateShape::all() {
        let mut cfg = paper();
        cfg.attacker.shape = attacker_shape;
        let s = sweep_tids(&cfg, grid, attacker_shape.name()).unwrap();
        let v: Vec<f64> = s
            .points
            .iter()
            .map(|p| p.evaluation.mttsf_seconds)
            .collect();
        let best = v.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            best > 2.0 * v[0] && best > 2.0 * v.last().unwrap(),
            "{}: optimum {best:.3e} vs edges {:.3e}/{:.3e}",
            attacker_shape.name(),
            v[0],
            v.last().unwrap()
        );
    }
}
