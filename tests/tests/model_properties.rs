//! Property-based tests of the end-to-end model: monotonicity and
//! sanity invariants that must hold for any valid configuration.

use gcsids::config::SystemConfig;
use gcsids::cost::cost_breakdown;
use gcsids::metrics::evaluate;
use gcsids::model::{build_model, c2_holds, population, Population};
use proptest::prelude::*;
use spn::reach::{explore, ExploreOptions};

fn arb_config(base: u32) -> impl Strategy<Value = SystemConfig> {
    (8u32..=base, 0u8..3, 1u32..4, 10.0f64..2_000.0).prop_map(|(n, shape, m_idx, tids)| {
        let mut c = SystemConfig::paper_default();
        c.node_count = n;
        c.vote_participants = [3u32, 5, 7][m_idx as usize % 3].min(n - 1);
        c.detection = c.detection.with_interval(tids);
        c.detection.shape = ids::functions::RateShape::all()[shape as usize % 3];
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn evaluation_invariants(cfg in arb_config(24)) {
        let e = evaluate(&cfg).unwrap();
        prop_assert!(e.mttsf_seconds > 0.0 && e.mttsf_seconds.is_finite());
        prop_assert!(e.c_total_hop_bits_per_sec > 0.0);
        prop_assert!((e.p_failure_c1 + e.p_failure_c2 - 1.0).abs() < 1e-6);
        prop_assert!(e.p_failure_c1 >= 0.0 && e.p_failure_c2 >= 0.0);
        prop_assert!((e.cost_components.total() - e.c_total_hop_bits_per_sec).abs() < 1e-6);
    }

    #[test]
    fn mttsf_monotone_in_attacker_rate(cfg in arb_config(20), factor in 2.0f64..20.0) {
        let mut hot = cfg.clone();
        hot.attacker.base_rate *= factor;
        let e0 = evaluate(&cfg).unwrap();
        let e1 = evaluate(&hot).unwrap();
        prop_assert!(e1.mttsf_seconds < e0.mttsf_seconds * 1.0001,
            "faster attacker must not survive longer: {} vs {}",
            e1.mttsf_seconds, e0.mttsf_seconds);
    }

    #[test]
    fn mttsf_monotone_in_data_request_rate(cfg in arb_config(20), factor in 2.0f64..20.0) {
        // more data requests → more C1 leak opportunities → shorter life
        let mut hot = cfg.clone();
        hot.group_comm_rate *= factor;
        let e0 = evaluate(&cfg).unwrap();
        let e1 = evaluate(&hot).unwrap();
        prop_assert!(e1.mttsf_seconds < e0.mttsf_seconds * 1.0001);
    }

    #[test]
    fn reachable_states_never_violate_conservation(cfg in arb_config(20)) {
        let model = build_model(&cfg);
        let graph = explore(&model.net, &ExploreOptions::default()).unwrap();
        for m in &graph.states {
            let pop = population(&model.places, m);
            let detected = m.tokens(model.places.dcm);
            prop_assert_eq!(pop.trusted + pop.undetected + detected, cfg.node_count);
            prop_assert!(pop.groups >= 1 && pop.groups <= cfg.max_groups);
        }
    }

    #[test]
    fn non_absorbing_states_never_satisfy_failure(cfg in arb_config(20)) {
        let model = build_model(&cfg);
        let graph = explore(&model.net, &ExploreOptions::default()).unwrap();
        for (i, m) in graph.states.iter().enumerate() {
            let pop = population(&model.places, m);
            let c2 = c2_holds(pop.trusted, pop.undetected);
            let c1 = m.tokens(model.places.gf) > 0;
            if c1 || c2 {
                prop_assert!(graph.absorbing[i], "failure state {i} not absorbing");
            }
        }
    }

    #[test]
    fn cost_positive_and_monotone_in_population(groups in 1u32..4, t in 1u32..70, u in 0u32..20) {
        // generator keeps t + 10 + u within the configured N = 100
        let cfg = SystemConfig::paper_default();
        let pop = Population { trusted: t, undetected: u, groups };
        let b = cost_breakdown(&cfg, &pop);
        prop_assert!(b.total() >= 0.0);
        let bigger = Population { trusted: t + 10, undetected: u, groups };
        let b2 = cost_breakdown(&cfg, &bigger);
        prop_assert!(b2.group_comm > b.group_comm);
        prop_assert!(b2.beacon > b.beacon);
    }
}
