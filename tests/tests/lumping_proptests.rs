//! Property-based pinning of symmetry lumping on clustered deployments.
//!
//! On small random clustered systems the lumped quotient chain must
//! reproduce the unlumped flat chain's MTTSF, failure split, cost rewards,
//! and full mission-survival grid within solver tolerance — while strictly
//! shrinking the state space whenever at least two clusters share an orbit
//! — and the hierarchical order-statistic composition must agree with the
//! flat lumped solution wherever both paths apply.

use gcsids::clustered::{
    evaluate_clustered_graph, evaluate_clustered_with_survival, ClusteredPath,
};
use gcsids::config::{ClusterTopology, SystemConfig};
use gcsids::model::{build_clustered_model, build_model};
use proptest::prelude::*;
use spn::reach::{explore, ExploreOptions};

/// A tiny, fast-failing system so the unlumped flat product space stays
/// explorable (its size is d^clusters — the very thing lumping removes).
fn small_cfg(node_count: u32, rate_scale: f64, tids: f64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.node_count = node_count;
    cfg.vote_participants = 3;
    cfg.max_groups = 1;
    cfg.attacker.base_rate = rate_scale / 600.0;
    cfg.detection = cfg.detection.with_interval(tids);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Lumped flat == unlumped flat, on every reported metric, with a
    // strict state-count shrink.
    #[test]
    fn lumped_flat_matches_unlumped_flat(
        node_count in 4u32..=5,
        clusters in 2u32..=3,
        k_raw in 0u32..3,
        rate_scale in 0.5f64..2.5,
        tids in 60.0f64..400.0,
    ) {
        let cfg = small_cfg(node_count, rate_scale, tids);
        let topo = ClusterTopology {
            clusters,
            failure_threshold: 1 + k_raw % clusters,
        };
        let opts = ExploreOptions::default();

        // Unlumped reference: explore the flat clustered net as-is.
        let model = build_clustered_model(&cfg, &topo);
        let flat_graph = explore(&model.net, &opts).unwrap();
        let (probe, _) = evaluate_clustered_graph(&model, &flat_graph, &[]).unwrap();
        let m = probe.mttsf_seconds;
        prop_assert!(m.is_finite() && m > 0.0);
        let grid = [0.0, 0.5 * m, m, 2.0 * m];
        let (unlumped, s_unlumped) =
            evaluate_clustered_graph(&model, &flat_graph, &grid).unwrap();

        let lumped = evaluate_clustered_with_survival(&cfg, &topo, &grid, &opts).unwrap();
        prop_assert_eq!(lumped.stats.path, ClusteredPath::FlatLumped);

        // ≥2 clusters always share the one orbit here — the quotient must
        // be strictly smaller, and the bookkeeping must say why.
        prop_assert!(
            lumped.evaluation.state_count < unlumped.state_count,
            "lumped {} vs unlumped {}",
            lumped.evaluation.state_count,
            unlumped.state_count
        );
        prop_assert_eq!(lumped.stats.orbit_members, clusters as usize);
        prop_assert!(lumped.stats.reduction > 1.0);

        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(f64::MIN_POSITIVE);
        prop_assert!(
            rel(lumped.evaluation.mttsf_seconds, unlumped.mttsf_seconds) < 1e-8,
            "MTTSF {} vs {}",
            lumped.evaluation.mttsf_seconds,
            unlumped.mttsf_seconds
        );
        prop_assert!(
            rel(
                lumped.evaluation.c_total_hop_bits_per_sec,
                unlumped.c_total_hop_bits_per_sec
            ) < 1e-8
        );
        // componentwise too: the rekey component carries the eviction
        // impulses, the most lumping-sensitive reward
        let lc = lumped.evaluation.cost_components;
        let uc = unlumped.cost_components;
        prop_assert!(rel(lc.total(), uc.total()) < 1e-8);
        prop_assert!((lc.rekey - uc.rekey).abs() <= 1e-8 * (1.0 + uc.rekey.abs()));
        prop_assert!(
            (lumped.evaluation.p_failure_c1 - unlumped.p_failure_c1).abs() < 1e-8
        );
        let s_lumped = lumped.survival.as_ref().unwrap();
        let s_unlumped = s_unlumped.as_ref().unwrap();
        for (a, b) in s_lumped.iter().zip(s_unlumped) {
            prop_assert!((a - b).abs() < 1e-8, "survival {} vs {}", a, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The hierarchical composition (forced by a state budget that only
    // admits the single-cluster chain) agrees with the flat lumped
    // solution within the documented composition tolerances.
    #[test]
    fn hierarchical_composition_agrees_with_flat_lumped(
        clusters in 2u32..=3,
        k_raw in 0u32..3,
        rate_scale in 0.8f64..2.0,
    ) {
        let cfg = small_cfg(4, rate_scale, 120.0);
        let topo = ClusterTopology {
            clusters,
            failure_threshold: 1 + k_raw % clusters,
        };

        let flat = evaluate_clustered_with_survival(
            &cfg,
            &topo,
            &[],
            &ExploreOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(flat.stats.path, ClusteredPath::FlatLumped);
        let m = flat.evaluation.mttsf_seconds;
        let grid = [0.0, 0.5 * m, m, 2.0 * m];
        let flat = evaluate_clustered_with_survival(
            &cfg,
            &topo,
            &grid,
            &ExploreOptions::default(),
        )
        .unwrap();

        // A budget of exactly the single-cluster chain size admits the
        // cluster exploration but never the flat quotient.
        let d = explore(&build_model(&cfg).net, &ExploreOptions::default())
            .unwrap()
            .state_count();
        let hier = evaluate_clustered_with_survival(
            &cfg,
            &topo,
            &grid,
            &ExploreOptions {
                max_states: d + 1,
                ..Default::default()
            },
        )
        .unwrap();
        prop_assert_eq!(hier.stats.path, ClusteredPath::Hierarchical);
        prop_assert!(hier.evaluation.state_count < flat.evaluation.state_count);

        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(f64::MIN_POSITIVE);
        prop_assert!(
            rel(hier.evaluation.mttsf_seconds, flat.evaluation.mttsf_seconds) < 1e-3,
            "MTTSF {} vs {}",
            hier.evaluation.mttsf_seconds,
            flat.evaluation.mttsf_seconds
        );
        prop_assert!(
            rel(
                hier.evaluation.c_total_hop_bits_per_sec,
                flat.evaluation.c_total_hop_bits_per_sec
            ) < 3e-2
        );
        prop_assert!(
            (hier.evaluation.p_failure_c1 - flat.evaluation.p_failure_c1).abs() < 5e-2
        );
        let sh = hier.survival.as_ref().unwrap();
        let sf = flat.survival.as_ref().unwrap();
        for (a, b) in sh.iter().zip(sf) {
            prop_assert!((a - b).abs() < 1e-4, "survival {} vs {}", a, b);
        }
    }
}
