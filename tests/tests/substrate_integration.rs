//! Cross-crate substrate integration: mobility calibration feeding the
//! analytic model, GDH + view synchrony + voting working together, and the
//! voting abstraction validated against executed votes at populations the
//! SPN actually visits.

use gcs::membership::{GroupView, MembershipEvent};
use gcs::rekey::{RekeyPolicy, RekeyScheduler};
use gcs::vsync::ViewSyncChannel;
use gcsids::config::SystemConfig;
use gcsids::metrics::evaluate;
use gcsids::model::{build_model, population, Population};
use ids::host::HostIds;
use ids::voting::{estimate_error_rates, p_false_negative, p_false_positive, VotingConfig};
use manet::{calibrate, CalibrationConfig, MobilityConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn calibration_to_analytic_pipeline() {
    let cal = calibrate(
        &CalibrationConfig {
            duration: 2_000.0,
            seeds: 2,
            mobility: MobilityConfig {
                node_count: 40,
                ..Default::default()
            },
            ..Default::default()
        },
        99,
    );
    let mut cfg = SystemConfig::paper_default();
    cfg.node_count = 30;
    cfg.vote_participants = 3;
    cfg.apply_calibration(&cal);
    cfg.validate().unwrap();
    let e = evaluate(&cfg).unwrap();
    assert!(e.mttsf_seconds > 0.0);
    assert!(e.cost_components.partition_merge.is_finite());
}

#[test]
fn eviction_pipeline_vsync_rekey_secrecy() {
    // A compromised member is evicted: view synchrony flushes the old
    // view's messages, the rekey scheduler refreshes the key, and the
    // evicted node cannot derive the new key.
    let mut rng = StdRng::seed_from_u64(5);
    let view = GroupView::initial(0..8);
    let mut channel: ViewSyncChannel<&str> = ViewSyncChannel::new(view.clone());
    let mut rekey = RekeyScheduler::new(view, RekeyPolicy::Immediate, &mut rng);
    let old_key = rekey.key().unwrap();

    channel.broadcast(3, "pre-eviction message");
    let next = channel.view().apply(&MembershipEvent::Evict(3));
    channel.install_view(next);
    rekey.on_event(10.0, MembershipEvent::Evict(3), &mut rng);

    // forward secrecy: key changed on eviction
    assert_ne!(rekey.key().unwrap(), old_key);
    assert!(!rekey.view().contains(3));
    // the evicted node still got its own old-view message (delivered in the
    // old view), but nothing after
    let inbox = channel.take_inbox(3);
    assert_eq!(inbox.len(), 1);
    channel.broadcast(0, "post-eviction");
    channel.flush();
    assert!(channel.take_inbox(3).is_empty());
    // remaining members share the refreshed key
    for n in [0u32, 1, 2, 4, 5, 6, 7] {
        assert!(rekey.view().contains(n));
    }
}

#[test]
fn analytic_voting_matches_executed_votes_at_spn_populations() {
    // Sample a few populations the SPN's rate functions evaluate and check
    // the closed-form Pfp/Pfn against executed voting rounds.
    let cases = [
        Population {
            trusted: 20,
            undetected: 4,
            groups: 1,
        },
        Population {
            trusted: 40,
            undetected: 8,
            groups: 2,
        },
    ];
    let mut rng = StdRng::seed_from_u64(31);
    for pop in cases {
        let (good_b, bad_b) = pop.per_group_for_bad_target();
        let (good_g, bad_g) = pop.per_group_for_good_target();
        let m = 5;
        let cfg = VotingConfig {
            participants: m,
            host: HostIds::new(0.05, 0.05),
        };
        // Monte-Carlo with the *good-target* composition
        let (fp_mc, _) = estimate_error_rates(&cfg, good_g, bad_g.max(1), 40_000, &mut rng);
        let fp = p_false_positive(good_g, bad_g, m, 0.05);
        assert!(
            (fp - fp_mc).abs() < 0.012,
            "Pfp {fp:.4} vs MC {fp_mc:.4} at {pop:?}"
        );
        let (_, fn_mc) = estimate_error_rates(&cfg, good_b, bad_b, 40_000, &mut rng);
        let fnn = p_false_negative(good_b, bad_b, m, 0.05);
        assert!(
            (fnn - fn_mc).abs() < 0.012,
            "Pfn {fnn:.4} vs MC {fn_mc:.4} at {pop:?}"
        );
    }
}

#[test]
fn model_rates_consistent_with_components() {
    // T_IDS + T_FA rate at the initial marking equals N·D(1)·Pfp since no
    // node is compromised yet (T_IDS disabled, only false alarms possible).
    let mut cfg = SystemConfig::paper_default();
    cfg.node_count = 50;
    let model = build_model(&cfg);
    let init = model.net.initial_marking();
    let pop = population(&model.places, &init);
    assert_eq!(pop.trusted, 50);
    let enabled = model.net.enabled_timed(&init).unwrap();
    let t_fa_rate = enabled
        .iter()
        .find(|&&(t, _)| model.net.transition_name(t) == "T_FA")
        .map(|&(_, r)| r)
        .expect("T_FA enabled initially");
    let d = cfg.detection.rate(cfg.node_count, 50, 0);
    let pfp = ids::voting::p_false_positive(50, 0, cfg.vote_participants, 0.01);
    assert!((t_fa_rate - 50.0 * d * pfp).abs() < 1e-12 * t_fa_rate.max(1e-30));
}

#[test]
fn gdh_scales_to_paper_group_size() {
    // One full agreement among 100 members with real modular arithmetic.
    let ids_: Vec<u32> = (0..100).collect();
    let mut rng = StdRng::seed_from_u64(77);
    let mut s = gcs::gdh::GdhSession::new(&ids_, &mut rng);
    let key = s.run();
    for &id in &ids_ {
        assert_eq!(s.key_of(id), Some(key));
    }
    assert_eq!(s.measured_cost(), gcs::gdh::RekeyCost::for_group_size(100));
}

#[test]
fn structural_analysis_proves_node_conservation() {
    // State-space-free proof that the paper's net never creates or
    // destroys nodes: Tm + UCm + DCm is a P-invariant.
    let cfg = SystemConfig::paper_default();
    let model = build_model(&cfg);
    let report = spn::structural::analyze(&model.net);
    let node_invariant: Vec<i64> = vec![1, 1, 1, 0, 0]; // Tm, UCm, DCm, GF, NG
    assert!(
        report.p_invariants.contains(&node_invariant),
        "expected node-conservation invariant, got {:?}",
        report.p_invariants
    );
    // GF only accumulates and NG is a birth–death counter: neither can be
    // covered, so the net is not structurally bounded as a whole (it is
    // bounded in practice by the absorbing conditions and the NG guard).
    assert!(!report.covers_all_places());
    assert_eq!(
        report.invariant_value(
            report
                .p_invariants
                .iter()
                .position(|i| i == &node_invariant)
                .unwrap(),
            &model.net.initial_marking(),
        ),
        cfg.node_count as i64
    );
}
