//! Golden-fixture tests for the engine's on-disk JSON formats.
//!
//! `fixtures/specs/` holds scenario specs (consumed by the `runner`
//! cross-validation binary and the harness tests); `fixtures/reports/`
//! holds run reports, including the all-censored null-encoding edge case
//! for the `survival` field. Both are committed in canonical encoding, so
//! parse → re-encode must reproduce every file byte-for-byte.
//!
//! Regenerate after an intentional format change with:
//! `cargo test -p integration-tests regenerate_fixtures -- --ignored`

use engine::{BackendKind, Estimate, RunReport, SamplingPlan, ScenarioSpec};
use std::fs;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn json_files(sub: &str) -> Vec<PathBuf> {
    let dir = fixtures_dir().join(sub);
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no fixtures in {}", dir.display());
    files
}

/// The committed scenario specs, as built by the regeneration test.
fn fixture_specs() -> Vec<(&'static str, ScenarioSpec)> {
    // Accelerated 12-node system: fails within ~1e5 s, so stochastic
    // backends finish quickly even at full replication counts.
    let hot = {
        let mut spec = ScenarioSpec::paper_default(BackendKind::Exact);
        spec.system.node_count = 12;
        spec.system.vote_participants = 3;
        spec.system.attacker.base_rate = 1.0 / 600.0;
        spec.system.detection = spec.system.detection.with_interval(120.0);
        spec.stochastic.sampling = SamplingPlan::Fixed(400);
        spec
    };

    // The hot system's exact MTTSF is ≈5.0e3 s; this grid spans the
    // decay region (S ≈ 1 … ≈0.15) rather than the dead tail.
    let mut mission = hot.clone();
    mission.name = "hot-mission".into();
    mission.mission_times = vec![0.0, 1.0e3, 3.0e3, 6.0e3, 1.0e4];
    mission.stochastic.max_time = 1.1e4;

    let mut longrun = hot.clone();
    longrun.name = "hot-longrun".into();
    longrun.stochastic.max_time = 5.0e6;

    // Adaptive sampling: replications chosen at runtime to a 10% relative
    // MTTSF CI half-width (95% level), with a shallow mission grid so the
    // survival comparison runs too. Exercises the `sampling` spec encoding
    // end-to-end through the crossval harness.
    let mut adaptive = hot.clone();
    adaptive.name = "hot-adaptive".into();
    adaptive.stochastic.max_time = 5.0e6;
    adaptive.stochastic.sampling = SamplingPlan::Adaptive {
        target_rel_halfwidth: 0.10,
        min: 100,
        max: 400,
        batch: 100,
    };
    adaptive.mission_times = vec![0.0, 1.0e3, 3.0e3];

    let mut collusion = mission.clone();
    collusion.name = "collusion-none-mission".into();
    collusion.system.collusion = ids::voting::CollusionModel::None;
    collusion.system = collusion
        .system
        .with_detection_shape(ids::functions::RateShape::Polynomial);

    // Clustered deployment: ten hot 12-node clusters (120 nodes total),
    // the system failing at the third cluster failure. The unlumped flat
    // product space is ~d^10 states — far beyond any budget — so only the
    // symmetry-lumped/composed exact path can solve it; the stochastic
    // backends check it via independent per-cluster replications composed
    // by failure order statistics. The hot cluster MTTSF is ≈5.0e3 s, so
    // the 3-of-10 system fails around ≈1.7e3 s; the grid spans that decay.
    let mut clustered = hot.clone();
    clustered.name = "clustered-mission".into();
    clustered = clustered.with_clusters(engine::ClusterTopology {
        clusters: 10,
        failure_threshold: 3,
    });
    clustered.mission_times = vec![0.0, 4.0e2, 1.0e3, 2.0e3, 4.0e3];
    clustered.stochastic.max_time = 1.0e5;

    // Adversary & response scenario fixtures: one per attacker strategy
    // and one per response policy, all on the hot system with the same
    // mission grid and stochastic options, so ANY pair of them forms a
    // valid CRN-paired A/B comparison (`engine::compare` requires
    // identical grids and options on both arms). Exact MTTSFs — baseline
    // ≈5.0e3 s, burst ≈3.3e3, stealth ≈3.0e3, targeted ≈4.9e3,
    // quarantine ≈5.1e3, throttle ≈3.0e3 — all inside the hot-mission
    // grid's decay region, so the crossval survival checks bite.
    let ab = |name: &'static str, sc: engine::ScenarioConfig| {
        let mut s = mission.clone();
        s.name = name.into();
        s.scenario = Some(sc);
        s
    };
    use engine::{AttackerStrategy, ResponsePolicy, ScenarioConfig};
    let ab_baseline = ab("ab-baseline", ScenarioConfig::baseline());
    let ab_burst = ab(
        "ab-burst",
        ScenarioConfig {
            attacker: AttackerStrategy::Burst {
                on_rate: 1.0 / 5.0e3,
                off_rate: 1.0 / 5.0e3,
                multiplier: 6.0,
            },
            response: ResponsePolicy::Evict,
        },
    );
    let ab_stealth = ab(
        "ab-stealth",
        ScenarioConfig {
            attacker: AttackerStrategy::Stealth {
                rate_factor: 0.5,
                evasion: 0.3,
            },
            response: ResponsePolicy::Evict,
        },
    );
    let ab_targeted = ab(
        "ab-targeted",
        ScenarioConfig {
            attacker: AttackerStrategy::Targeted { focus: 0.8 },
            response: ResponsePolicy::Evict,
        },
    );
    let ab_quarantine = ab(
        "ab-quarantine",
        ScenarioConfig {
            attacker: AttackerStrategy::Baseline,
            response: ResponsePolicy::QuarantineRejoin {
                release_rate: 1.0 / 2.0e3,
                false_release_prob: 0.1,
            },
        },
    );
    let ab_throttle = ab(
        "ab-throttle",
        ScenarioConfig {
            attacker: AttackerStrategy::Baseline,
            response: ResponsePolicy::RekeyThrottle {
                max_rate: 1.0 / 1.0e3,
            },
        },
    );

    vec![
        ("hot-mission.json", mission.clone()),
        ("hot-longrun.json", longrun),
        ("hot-adaptive.json", adaptive),
        ("collusion-none-mission.json", collusion),
        ("clustered-mission.json", clustered),
        ("ab-baseline.json", ab_baseline),
        ("ab-burst.json", ab_burst),
        ("ab-stealth.json", ab_stealth),
        ("ab-targeted.json", ab_targeted),
        ("ab-quarantine.json", ab_quarantine),
        ("ab-throttle.json", ab_throttle),
    ]
}

/// The committed run reports: one exact-shaped (cost components + exact
/// survival), one stochastic-shaped exercising the all-censored /
/// non-finite null-encoding path of the `survival` and `mttsf` fields.
fn fixture_reports() -> Vec<(&'static str, RunReport)> {
    let exact = RunReport {
        scenario: "fixture/exact".into(),
        backend: BackendKind::Exact,
        mttsf: Estimate::exact(86_400.0),
        c_total: Estimate::exact(2_048.5),
        cost_components: Some(gcsids::cost::CostBreakdown {
            group_comm: 1000.0,
            status: 500.25,
            rekey: 300.0,
            ids: 150.0,
            beacon: 73.25,
            partition_merge: 25.0,
        }),
        failure: engine::FailureSplit {
            p_c1: 0.625,
            p_c2: 0.375,
            p_other: 0.0,
        },
        state_count: Some(1234),
        edge_count: Some(5678),
        // exact-backend clustered runs record the lumping reduction factor
        lumping_reduction: Some(512.0),
        replications: None,
        censored: None,
        zero_duration: None,
        target_met: None,
        survival: Some(vec![
            (0.0, Estimate::exact(1.0)),
            (43_200.0, Estimate::exact(0.625)),
            (86_400.0, Estimate::exact(0.375)),
        ]),
        wall_seconds: 0.125,
        // absent on purpose: the committed fixture bytes predate (and must
        // survive) the cross-request template cache — the key is omitted
        template_cache: None,
        // exact runs with a mission grid carry transient-engine telemetry,
        // including the null encoding of a never-fired detection step
        transient: Some(engine::TransientInfo {
            matvecs: 4096,
            detection_step: None,
            early_exit: false,
            transient_states: 617,
            absorbing_states: 617,
        }),
        detection: None,
    };

    let all_censored = RunReport {
        scenario: "fixture/des-all-censored".into(),
        backend: BackendKind::Des,
        // every replication censored: MTTSF not estimable → null
        mttsf: Estimate {
            value: f64::NAN,
            ci: None,
        },
        c_total: Estimate {
            value: 1_900.0,
            ci: Some((1_800.0, 2_000.0)),
        },
        cost_components: None,
        failure: engine::FailureSplit::default(),
        state_count: None,
        edge_count: None,
        lumping_reduction: None,
        replications: Some(8),
        censored: Some(8),
        zero_duration: Some(0),
        target_met: None,
        survival: Some(vec![
            // t = 0: zero-variance proportion — value 1.0 with finite
            // Wilson bounds, never NaN
            (0.0, Estimate::proportion(8, 8, 0.95)),
            // beyond the horizon: nothing at risk → null value, no interval
            (1.0e6, Estimate::proportion(0, 0, 0.95)),
        ]),
        wall_seconds: 0.5,
        template_cache: None,
        // stochastic backends never carry transient telemetry
        transient: None,
        detection: None,
    };

    vec![
        ("exact.json", exact),
        ("des-all-censored.json", all_censored),
    ]
}

/// Writes the canonical fixture files. Run explicitly after intentional
/// format changes; the golden tests below pin the committed bytes.
#[test]
#[ignore = "fixture regeneration tool, not a check"]
fn regenerate_fixtures() {
    let specs = fixtures_dir().join("specs");
    let reports = fixtures_dir().join("reports");
    fs::create_dir_all(&specs).unwrap();
    fs::create_dir_all(&reports).unwrap();
    for (name, spec) in fixture_specs() {
        fs::write(specs.join(name), spec.to_json() + "\n").unwrap();
    }
    for (name, report) in fixture_reports() {
        fs::write(reports.join(name), report.to_json() + "\n").unwrap();
    }
}

#[test]
fn spec_fixtures_roundtrip_byte_for_byte() {
    for path in json_files("specs") {
        let text = fs::read_to_string(&path).unwrap();
        let spec = ScenarioSpec::from_json(text.trim_end())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            spec.to_json(),
            text.trim_end(),
            "{} is not canonical",
            path.display()
        );
    }
}

#[test]
fn spec_fixtures_match_generator() {
    // the committed files are exactly what the regeneration tool writes —
    // catches drift between the generator and the repository
    for (name, spec) in fixture_specs() {
        let path = fixtures_dir().join("specs").join(name);
        let text = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e} (run regenerate_fixtures)", path.display()));
        assert_eq!(text.trim_end(), spec.to_json(), "{name} drifted");
    }
}

#[test]
fn report_fixtures_roundtrip_byte_for_byte() {
    for path in json_files("reports") {
        let text = fs::read_to_string(&path).unwrap();
        let report = RunReport::from_json(text.trim_end())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            report.to_json(),
            text.trim_end(),
            "{} is not canonical",
            path.display()
        );
    }
}

#[test]
fn all_censored_report_fixture_exercises_null_encoding() {
    let path = fixtures_dir().join("reports").join("des-all-censored.json");
    let text = fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"mttsf\":{\"value\":null}"));
    assert!(text.contains("\"value\":null"));
    let report = RunReport::from_json(text.trim_end()).unwrap();
    assert!(report.mttsf.value.is_nan());
    let survival = report.survival.as_ref().unwrap();
    // zero-variance t = 0 point: finite Wilson bounds, no NaN
    assert_eq!(survival[0].1.value, 1.0);
    let (lo, hi) = survival[0].1.ci.unwrap();
    assert!(!lo.is_nan() && (hi - 1.0).abs() < 1e-12 && lo < 1.0);
    // beyond-horizon point: NaN marker, no interval
    assert!(survival[1].1.value.is_nan());
    assert_eq!(survival[1].1.ci, None);
}
