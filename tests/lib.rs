//! Workspace-level integration tests live in `tests/`; this library target
//! exists only so Cargo has a package to attach them to.
