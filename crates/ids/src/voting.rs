//! Voting-based IDS: executable voting rounds and the exact analytic
//! false-positive / false-negative probabilities (the paper's Equation 1).
//!
//! # The analytic model (DESIGN.md §2.3)
//!
//! A target is judged by `m` vote participants drawn uniformly *without
//! replacement* from the other group members. With `G` good and `B` bad
//! (compromised, undetected) members and majority threshold
//! `M = ⌈m/2⌉`:
//!
//! * **False positive** (good target evicted): the `k` bad voters collude
//!   and always vote *evict*; each of the `m − k` good voters errs with
//!   probability `p2`:
//!   `Pfp = Σ_k Hyp(k; m, B, G−1+B) · P[k + Bin(m−k, p2) ≥ M]`
//! * **False negative** (bad target kept): bad voters vote *keep*; good
//!   voters correctly vote *evict* with probability `1 − p1`:
//!   `Pfn = Σ_k Hyp(k; m, B−1, G+B−1) · P[Bin(m−k, 1−p1) < M]`
//!
//! When fewer than `m` voters exist, all of them vote (the draw is capped);
//! when **no** voter exists the protocol cannot evict anyone (`Pfp = 0`,
//! `Pfn = 1`).

use crate::host::HostIds;
use numerics::dist::{Binomial, Hypergeometric};
use rand::seq::SliceRandom;
use rand::Rng;

/// Majority threshold `⌈m/2⌉` (the paper's `N_majority`).
pub fn majority_threshold(m: u32) -> u32 {
    m.div_ceil(2)
}

/// Effective number of voters: `m` capped by the available population.
fn effective_m(m: u32, available: u32) -> u32 {
    m.min(available)
}

/// Exact probability that a **good** target is evicted (false positive of
/// the voting IDS), given `good` good and `bad` bad members in the group.
///
/// # Panics
/// Panics if `p2` is outside `[0, 1]` or `good == 0` (no good target can
/// exist).
pub fn p_false_positive(good: u32, bad: u32, m: u32, p2: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p2), "p2 = {p2} outside [0,1]");
    assert!(good >= 1, "a good target requires at least one good node");
    let voters_pop = good - 1 + bad; // everyone but the target
    let m_eff = effective_m(m, voters_pop);
    if m_eff == 0 {
        return 0.0; // nobody can vote → nobody is evicted
    }
    let majority = majority_threshold(m_eff);
    let hyp = Hypergeometric::new(voters_pop as u64, bad as u64, m_eff as u64);
    let mut total = 0.0;
    for k in hyp.support_min()..=hyp.support_max() {
        let p_k = hyp.pmf(k);
        if p_k == 0.0 {
            continue;
        }
        let good_voters = m_eff as u64 - k;
        let needed = (majority as u64).saturating_sub(k);
        let p_evict = if needed == 0 {
            1.0 // colluding voters alone reach the majority
        } else {
            Binomial::new(good_voters, p2).sf_inclusive(needed)
        };
        total += p_k * p_evict;
    }
    total.clamp(0.0, 1.0)
}

/// Exact probability that a **bad** target survives the vote (false
/// negative of the voting IDS).
///
/// # Panics
/// Panics if `p1` is outside `[0, 1]` or `bad == 0` (no bad target can
/// exist).
pub fn p_false_negative(good: u32, bad: u32, m: u32, p1: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p1), "p1 = {p1} outside [0,1]");
    assert!(bad >= 1, "a bad target requires at least one bad node");
    let voters_pop = good + bad - 1;
    let m_eff = effective_m(m, voters_pop);
    if m_eff == 0 {
        return 1.0; // nobody can vote → the bad node survives
    }
    let majority = majority_threshold(m_eff);
    let hyp = Hypergeometric::new(voters_pop as u64, (bad - 1) as u64, m_eff as u64);
    let mut total = 0.0;
    for k in hyp.support_min()..=hyp.support_max() {
        let p_k = hyp.pmf(k);
        if p_k == 0.0 {
            continue;
        }
        let good_voters = m_eff as u64 - k;
        // Evicted iff good evict-votes reach the majority (bad voters all
        // vote keep). Survives otherwise.
        let p_evict = if good_voters < majority as u64 {
            0.0
        } else {
            Binomial::new(good_voters, 1.0 - p1).sf_inclusive(majority as u64)
        };
        total += p_k * (1.0 - p_evict);
    }
    total.clamp(0.0, 1.0)
}

/// Configuration of an executable voting round.
#[derive(Debug, Clone, Copy)]
pub struct VotingConfig {
    /// Designed number of vote participants `m`.
    pub participants: u32,
    /// Host IDS installed on every node.
    pub host: HostIds,
}

/// Result of one voting round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteOutcome {
    /// Whether the target was evicted.
    pub evicted: bool,
    /// Evict votes cast.
    pub evict_votes: u32,
    /// Total votes cast (the effective `m`).
    pub votes: u32,
    /// Number of compromised voters among the participants.
    pub colluding_voters: u32,
}

/// Execute a single voting round on a target.
///
/// `peers_compromised[i]` is the ground truth for each *non-target* member;
/// `target_compromised` for the target. Colluding (compromised) voters vote
/// to evict good targets and to keep bad targets; good voters follow their
/// host IDS assessment.
pub fn run_vote<R: Rng + ?Sized>(
    cfg: &VotingConfig,
    target_compromised: bool,
    peers_compromised: &[bool],
    rng: &mut R,
) -> VoteOutcome {
    let mut idx: Vec<usize> = (0..peers_compromised.len()).collect();
    idx.shuffle(rng);
    let m_eff = effective_m(cfg.participants, peers_compromised.len() as u32);
    let majority = majority_threshold(m_eff);
    let mut evict_votes = 0u32;
    let mut colluders = 0u32;
    for &voter in idx.iter().take(m_eff as usize) {
        if peers_compromised[voter] {
            colluders += 1;
            // collusion: protect bad targets, attack good ones
            if !target_compromised {
                evict_votes += 1;
            }
        } else if cfg.host.assess(target_compromised, rng) {
            evict_votes += 1;
        }
    }
    VoteOutcome {
        evicted: m_eff > 0 && evict_votes >= majority,
        evict_votes,
        votes: m_eff,
        colluding_voters: colluders,
    }
}

/// Monte-Carlo estimate of (`Pfp`, `Pfn`) used to validate the closed
/// forms: runs `rounds` votes against a good target and `rounds` against a
/// bad target in a population with the given composition.
pub fn estimate_error_rates<R: Rng + ?Sized>(
    cfg: &VotingConfig,
    good: u32,
    bad: u32,
    rounds: u32,
    rng: &mut R,
) -> (f64, f64) {
    assert!(
        good >= 1 && bad >= 1,
        "need both populations for the estimate"
    );
    // good target: peers are good-1 good + bad bad
    let mut peers_good_target: Vec<bool> = Vec::new();
    peers_good_target.extend(std::iter::repeat_n(false, (good - 1) as usize));
    peers_good_target.extend(std::iter::repeat_n(true, bad as usize));
    // bad target: peers are good good + bad-1 bad
    let mut peers_bad_target: Vec<bool> = Vec::new();
    peers_bad_target.extend(std::iter::repeat_n(false, good as usize));
    peers_bad_target.extend(std::iter::repeat_n(true, (bad - 1) as usize));

    let mut fp = 0u32;
    let mut fnn = 0u32;
    for _ in 0..rounds {
        if run_vote(cfg, false, &peers_good_target, rng).evicted {
            fp += 1;
        }
        if !run_vote(cfg, true, &peers_bad_target, rng).evicted {
            fnn += 1;
        }
    }
    (fp as f64 / rounds as f64, fnn as f64 / rounds as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn majority_matches_paper() {
        // ⌈m/2⌉: the paper's N_majority
        assert_eq!(majority_threshold(3), 2);
        assert_eq!(majority_threshold(5), 3);
        assert_eq!(majority_threshold(7), 4);
        assert_eq!(majority_threshold(9), 5);
        assert_eq!(majority_threshold(4), 2);
        assert_eq!(majority_threshold(1), 1);
    }

    #[test]
    fn no_bad_nodes_fp_is_binomial_tail() {
        // With zero colluders Pfp = P[Bin(m, p2) ≥ ⌈m/2⌉]
        let p2 = 0.01;
        for m in [3u32, 5, 7, 9] {
            let exact = p_false_positive(50, 0, m, p2);
            let tail = Binomial::new(m as u64, p2).sf_inclusive(majority_threshold(m) as u64);
            assert!((exact - tail).abs() < 1e-14, "m={m}");
        }
    }

    #[test]
    fn all_voters_bad_always_evict_good_target() {
        // good=1 (just the target), bad=10: every voter colludes
        let p = p_false_positive(1, 10, 5, 0.01);
        assert!((p - 1.0).abs() < 1e-12);
        // and a bad target always survives when all voters are its allies
        let pn = p_false_negative(0, 11, 5, 0.01);
        assert!((pn - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_host_ids_no_collusion() {
        // p2 = 0, no bad nodes → no false positives
        assert_eq!(p_false_positive(30, 0, 5, 0.0), 0.0);
        // p1 = 0, one bad target, no other bad → always caught
        assert_eq!(p_false_negative(30, 1, 5, 0.0), 0.0);
    }

    #[test]
    fn no_voters_edge_case() {
        // group of exactly one good node: no voters for a good target
        assert_eq!(p_false_positive(1, 0, 5, 0.01), 0.0);
        // group of one bad node: no voters → it survives
        assert_eq!(p_false_negative(0, 1, 5, 0.01), 1.0);
    }

    #[test]
    fn fp_increases_with_collusion() {
        let mut last = 0.0;
        for bad in [0u32, 2, 4, 8, 16] {
            let p = p_false_positive(40, bad, 5, 0.01);
            assert!(p >= last - 1e-15, "bad={bad}: {p} < {last}");
            last = p;
        }
    }

    #[test]
    fn fn_increases_with_collusion() {
        let mut last = 0.0;
        for bad in [1u32, 3, 6, 12, 20] {
            let p = p_false_negative(40, bad, 5, 0.01);
            assert!(p >= last - 1e-15, "bad={bad}: {p} < {last}");
            last = p;
        }
    }

    #[test]
    fn larger_m_reduces_false_alarms_under_light_collusion() {
        // The paper's Figure 2 argument: with few colluders, larger m →
        // smaller Pfp + Pfn.
        let (good, bad) = (90u32, 4u32);
        let alarm = |m| p_false_positive(good, bad, m, 0.01) + p_false_negative(good, bad, m, 0.01);
        let a3 = alarm(3);
        let a5 = alarm(5);
        let a7 = alarm(7);
        let a9 = alarm(9);
        assert!(a3 > a5 && a5 > a7 && a7 > a9, "{a3} {a5} {a7} {a9}");
    }

    #[test]
    fn closed_form_matches_monte_carlo() {
        let cfg = VotingConfig {
            participants: 5,
            host: HostIds::new(0.05, 0.08),
        };
        let (good, bad) = (12u32, 5u32);
        let mut rng = StdRng::seed_from_u64(77);
        let (fp_mc, fn_mc) = estimate_error_rates(&cfg, good, bad, 60_000, &mut rng);
        let fp = p_false_positive(good, bad, 5, 0.08);
        let fnn = p_false_negative(good, bad, 5, 0.05);
        assert!((fp - fp_mc).abs() < 0.01, "fp {fp} vs mc {fp_mc}");
        assert!((fnn - fn_mc).abs() < 0.01, "fn {fnn} vs mc {fn_mc}");
    }

    #[test]
    fn vote_outcome_counts_consistent() {
        let cfg = VotingConfig {
            participants: 5,
            host: HostIds::paper_default(),
        };
        let peers = vec![false, false, true, false, true, false, false];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let o = run_vote(&cfg, true, &peers, &mut rng);
            assert_eq!(o.votes, 5);
            assert!(o.evict_votes <= o.votes);
            assert!(o.colluding_voters <= o.votes);
        }
    }

    #[test]
    fn vote_with_fewer_peers_than_m() {
        let cfg = VotingConfig {
            participants: 9,
            host: HostIds::paper_default(),
        };
        let peers = vec![false, false, false];
        let mut rng = StdRng::seed_from_u64(4);
        let o = run_vote(&cfg, true, &peers, &mut rng);
        assert_eq!(o.votes, 3);
    }

    #[test]
    fn vote_with_no_peers_never_evicts() {
        let cfg = VotingConfig {
            participants: 5,
            host: HostIds::paper_default(),
        };
        let mut rng = StdRng::seed_from_u64(5);
        let o = run_vote(&cfg, true, &[], &mut rng);
        assert!(!o.evicted);
        assert_eq!(o.votes, 0);
    }

    #[test]
    #[should_panic]
    fn fp_requires_a_good_node() {
        p_false_positive(0, 3, 5, 0.01);
    }

    #[test]
    #[should_panic]
    fn fn_requires_a_bad_node() {
        p_false_negative(3, 0, 5, 0.01);
    }
}

/// Collusion behavior of compromised vote participants.
///
/// The paper assumes *full* collusion — every compromised voter always
/// votes to evict good targets and keep bad ones. Real adversaries may act
/// maliciously only sometimes to avoid exposure; `Probabilistic(q)` votes
/// maliciously with probability `q` and honestly (through the same host
/// IDS as a good node) otherwise. `Full` is `Probabilistic(1.0)`, `None`
/// is `Probabilistic(0.0)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CollusionModel {
    /// Compromised voters always vote maliciously (the paper's model).
    Full,
    /// Compromised voters vote maliciously with the given probability and
    /// honestly otherwise.
    Probabilistic(f64),
    /// Compromised voters behave like honest voters (no collusion).
    None,
}

impl CollusionModel {
    /// Probability of a malicious vote.
    ///
    /// # Panics
    /// Panics if a probabilistic model holds a value outside `[0, 1]`.
    pub fn malice_probability(&self) -> f64 {
        match *self {
            CollusionModel::Full => 1.0,
            CollusionModel::None => 0.0,
            CollusionModel::Probabilistic(q) => {
                assert!(
                    (0.0..=1.0).contains(&q),
                    "collusion probability {q} outside [0,1]"
                );
                q
            }
        }
    }
}

/// `P[Bin(n1, p1') + Bin(n2, p2') ≥ threshold]` by exact convolution over
/// the smaller support.
fn sum_binomial_tail(n1: u64, p1: f64, n2: u64, p2: f64, threshold: u64) -> f64 {
    if threshold == 0 {
        return 1.0;
    }
    let b1 = Binomial::new(n1, p1);
    let b2 = Binomial::new(n2, p2);
    let mut total = 0.0;
    for k in 0..=n1 {
        let pk = b1.pmf(k);
        if pk == 0.0 {
            continue;
        }
        let need = threshold.saturating_sub(k);
        let tail = if need == 0 {
            1.0
        } else {
            b2.sf_inclusive(need)
        };
        total += pk * tail;
    }
    total.min(1.0)
}

/// [`p_false_positive`] generalized to a partial-collusion adversary: a
/// compromised voter attacks a good target with probability `q` and
/// otherwise assesses honestly (erring with `p2` like a good voter).
///
/// With `q = 1` this equals [`p_false_positive`].
///
/// # Panics
/// Panics on invalid probabilities or `good == 0`.
pub fn p_false_positive_with_collusion(
    good: u32,
    bad: u32,
    m: u32,
    p2: f64,
    collusion: CollusionModel,
) -> f64 {
    assert!((0.0..=1.0).contains(&p2), "p2 = {p2} outside [0,1]");
    assert!(good >= 1, "a good target requires at least one good node");
    let q = collusion.malice_probability();
    // A colluding voter evicts w.p. q + (1−q)·p2 (malice, or honest error).
    let p_bad_votes_evict = q + (1.0 - q) * p2;
    let voters_pop = good - 1 + bad;
    let m_eff = m.min(voters_pop);
    if m_eff == 0 {
        return 0.0;
    }
    let majority = majority_threshold(m_eff) as u64;
    let hyp = Hypergeometric::new(voters_pop as u64, bad as u64, m_eff as u64);
    let mut total = 0.0;
    for k in hyp.support_min()..=hyp.support_max() {
        let pk = hyp.pmf(k);
        if pk == 0.0 {
            continue;
        }
        total += pk * sum_binomial_tail(k, p_bad_votes_evict, m_eff as u64 - k, p2, majority);
    }
    total.clamp(0.0, 1.0)
}

/// [`p_false_negative`] generalized to a partial-collusion adversary: a
/// compromised voter shields a bad target with probability `q` and
/// otherwise assesses honestly (detecting with `1 − p1`).
///
/// With `q = 1` this equals [`p_false_negative`].
///
/// # Panics
/// Panics on invalid probabilities or `bad == 0`.
pub fn p_false_negative_with_collusion(
    good: u32,
    bad: u32,
    m: u32,
    p1: f64,
    collusion: CollusionModel,
) -> f64 {
    assert!((0.0..=1.0).contains(&p1), "p1 = {p1} outside [0,1]");
    assert!(bad >= 1, "a bad target requires at least one bad node");
    let q = collusion.malice_probability();
    // A colluding voter evicts a bad target w.p. (1−q)(1−p1).
    let p_bad_votes_evict = (1.0 - q) * (1.0 - p1);
    let voters_pop = good + bad - 1;
    let m_eff = m.min(voters_pop);
    if m_eff == 0 {
        return 1.0;
    }
    let majority = majority_threshold(m_eff) as u64;
    let hyp = Hypergeometric::new(voters_pop as u64, (bad - 1) as u64, m_eff as u64);
    let mut total = 0.0;
    for k in hyp.support_min()..=hyp.support_max() {
        let pk = hyp.pmf(k);
        if pk == 0.0 {
            continue;
        }
        let p_evict = sum_binomial_tail(k, p_bad_votes_evict, m_eff as u64 - k, 1.0 - p1, majority);
        total += pk * (1.0 - p_evict);
    }
    total.clamp(0.0, 1.0)
}

/// Execute a voting round under a partial-collusion adversary (the
/// simulation-facing counterpart of the `_with_collusion` formulas).
pub fn run_vote_with_collusion<R: Rng + ?Sized>(
    cfg: &VotingConfig,
    target_compromised: bool,
    peers_compromised: &[bool],
    collusion: CollusionModel,
    rng: &mut R,
) -> VoteOutcome {
    let q = collusion.malice_probability();
    let mut idx: Vec<usize> = (0..peers_compromised.len()).collect();
    idx.shuffle(rng);
    let m_eff = effective_m(cfg.participants, peers_compromised.len() as u32);
    let majority = majority_threshold(m_eff);
    let mut evict_votes = 0u32;
    let mut colluders = 0u32;
    for &voter in idx.iter().take(m_eff as usize) {
        if peers_compromised[voter] {
            colluders += 1;
            if rng.gen::<f64>() < q {
                // malicious vote: protect bad, attack good
                if !target_compromised {
                    evict_votes += 1;
                }
                continue;
            }
        }
        if cfg.host.assess(target_compromised, rng) {
            evict_votes += 1;
        }
    }
    VoteOutcome {
        evicted: m_eff > 0 && evict_votes >= majority,
        evict_votes,
        votes: m_eff,
        colluding_voters: colluders,
    }
}

#[cfg(test)]
mod collusion_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_collusion_reduces_to_base_formulas() {
        for &(g, b, m) in &[(20u32, 5u32, 5u32), (40, 10, 7), (10, 1, 3)] {
            let fp = p_false_positive(g, b, m, 0.01);
            let fp_c = p_false_positive_with_collusion(g, b, m, 0.01, CollusionModel::Full);
            assert!((fp - fp_c).abs() < 1e-12, "Pfp at ({g},{b},{m})");
            let fnn = p_false_negative(g, b, m, 0.01);
            let fn_c = p_false_negative_with_collusion(g, b, m, 0.01, CollusionModel::Full);
            assert!((fnn - fn_c).abs() < 1e-12, "Pfn at ({g},{b},{m})");
        }
    }

    #[test]
    fn no_collusion_equals_all_honest_population() {
        // with q = 0 the bad voters behave exactly like good ones, so the
        // composition no longer matters
        let fp_mixed = p_false_positive_with_collusion(20, 10, 5, 0.02, CollusionModel::None);
        let fp_pure = p_false_positive(30, 0, 5, 0.02);
        assert!((fp_mixed - fp_pure).abs() < 1e-12);
        // a bad target with honest voters is caught like any bad target
        // judged by an all-good electorate
        let fn_mixed = p_false_negative_with_collusion(20, 10, 5, 0.02, CollusionModel::None);
        let fn_pure = p_false_negative(29, 1, 5, 0.02);
        assert!((fn_mixed - fn_pure).abs() < 1e-12);
    }

    #[test]
    fn error_rates_monotone_in_collusion_probability() {
        let mut last_fp = 0.0;
        let mut last_fn = 0.0;
        for i in 0..=10 {
            let quot = i as f64 / 10.0;
            let c = CollusionModel::Probabilistic(quot);
            let fp = p_false_positive_with_collusion(30, 8, 5, 0.01, c);
            let fnn = p_false_negative_with_collusion(30, 8, 5, 0.01, c);
            assert!(fp >= last_fp - 1e-12, "Pfp not monotone at q={quot}");
            assert!(fnn >= last_fn - 1e-12, "Pfn not monotone at q={quot}");
            last_fp = fp;
            last_fn = fnn;
        }
    }

    #[test]
    fn partial_collusion_matches_monte_carlo() {
        let cfg = VotingConfig {
            participants: 5,
            host: HostIds::new(0.05, 0.08),
        };
        let collusion = CollusionModel::Probabilistic(0.4);
        let (good, bad) = (15u32, 6u32);
        let mut rng = StdRng::seed_from_u64(404);
        let rounds = 60_000;
        let mut peers_good: Vec<bool> = vec![false; (good - 1) as usize];
        peers_good.extend(std::iter::repeat_n(true, bad as usize));
        let mut peers_bad: Vec<bool> = vec![false; good as usize];
        peers_bad.extend(std::iter::repeat_n(true, (bad - 1) as usize));
        let mut fp = 0u32;
        let mut fnn = 0u32;
        for _ in 0..rounds {
            if run_vote_with_collusion(&cfg, false, &peers_good, collusion, &mut rng).evicted {
                fp += 1;
            }
            if !run_vote_with_collusion(&cfg, true, &peers_bad, collusion, &mut rng).evicted {
                fnn += 1;
            }
        }
        let fp_mc = fp as f64 / rounds as f64;
        let fn_mc = fnn as f64 / rounds as f64;
        let fp_a = p_false_positive_with_collusion(good, bad, 5, 0.08, collusion);
        let fn_a = p_false_negative_with_collusion(good, bad, 5, 0.05, collusion);
        assert!(
            (fp_a - fp_mc).abs() < 0.01,
            "Pfp {fp_a:.4} vs MC {fp_mc:.4}"
        );
        assert!(
            (fn_a - fn_mc).abs() < 0.01,
            "Pfn {fn_a:.4} vs MC {fn_mc:.4}"
        );
    }

    #[test]
    fn sum_binomial_tail_degenerate_cases() {
        // threshold 0 is certain
        assert_eq!(sum_binomial_tail(3, 0.5, 3, 0.5, 0), 1.0);
        // impossible threshold
        assert!(sum_binomial_tail(2, 0.5, 2, 0.5, 5) < 1e-12);
        // reduces to a single binomial when one side is empty
        let direct = Binomial::new(6, 0.3).sf_inclusive(4);
        assert!((sum_binomial_tail(0, 0.9, 6, 0.3, 4) - direct).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn invalid_collusion_probability_panics() {
        CollusionModel::Probabilistic(1.5).malice_probability();
    }
}
