//! Attacker and detection rate functions.
//!
//! The paper models both the attacker's compromise rate and the IDS
//! invocation rate with three shapes — logarithmic, linear, polynomial —
//! parameterized by a base index `p` (the paper uses `p = 3`). The paper's
//! literal `log_p(x)` would vanish at the base point `x = 1`, so all three
//! shapes are normalized to pass through `f(1) = 1` (DESIGN.md §2.2):
//!
//! ```text
//! f_log(x)  = log_p((p−1)·x + 1)      concave, slowest growth
//! f_lin(x)  = x                        linear
//! f_poly(x) = x^p                      convex, fastest growth
//! ```
//!
//! * attacker rate: `A(mc) = λc · f(mc)` with `mc = (T + U) / T`
//! * detection rate: `D(md) = f(md) / T_IDS` with `md = N_init / (T + U)`

/// Growth shape of a rate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RateShape {
    /// `log_p((p−1)x + 1)` — conservative growth.
    Logarithmic,
    /// `x` — proportional growth.
    Linear,
    /// `x^p` — aggressive growth.
    Polynomial,
}

impl RateShape {
    /// Evaluate the normalized shape at `x ≥ 1` with base index `p`.
    ///
    /// # Panics
    /// Panics if `x < 1` or `p <= 1`.
    pub fn eval(&self, x: f64, p: f64) -> f64 {
        assert!(x >= 1.0, "rate shapes are defined for x ≥ 1, got {x}");
        assert!(p > 1.0, "base index must exceed 1, got {p}");
        match self {
            RateShape::Logarithmic => ((p - 1.0) * x + 1.0).ln() / p.ln(),
            RateShape::Linear => x,
            RateShape::Polynomial => x.powf(p),
        }
    }

    /// All three shapes in the paper's presentation order.
    pub fn all() -> [RateShape; 3] {
        [
            RateShape::Logarithmic,
            RateShape::Linear,
            RateShape::Polynomial,
        ]
    }

    /// Human-readable name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            RateShape::Logarithmic => "logarithmic",
            RateShape::Linear => "linear",
            RateShape::Polynomial => "polynomial",
        }
    }
}

/// Attacker model `A(mc) = λc · f(mc)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackerProfile {
    /// Growth shape.
    pub shape: RateShape,
    /// Base compromising rate `λc` (per second); the paper's default is one
    /// compromise per 12 h.
    pub base_rate: f64,
    /// Base index `p` (paper: 3).
    pub exponent: f64,
}

impl AttackerProfile {
    /// Paper-default linear attacker: `λc = 1/(12 h)`, `p = 3`.
    pub fn paper_default() -> Self {
        Self {
            shape: RateShape::Linear,
            base_rate: 1.0 / (12.0 * 3600.0),
            exponent: 3.0,
        }
    }

    /// The compromise-progress argument `mc = (T + U) / T`.
    ///
    /// # Panics
    /// Panics when `trusted == 0` (the group is fully compromised — C2 has
    /// absorbed the chain before this is ever evaluated).
    pub fn mc(trusted: u32, undetected: u32) -> f64 {
        assert!(trusted > 0, "mc undefined with no trusted members");
        (trusted + undetected) as f64 / trusted as f64
    }

    /// Node-compromising rate in the given population state.
    pub fn rate(&self, trusted: u32, undetected: u32) -> f64 {
        self.base_rate
            * self
                .shape
                .eval(Self::mc(trusted, undetected), self.exponent)
    }
}

/// Detection model `D(md) = f(md) / T_IDS`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionProfile {
    /// Growth shape.
    pub shape: RateShape,
    /// Base detection interval `T_IDS` in seconds — the design parameter
    /// the paper optimizes.
    pub base_interval: f64,
    /// Base index `p` (paper: 3).
    pub exponent: f64,
}

impl DetectionProfile {
    /// Paper-style linear detection at the given base interval.
    pub fn linear(base_interval: f64) -> Self {
        Self {
            shape: RateShape::Linear,
            base_interval,
            exponent: 3.0,
        }
    }

    /// The detection-progress argument `md = N_init / (T + U)`.
    ///
    /// # Panics
    /// Panics when no members remain or when `initial` is smaller than the
    /// live population (would give `md < 1`).
    pub fn md(initial: u32, trusted: u32, undetected: u32) -> f64 {
        let live = trusted + undetected;
        assert!(live > 0, "md undefined with no live members");
        assert!(
            initial >= live,
            "initial population {initial} below live {live}"
        );
        initial as f64 / live as f64
    }

    /// IDS invocation rate in the given population state.
    ///
    /// # Panics
    /// Panics if the base interval is not positive.
    pub fn rate(&self, initial: u32, trusted: u32, undetected: u32) -> f64 {
        assert!(self.base_interval > 0.0, "T_IDS must be positive");
        self.shape
            .eval(Self::md(initial, trusted, undetected), self.exponent)
            / self.base_interval
    }

    /// Same profile with a different base interval (used by TIDS sweeps).
    pub fn with_interval(&self, base_interval: f64) -> Self {
        Self {
            base_interval,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_coincide_at_base_point() {
        for shape in RateShape::all() {
            let v = shape.eval(1.0, 3.0);
            assert!((v - 1.0).abs() < 1e-12, "{shape:?} at 1 = {v}");
        }
    }

    #[test]
    fn shape_ordering_beyond_base_point() {
        // log ≤ lin ≤ poly for x > 1 — the property Figures 4–5 rest on
        for &x in &[1.1, 1.5, 2.0, 3.0, 10.0] {
            let l = RateShape::Logarithmic.eval(x, 3.0);
            let n = RateShape::Linear.eval(x, 3.0);
            let p = RateShape::Polynomial.eval(x, 3.0);
            assert!(l < n && n < p, "x={x}: {l} {n} {p}");
        }
    }

    #[test]
    fn shapes_monotone_increasing() {
        for shape in RateShape::all() {
            let mut last = 0.0;
            for i in 0..50 {
                let x = 1.0 + i as f64 * 0.25;
                let v = shape.eval(x, 3.0);
                assert!(v > last, "{shape:?} not increasing at {x}");
                last = v;
            }
        }
    }

    #[test]
    fn mc_progression() {
        assert_eq!(AttackerProfile::mc(100, 0), 1.0);
        assert_eq!(AttackerProfile::mc(80, 20), 1.25);
        assert_eq!(AttackerProfile::mc(50, 50), 2.0);
    }

    #[test]
    fn attacker_rate_grows_with_compromise() {
        let a = AttackerProfile::paper_default();
        let r0 = a.rate(100, 0);
        let r1 = a.rate(80, 20);
        assert!((r0 - a.base_rate).abs() < 1e-18);
        assert!(r1 > r0);
    }

    #[test]
    fn polynomial_attacker_dominates_linear() {
        let lin = AttackerProfile {
            shape: RateShape::Linear,
            ..AttackerProfile::paper_default()
        };
        let poly = AttackerProfile {
            shape: RateShape::Polynomial,
            ..AttackerProfile::paper_default()
        };
        assert!(poly.rate(60, 40) > lin.rate(60, 40));
        assert_eq!(poly.rate(100, 0), lin.rate(100, 0)); // equal at base
    }

    #[test]
    fn md_progression() {
        assert_eq!(DetectionProfile::md(100, 100, 0), 1.0);
        assert_eq!(DetectionProfile::md(100, 40, 10), 2.0);
    }

    #[test]
    fn detection_rate_is_inverse_interval_at_base() {
        let d = DetectionProfile::linear(120.0);
        assert!((d.rate(100, 100, 0) - 1.0 / 120.0).abs() < 1e-15);
    }

    #[test]
    fn detection_rate_rises_as_members_evicted() {
        let d = DetectionProfile::linear(60.0);
        assert!(d.rate(100, 50, 10) > d.rate(100, 90, 10));
    }

    #[test]
    fn with_interval_rescales() {
        let d = DetectionProfile::linear(60.0);
        let d2 = d.with_interval(120.0);
        assert!((d.rate(100, 100, 0) / d2.rate(100, 100, 0) - 2.0).abs() < 1e-12);
        assert_eq!(d2.shape, d.shape);
    }

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(RateShape::Logarithmic.name(), "logarithmic");
        assert_eq!(RateShape::Linear.name(), "linear");
        assert_eq!(RateShape::Polynomial.name(), "polynomial");
    }

    #[test]
    #[should_panic]
    fn mc_rejects_zero_trusted() {
        AttackerProfile::mc(0, 5);
    }

    #[test]
    #[should_panic]
    fn shape_rejects_x_below_one() {
        RateShape::Linear.eval(0.5, 3.0);
    }
}
