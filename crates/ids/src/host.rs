//! Host-based IDS model.
//!
//! The paper abstracts whatever concrete technique a node runs (misuse /
//! signature or anomaly detection) into two per-node probabilities:
//! `p1` — false negative (a compromised neighbor judged healthy), and
//! `p2` — false positive (a healthy neighbor judged compromised). This
//! module provides that abstraction plus an executable Bernoulli assessor
//! for the discrete-event simulator.

use rand::Rng;

/// Per-node host IDS characterized by its error probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostIds {
    /// False-negative probability `p1` (miss a compromised node).
    pub p_false_negative: f64,
    /// False-positive probability `p2` (flag a healthy node).
    pub p_false_positive: f64,
}

impl HostIds {
    /// Create a host IDS with the given error probabilities.
    ///
    /// # Panics
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(p_false_negative: f64, p_false_positive: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_false_negative),
            "p1 = {p_false_negative} outside [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&p_false_positive),
            "p2 = {p_false_positive} outside [0,1]"
        );
        Self {
            p_false_negative,
            p_false_positive,
        }
    }

    /// The paper's default: `p1 = p2 = 1%` ("1% or less is considered
    /// acceptable").
    pub fn paper_default() -> Self {
        Self::new(0.01, 0.01)
    }

    /// A misuse/signature-detection preset: misses novel attacks more often
    /// than it mis-flags healthy traffic (higher `p1`, lower `p2`).
    pub fn misuse() -> Self {
        Self::new(0.03, 0.005)
    }

    /// An anomaly-detection preset: catches more attacks but raises more
    /// false alarms (lower `p1`, higher `p2`).
    pub fn anomaly() -> Self {
        Self::new(0.005, 0.03)
    }

    /// Assess a neighbor: given the ground truth, return this node's
    /// (possibly erroneous) verdict — `true` = "compromised".
    pub fn assess<R: Rng + ?Sized>(&self, truly_compromised: bool, rng: &mut R) -> bool {
        if truly_compromised {
            // correct detection with probability 1 − p1
            rng.gen::<f64>() >= self.p_false_negative
        } else {
            // false alarm with probability p2
            rng.gen::<f64>() < self.p_false_positive
        }
    }

    /// Probability this IDS replies to a data request from a compromised
    /// node (the paper's `T_DRQ` mechanism: a node replies only when its
    /// host IDS *fails* to identify the requester — probability `p1`).
    pub fn p_reply_to_compromised(&self) -> f64 {
        self.p_false_negative
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn presets_have_expected_biases() {
        let m = HostIds::misuse();
        let a = HostIds::anomaly();
        assert!(m.p_false_negative > a.p_false_negative);
        assert!(m.p_false_positive < a.p_false_positive);
        let d = HostIds::paper_default();
        assert_eq!(d.p_false_negative, 0.01);
        assert_eq!(d.p_false_positive, 0.01);
    }

    #[test]
    fn assess_rates_match_probabilities() {
        let ids = HostIds::new(0.2, 0.1);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let missed = (0..n).filter(|_| !ids.assess(true, &mut rng)).count();
        let flagged = (0..n).filter(|_| ids.assess(false, &mut rng)).count();
        let miss_rate = missed as f64 / n as f64;
        let flag_rate = flagged as f64 / n as f64;
        assert!((miss_rate - 0.2).abs() < 0.01, "{miss_rate}");
        assert!((flag_rate - 0.1).abs() < 0.01, "{flag_rate}");
    }

    #[test]
    fn perfect_ids_never_errs() {
        let ids = HostIds::new(0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1_000 {
            assert!(ids.assess(true, &mut rng));
            assert!(!ids.assess(false, &mut rng));
        }
    }

    #[test]
    fn reply_probability_is_p1() {
        assert_eq!(HostIds::new(0.07, 0.01).p_reply_to_compromised(), 0.07);
    }

    #[test]
    #[should_panic]
    fn invalid_probability_rejected() {
        HostIds::new(1.5, 0.0);
    }
}
