//! Adaptive IDS control: estimate the attacker's strength and shape from
//! observed compromise events, then pick the detection function and base
//! interval that maximize survivability.
//!
//! The paper's central operational recommendation is that "the system could
//! adjust the IDS detection strength in response to the attacker strength
//! detected at runtime": a linear attacker is best met with linear periodic
//! detection, and the base interval `T_IDS` should sit at the MTTSF-optimal
//! point for the estimated base compromise rate. This module implements
//! that loop:
//!
//! 1. [`AttackerEstimator`] ingests `(time, mc)` pairs for each detected
//!    compromise and classifies the attacker shape by least squares on the
//!    log inter-compromise hazard, also recovering the base rate `λc`
//!    ("first-order approximation from observing the number of compromised
//!    nodes over a time period", §4.1).
//! 2. [`AdaptiveController`] matches the detection shape to the attacker
//!    shape and selects `T_IDS` from a caller-supplied response surface
//!    (`(T_IDS, MTTSF)` pairs produced by the analytic model).

use crate::functions::{DetectionProfile, RateShape};

/// One observed compromise event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompromiseObservation {
    /// Time since the previous compromise (s).
    pub inter_arrival: f64,
    /// The compromise-progress argument `mc` in effect during the interval.
    pub mc: f64,
}

/// Result of attacker estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackerEstimate {
    /// Most plausible growth shape.
    pub shape: RateShape,
    /// Estimated base rate `λ̂c` (per second) under that shape.
    pub base_rate: f64,
    /// Mean log-likelihood of the winning fit (higher = better).
    pub log_likelihood: f64,
    /// Observations used.
    pub observations: usize,
}

/// Online estimator of the attacker profile.
#[derive(Debug, Clone, Default)]
pub struct AttackerEstimator {
    observations: Vec<CompromiseObservation>,
    exponent: f64,
}

impl AttackerEstimator {
    /// Create an estimator with the model's base index `p` (paper: 3).
    pub fn new(exponent: f64) -> Self {
        assert!(exponent > 1.0, "base index must exceed 1");
        Self {
            observations: Vec::new(),
            exponent,
        }
    }

    /// Record a compromise observed `inter_arrival` seconds after the
    /// previous one, while the progress argument was `mc`.
    ///
    /// # Panics
    /// Panics on non-positive intervals or `mc < 1`.
    pub fn record(&mut self, inter_arrival: f64, mc: f64) {
        assert!(inter_arrival > 0.0, "inter-arrival must be positive");
        assert!(mc >= 1.0, "mc must be ≥ 1");
        self.observations
            .push(CompromiseObservation { inter_arrival, mc });
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Fit all three shapes by maximum likelihood and return the best.
    ///
    /// Under shape `f` the inter-arrival `Δtᵢ` is exponential with rate
    /// `λc · f(mcᵢ)`, so the log-likelihood is
    /// `Σᵢ [ln λc + ln f(mcᵢ) − λc f(mcᵢ) Δtᵢ]`, maximized in closed form
    /// by `λ̂c = n / Σ f(mcᵢ) Δtᵢ`. The shape with the highest profiled
    /// likelihood wins. Returns `None` with fewer than 3 observations.
    pub fn estimate(&self) -> Option<AttackerEstimate> {
        let n = self.observations.len();
        if n < 3 {
            return None;
        }
        let mut best: Option<AttackerEstimate> = None;
        for shape in RateShape::all() {
            let fs: Vec<f64> = self
                .observations
                .iter()
                .map(|o| shape.eval(o.mc, self.exponent))
                .collect();
            let weighted_time: f64 = fs
                .iter()
                .zip(&self.observations)
                .map(|(f, o)| f * o.inter_arrival)
                .sum();
            let lambda_hat = n as f64 / weighted_time;
            let log_likelihood =
                (lambda_hat.ln() * n as f64 + fs.iter().map(|f| f.ln()).sum::<f64>() - n as f64)
                    / n as f64;
            let est = AttackerEstimate {
                shape,
                base_rate: lambda_hat,
                log_likelihood,
                observations: n,
            };
            best = match best {
                Some(b) if b.log_likelihood >= log_likelihood => Some(b),
                _ => Some(est),
            };
        }
        best
    }
}

/// A `(T_IDS, MTTSF)` response surface produced by the analytic model.
#[derive(Debug, Clone, Default)]
pub struct ResponseSurface {
    points: Vec<(f64, f64)>,
}

impl ResponseSurface {
    /// Build from `(t_ids, mttsf)` pairs.
    ///
    /// # Panics
    /// Panics on an empty table or non-positive intervals.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(
            !points.is_empty(),
            "response surface needs at least one point"
        );
        assert!(
            points.iter().all(|&(t, _)| t > 0.0),
            "T_IDS values must be positive"
        );
        Self { points }
    }

    /// The interval with the highest MTTSF.
    pub fn optimal_interval(&self) -> f64 {
        self.points
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN MTTSF"))
            .expect("non-empty")
            .0
    }

    /// Table points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// Closed-loop controller: attacker estimate in, detection profile out.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    estimator: AttackerEstimator,
    exponent: f64,
    fallback_interval: f64,
}

impl AdaptiveController {
    /// Create a controller; `fallback_interval` is used until enough
    /// observations arrive.
    pub fn new(exponent: f64, fallback_interval: f64) -> Self {
        assert!(
            fallback_interval > 0.0,
            "fallback interval must be positive"
        );
        Self {
            estimator: AttackerEstimator::new(exponent),
            exponent,
            fallback_interval,
        }
    }

    /// Feed a compromise observation.
    pub fn observe(&mut self, inter_arrival: f64, mc: f64) {
        self.estimator.record(inter_arrival, mc);
    }

    /// Current attacker estimate, if enough data.
    pub fn attacker(&self) -> Option<AttackerEstimate> {
        self.estimator.estimate()
    }

    /// The paper's matching rule: answer the attacker's shape in kind.
    pub fn matching_shape(&self) -> RateShape {
        self.attacker().map_or(RateShape::Linear, |e| e.shape)
    }

    /// Recommend a detection profile given a response surface for the
    /// current estimate (falls back to linear detection at the fallback
    /// interval with no data).
    pub fn recommend(&self, surface: Option<&ResponseSurface>) -> DetectionProfile {
        let interval = surface.map_or(self.fallback_interval, ResponseSurface::optimal_interval);
        DetectionProfile {
            shape: self.matching_shape(),
            base_interval: interval,
            exponent: self.exponent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numerics::dist::sample_exponential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Generate synthetic compromise sequences from a ground-truth shape.
    fn synthesize(shape: RateShape, base: f64, n: usize, seed: u64) -> AttackerEstimator {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut est = AttackerEstimator::new(3.0);
        // mc grows as compromises accumulate in a 100-node group with no
        // evictions: T = 100 − i trusted, T + U = 100.
        for i in 0..n {
            let trusted = 100 - i as u32;
            let mc = 100.0 / trusted as f64;
            let rate = base * shape.eval(mc, 3.0);
            let dt = sample_exponential(&mut rng, rate);
            est.record(dt, mc);
        }
        est
    }

    #[test]
    fn too_few_observations_yield_none() {
        let mut e = AttackerEstimator::new(3.0);
        assert!(e.estimate().is_none());
        e.record(10.0, 1.0);
        e.record(9.0, 1.1);
        assert!(e.estimate().is_none());
        e.record(8.0, 1.2);
        assert!(e.estimate().is_some());
    }

    #[test]
    fn classifies_each_shape_with_enough_data() {
        // Majority-vote over seeds: sampling noise can flip single runs, the
        // estimator must get it right most of the time.
        for truth in RateShape::all() {
            let mut wins = 0;
            let trials = 9;
            for seed in 0..trials {
                let est = synthesize(truth, 1.0 / 3600.0, 90, 1_000 + seed);
                if est.estimate().unwrap().shape == truth {
                    wins += 1;
                }
            }
            assert!(wins * 2 > trials, "{truth:?}: only {wins}/{trials} correct");
        }
    }

    #[test]
    fn base_rate_recovered_within_factor_two() {
        let base = 1.0 / (12.0 * 3600.0);
        let est = synthesize(RateShape::Linear, base, 40, 5)
            .estimate()
            .unwrap();
        assert!(
            est.base_rate > base / 2.0 && est.base_rate < base * 2.0,
            "{}",
            est.base_rate
        );
    }

    #[test]
    fn response_surface_optimum() {
        let s = ResponseSurface::new(vec![(30.0, 5.0), (60.0, 9.0), (120.0, 7.0)]);
        assert_eq!(s.optimal_interval(), 60.0);
    }

    #[test]
    #[should_panic]
    fn empty_surface_rejected() {
        ResponseSurface::new(vec![]);
    }

    #[test]
    fn controller_defaults_to_linear_fallback() {
        let c = AdaptiveController::new(3.0, 90.0);
        let rec = c.recommend(None);
        assert_eq!(rec.shape, RateShape::Linear);
        assert_eq!(rec.base_interval, 90.0);
    }

    #[test]
    fn controller_matches_attacker_and_surface() {
        let mut c = AdaptiveController::new(3.0, 90.0);
        // feed a clearly polynomial attacker
        let est = synthesize(RateShape::Polynomial, 1.0 / 3600.0, 90, 9);
        for o in 0..est.len() {
            // replay the synthetic observations
            let obs = &est.observations[o];
            c.observe(obs.inter_arrival, obs.mc);
        }
        let surface = ResponseSurface::new(vec![(15.0, 3.0), (60.0, 8.0), (240.0, 4.0)]);
        let rec = c.recommend(Some(&surface));
        assert_eq!(rec.base_interval, 60.0);
        // shape should match the (strongly identifiable) polynomial truth
        assert_eq!(rec.shape, RateShape::Polynomial);
    }
}
