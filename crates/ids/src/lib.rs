//! Distributed intrusion-detection substrate.
//!
//! Implements both IDS layers the paper analyzes:
//!
//! * **Host-based IDS** ([`host`]): every node pre-installs a local
//!   detector abstracted by two probabilities — false negative `p1` and
//!   false positive `p2` (misuse detection trends to high `p1`/low `p2`,
//!   anomaly detection the opposite).
//! * **Voting-based IDS** ([`voting`]): a target node is periodically
//!   judged by `m` randomly selected vote participants; a majority
//!   (`⌈m/2⌉`) of *evict* votes expels it via rekeying. Compromised voters
//!   collude — they vote to evict good targets and to keep bad ones. The
//!   module provides both an executable voting round for the simulator and
//!   the exact analytic `Pfp`/`Pfn` (the paper's Equation 1, reconstructed
//!   in DESIGN.md §2.3) as hypergeometric–binomial tail sums.
//! * **Attacker / detection rate functions** ([`functions`]): logarithmic,
//!   linear, and polynomial shapes normalized to the base rate at the
//!   initial state (DESIGN.md §2.2).
//! * **Adaptive control** ([`adaptive`]): classifies the attacker shape
//!   from observed compromise times and selects the matching detection
//!   function and optimal base interval — the paper's proposed dynamic
//!   defense.

pub mod adaptive;
pub mod functions;
pub mod host;
pub mod voting;

pub use adaptive::{AdaptiveController, AttackerEstimate, AttackerEstimator};
pub use functions::{AttackerProfile, DetectionProfile, RateShape};
pub use host::HostIds;
pub use voting::{p_false_negative, p_false_positive, VoteOutcome, VotingConfig};
