//! Adversary-strategy and response-policy scenario axes.
//!
//! The paper's threat model is a single attacker-intensity knob plus a
//! collusion flag. This crate widens that into two orthogonal axes shared
//! by **every** evaluation backend (exact CTMC, SPN token-game simulation,
//! protocol DES, mobility DES):
//!
//! - [`AttackerStrategy`]: how the adversary modulates capture and
//!   collusion over time and state — `burst` (on/off intensity phases),
//!   `stealth` (low-rate under-the-radar captures that also evade the host
//!   IDS), `targeted` (capture and collusion pressure concentrated where
//!   the adversary already has a voting foothold).
//! - [`ResponsePolicy`]: what the system does on a detection — `evict`
//!   (the paper's behavior), `quarantine-and-rejoin` (temporary isolation
//!   with false-release dynamics), `rekey-throttle` (rate-limited rekeying
//!   with queued evictions and a stale-key exposure window).
//!
//! The crate is dependency-free on purpose: it holds only the scenario
//! *types*, their validation, and the closed-form modulation helpers, so
//! the analytic generator and the executable simulators provably apply the
//! same formulas. Consistency across backends is by construction, not by
//! re-derivation.

/// How the adversary schedules captures and colludes in votes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackerStrategy {
    /// The paper's stationary attacker (no modulation).
    Baseline,
    /// Two-phase on/off attacker: capture intensity is multiplied by
    /// `multiplier` while the attacker is in its active phase. Phase
    /// switching is an exponential race (`on_rate` to enter the active
    /// phase, `off_rate` to leave it); the attacker starts dormant.
    Burst {
        /// Rate (1/s) of entering the active phase.
        on_rate: f64,
        /// Rate (1/s) of leaving the active phase.
        off_rate: f64,
        /// Capture-rate multiplier while active (≥ 1).
        multiplier: f64,
    },
    /// Low-and-slow attacker: captures at `rate_factor` of the baseline
    /// intensity, but each compromised node evades the host IDS with
    /// probability `evasion` (raising the effective per-host
    /// false-negative probability `p1` to `p1 + (1 − p1)·evasion`, which
    /// both slows voted detection and makes undetected data leaks more
    /// likely).
    Stealth {
        /// Capture-rate factor in `(0, 1]`.
        rate_factor: f64,
        /// Host-IDS evasion probability in `[0, 1)`.
        evasion: f64,
    },
    /// Voter-directed attacker: capture intensity and vote collusion both
    /// grow with the adversary's current voting foothold `U / (T + U)`,
    /// scaled by `focus` in `[0, 1]` (see
    /// [`targeted_capture_multiplier`] and
    /// [`targeted_effective_collusion`]).
    Targeted {
        /// Foothold coupling strength in `[0, 1]`.
        focus: f64,
    },
}

/// What the system does when the voting IDS convicts a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResponsePolicy {
    /// Permanent eviction with an immediate group rekey (the paper's
    /// behavior).
    Evict,
    /// Temporary isolation: a convicted node is keyed out (one rekey) and
    /// held in quarantine; review completes at `release_rate` per
    /// quarantined node. A quarantined good node always rejoins (one
    /// rejoin rekey); a quarantined compromised node is falsely released
    /// back into the group with probability `false_release_prob`
    /// (rejoin rekey) and permanently evicted otherwise (no extra rekey).
    QuarantineRejoin {
        /// Per-node review completion rate (1/s).
        release_rate: f64,
        /// Probability a compromised node passes review in `[0, 1)`.
        false_release_prob: f64,
    },
    /// Rate-limited rekeying: convictions still remove the node from the
    /// group immediately, but the excluding rekey is queued and served at
    /// most `max_rate` per second (one rekey per service). While a
    /// conviction is pending its stale key still decrypts group traffic,
    /// leaving a data-leak exposure window.
    RekeyThrottle {
        /// Maximum rekey service rate (1/s).
        max_rate: f64,
    },
}

/// One point on the scenario grid: an attacker strategy paired with a
/// response policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Adversary behavior.
    pub attacker: AttackerStrategy,
    /// System response to convictions.
    pub response: ResponsePolicy,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

impl ScenarioConfig {
    /// The paper's scenario: stationary attacker, immediate eviction.
    pub fn baseline() -> Self {
        Self {
            attacker: AttackerStrategy::Baseline,
            response: ResponsePolicy::Evict,
        }
    }

    /// True when both axes are at their baseline setting (the scenario
    /// machinery is then a no-op and every backend reduces to its
    /// pre-scenario behavior).
    pub fn is_baseline(&self) -> bool {
        self.attacker == AttackerStrategy::Baseline && self.response == ResponsePolicy::Evict
    }

    /// Validate parameter ranges, naming the offending field.
    ///
    /// # Errors
    /// Returns a human-readable message naming the field and its valid
    /// range.
    pub fn validate(&self) -> Result<(), String> {
        match self.attacker {
            AttackerStrategy::Baseline => {}
            AttackerStrategy::Burst {
                on_rate,
                off_rate,
                multiplier,
            } => {
                require_positive_finite("scenario.attacker.on_rate", on_rate)?;
                require_positive_finite("scenario.attacker.off_rate", off_rate)?;
                if !multiplier.is_finite() || multiplier < 1.0 {
                    return Err(format!(
                        "scenario.attacker.multiplier must be finite and >= 1, got {multiplier}"
                    ));
                }
            }
            AttackerStrategy::Stealth {
                rate_factor,
                evasion,
            } => {
                if !rate_factor.is_finite() || rate_factor <= 0.0 || rate_factor > 1.0 {
                    return Err(format!(
                        "scenario.attacker.rate_factor must lie in (0, 1], got {rate_factor}"
                    ));
                }
                if !evasion.is_finite() || !(0.0..1.0).contains(&evasion) {
                    return Err(format!(
                        "scenario.attacker.evasion must lie in [0, 1), got {evasion}"
                    ));
                }
            }
            AttackerStrategy::Targeted { focus } => {
                if !focus.is_finite() || !(0.0..=1.0).contains(&focus) {
                    return Err(format!(
                        "scenario.attacker.focus must lie in [0, 1], got {focus}"
                    ));
                }
            }
        }
        match self.response {
            ResponsePolicy::Evict => {}
            ResponsePolicy::QuarantineRejoin {
                release_rate,
                false_release_prob,
            } => {
                require_positive_finite("scenario.response.release_rate", release_rate)?;
                if !false_release_prob.is_finite() || !(0.0..1.0).contains(&false_release_prob) {
                    return Err(format!(
                        "scenario.response.false_release_prob must lie in [0, 1), got {false_release_prob}"
                    ));
                }
            }
            ResponsePolicy::RekeyThrottle { max_rate } => {
                require_positive_finite("scenario.response.max_rate", max_rate)?;
            }
        }
        Ok(())
    }
}

fn require_positive_finite(field: &str, v: f64) -> Result<(), String> {
    if v.is_finite() && v > 0.0 {
        Ok(())
    } else {
        Err(format!("{field} must be finite and > 0, got {v}"))
    }
}

// --- shared modulation formulas -------------------------------------------
//
// Every backend — the exact CTMC generator, the SPN token-game simulator,
// and both discrete-event simulators — calls these same functions, so the
// analytic and executed scenario dynamics cannot drift apart.

/// Stealth attackers raise the effective host-IDS false-negative
/// probability from `p1` to `p1 + (1 − p1)·evasion`.
pub fn stealth_effective_p1(p1: f64, evasion: f64) -> f64 {
    p1 + (1.0 - p1) * evasion
}

/// Targeted capture multiplier `1 + focus · U/(T+U)`: the more voting
/// foothold the adversary holds, the harder it pushes for the next
/// capture. Identity when the group is empty or `focus` is zero.
pub fn targeted_capture_multiplier(focus: f64, trusted: u32, undetected: u32) -> f64 {
    let live = trusted + undetected;
    if live == 0 {
        1.0
    } else {
        1.0 + focus * undetected as f64 / live as f64
    }
}

/// Targeted effective collusion probability
/// `clamp(q + (1 − q)·focus·U/(T+U), 0, 1)`: compromised voters coordinate
/// more reliably as the adversary's foothold grows.
pub fn targeted_effective_collusion(q: f64, focus: f64, trusted: u32, undetected: u32) -> f64 {
    let live = trusted + undetected;
    if live == 0 {
        return q;
    }
    let boosted = q + (1.0 - q) * focus * undetected as f64 / live as f64;
    boosted.clamp(0.0, 1.0)
}

/// Burst capture multiplier for the current attacker phase.
pub fn burst_capture_multiplier(multiplier: f64, active: bool) -> f64 {
    if active {
        multiplier
    } else {
        1.0
    }
}

impl AttackerStrategy {
    /// Capture-rate factor applied uniformly in every state (`stealth`
    /// only; the burst and targeted factors are state-dependent and come
    /// from [`burst_capture_multiplier`] / [`targeted_capture_multiplier`]).
    pub fn stationary_rate_factor(&self) -> f64 {
        match self {
            AttackerStrategy::Stealth { rate_factor, .. } => *rate_factor,
            _ => 1.0,
        }
    }

    /// Host-IDS evasion probability (`stealth` only).
    pub fn evasion(&self) -> f64 {
        match self {
            AttackerStrategy::Stealth { evasion, .. } => *evasion,
            _ => 0.0,
        }
    }

    /// The foothold coupling strength (`targeted` only).
    pub fn focus(&self) -> f64 {
        match self {
            AttackerStrategy::Targeted { focus } => *focus,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_baseline() {
        assert!(ScenarioConfig::baseline().is_baseline());
        assert!(ScenarioConfig::default().is_baseline());
        let s = ScenarioConfig {
            attacker: AttackerStrategy::Targeted { focus: 0.5 },
            response: ResponsePolicy::Evict,
        };
        assert!(!s.is_baseline());
    }

    #[test]
    fn validation_names_the_field() {
        let bad = ScenarioConfig {
            attacker: AttackerStrategy::Burst {
                on_rate: -1.0,
                off_rate: 1.0,
                multiplier: 2.0,
            },
            response: ResponsePolicy::Evict,
        };
        let msg = bad.validate().unwrap_err();
        assert!(msg.contains("scenario.attacker.on_rate"), "{msg}");

        let bad = ScenarioConfig {
            attacker: AttackerStrategy::Stealth {
                rate_factor: 1.5,
                evasion: 0.0,
            },
            response: ResponsePolicy::Evict,
        };
        assert!(bad.validate().unwrap_err().contains("rate_factor"));

        let bad = ScenarioConfig {
            attacker: AttackerStrategy::Baseline,
            response: ResponsePolicy::QuarantineRejoin {
                release_rate: 0.01,
                false_release_prob: 1.0,
            },
        };
        assert!(bad.validate().unwrap_err().contains("false_release_prob"));

        let bad = ScenarioConfig {
            attacker: AttackerStrategy::Baseline,
            response: ResponsePolicy::RekeyThrottle { max_rate: f64::NAN },
        };
        assert!(bad.validate().unwrap_err().contains("max_rate"));
    }

    #[test]
    fn valid_configs_pass() {
        for s in [
            ScenarioConfig::baseline(),
            ScenarioConfig {
                attacker: AttackerStrategy::Burst {
                    on_rate: 1.0 / 3600.0,
                    off_rate: 1.0 / 1800.0,
                    multiplier: 4.0,
                },
                response: ResponsePolicy::QuarantineRejoin {
                    release_rate: 1.0 / 600.0,
                    false_release_prob: 0.1,
                },
            },
            ScenarioConfig {
                attacker: AttackerStrategy::Stealth {
                    rate_factor: 0.5,
                    evasion: 0.3,
                },
                response: ResponsePolicy::RekeyThrottle {
                    max_rate: 1.0 / 120.0,
                },
            },
        ] {
            s.validate().unwrap();
        }
    }

    #[test]
    fn modulation_formulas_hit_boundaries() {
        assert_eq!(stealth_effective_p1(0.01, 0.0), 0.01);
        assert!((stealth_effective_p1(0.0, 0.4) - 0.4).abs() < 1e-12);
        assert_eq!(targeted_capture_multiplier(0.5, 0, 0), 1.0);
        assert!((targeted_capture_multiplier(1.0, 0, 4) - 2.0).abs() < 1e-12);
        assert!((targeted_capture_multiplier(0.5, 3, 1) - 1.125).abs() < 1e-12);
        assert_eq!(targeted_effective_collusion(0.25, 0.5, 0, 0), 0.25);
        assert!((targeted_effective_collusion(0.0, 1.0, 0, 3) - 1.0).abs() < 1e-12);
        let q = targeted_effective_collusion(0.2, 0.5, 2, 2);
        assert!((q - (0.2 + 0.8 * 0.25)).abs() < 1e-12);
        assert_eq!(burst_capture_multiplier(4.0, false), 1.0);
        assert_eq!(burst_capture_multiplier(4.0, true), 4.0);
    }

    #[test]
    fn accessors_default_to_identity() {
        let b = AttackerStrategy::Baseline;
        assert_eq!(b.stationary_rate_factor(), 1.0);
        assert_eq!(b.evasion(), 0.0);
        assert_eq!(b.focus(), 0.0);
        let s = AttackerStrategy::Stealth {
            rate_factor: 0.5,
            evasion: 0.25,
        };
        assert_eq!(s.stationary_rate_factor(), 0.5);
        assert_eq!(s.evasion(), 0.25);
    }
}
