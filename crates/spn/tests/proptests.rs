//! Property-based cross-checks of the SPN engine: the three independent
//! solution paths (linear-solve MTTA, uniformization occupancy, Monte-Carlo
//! simulation) must agree on randomly generated absorbing chains, and
//! structural invariants must hold on every explored graph.

use proptest::prelude::*;
use spn::ctmc::{Ctmc, CtmcTemplate, TransientOptions};
use spn::model::{SpnBuilder, TransitionDef};
use spn::reach::{explore, ExploreOptions};
use spn::reward::RewardSet;
use spn::sim::{SimOptions, Simulator};

/// Build a randomized death process: `n` tokens drain with per-token rate
/// `base`, with an optional bypass transition that removes two at once.
fn death_net(n: u32, base: f64, with_bypass: bool) -> spn::model::Spn {
    let mut b = SpnBuilder::new();
    let up = b.add_place("up", n);
    b.add_transition(TransitionDef::timed("die", move |m| base * m.tokens(up) as f64).input(up, 1));
    if with_bypass {
        b.add_transition(
            TransitionDef::timed("die2", move |m| 0.3 * base * m.tokens(up) as f64).input(up, 2),
        );
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reachability_conserves_tokens_in_conservative_nets(n in 1u32..30) {
        // "die" moves tokens out — make a conservative variant instead:
        // tokens circulate between two places.
        let mut b = SpnBuilder::new();
        let a = b.add_place("a", n);
        let c = b.add_place("c", 0);
        b.add_transition(TransitionDef::timed_const("ac", 1.0).input(a, 1).output(c, 1));
        b.add_transition(TransitionDef::timed_const("ca", 2.0).input(c, 1).output(a, 1));
        let net = b.build().unwrap();
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        prop_assert_eq!(g.state_count(), n as usize + 1);
        for m in &g.states {
            prop_assert_eq!(m.total_tokens(), n as u64);
        }
    }

    #[test]
    fn ctmc_edges_have_positive_rates(n in 1u32..20, base in 0.01f64..10.0, bypass in any::<bool>()) {
        let net = death_net(n, base, bypass);
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        for elist in &g.edges {
            for e in elist {
                prop_assert!(e.rate > 0.0);
                prop_assert!((e.target as usize) < g.state_count());
            }
        }
    }

    #[test]
    fn mtta_positive_and_decreasing_in_rate(n in 1u32..15, base in 0.05f64..5.0) {
        let slow = death_net(n, base, false);
        let fast = death_net(n, base * 2.0, false);
        let mtta = |net: &spn::model::Spn| {
            let g = explore(net, &ExploreOptions::default()).unwrap();
            Ctmc::from_graph(&g).unwrap().mean_time_to_absorption().unwrap().mtta
        };
        let ms = mtta(&slow);
        let mf = mtta(&fast);
        prop_assert!(ms > 0.0);
        // doubling all rates exactly halves the expected time
        prop_assert!((ms / mf - 2.0).abs() < 1e-6, "{} vs {}", ms, mf);
    }

    #[test]
    fn mtta_matches_closed_form_death_chain(n in 1u32..25, base in 0.05f64..5.0) {
        let net = death_net(n, base, false);
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        let a = Ctmc::from_graph(&g).unwrap().mean_time_to_absorption().unwrap();
        let exact: f64 = (1..=n).map(|k| 1.0 / (base * k as f64)).sum();
        prop_assert!((a.mtta - exact).abs() < 1e-7 * (1.0 + exact), "{} vs {}", a.mtta, exact);
    }

    #[test]
    fn occupancy_approaches_mtta(n in 1u32..10, base in 0.2f64..4.0, bypass in any::<bool>()) {
        let net = death_net(n, base, bypass);
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        let c = Ctmc::from_graph(&g).unwrap();
        let a = c.mean_time_to_absorption().unwrap();
        // horizon long enough: 60 / (smallest rate) ≫ MTTA
        let horizon = (a.mtta * 40.0).max(1.0);
        let occ = c.expected_occupancy(horizon, &TransientOptions::default());
        let total: f64 = occ
            .iter()
            .enumerate()
            .filter(|&(i, _)| !c.absorbing()[i])
            .map(|(_, &o)| o)
            .sum();
        prop_assert!((total - a.mtta).abs() < 1e-4 * (1.0 + a.mtta), "{} vs {}", total, a.mtta);
    }

    #[test]
    fn absorption_probabilities_form_distribution(n in 1u32..12, base in 0.1f64..3.0, bypass in any::<bool>()) {
        let net = death_net(n, base, bypass);
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        let a = Ctmc::from_graph(&g).unwrap().mean_time_to_absorption().unwrap();
        let total: f64 = a.absorption_probability.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        for &p in &a.absorption_probability {
            prop_assert!((-1e-12..=1.0 + 1e-9).contains(&p));
        }
    }

    #[test]
    fn transient_distribution_is_stochastic(n in 1u32..8, base in 0.1f64..3.0, t in 0.0f64..20.0) {
        let net = death_net(n, base, false);
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        let c = Ctmc::from_graph(&g).unwrap();
        let pi = c.transient_distribution(t, &TransientOptions::default());
        let total: f64 = pi.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-7, "sum {}", total);
        for &p in &pi {
            prop_assert!(p >= -1e-10);
        }
    }
}

/// Randomized nets with tunable rate constants but fixed structure, for the
/// explore-once-solve-many re-weighting property below.
fn two_rate_net(n: u32, die: f64, leak: f64) -> spn::model::Spn {
    let mut b = SpnBuilder::new();
    let up = b.add_place("up", n);
    let bad = b.add_place("bad", 0);
    b.add_transition(TransitionDef::timed("die", move |m| die * m.tokens(up) as f64).input(up, 1));
    b.add_transition(
        TransitionDef::timed("leak", move |m| leak * m.tokens(up) as f64)
            .input(up, 1)
            .output(bad, 1),
    );
    // cost-only self loop whose rate also varies
    b.add_transition(TransitionDef::timed("noop", move |m| {
        0.5 * die * (m.tokens(up) + 1) as f64
    }));
    b.absorbing_when(move |m| m.tokens(bad) >= 2 || m.tokens(up) == 0);
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reweighted_graph_solves_equal_fresh_explores(
        n in 1u32..12,
        die0 in 0.05f64..5.0,
        leak0 in 0.01f64..2.0,
        die1 in 0.05f64..5.0,
        leak1 in 0.01f64..2.0,
    ) {
        // Explore once at (die0, leak0), re-weight to (die1, leak1), and
        // compare against a fresh exploration at (die1, leak1): the CTMC
        // solutions must be identical to solver precision.
        let base = explore(&two_rate_net(n, die0, leak0), &ExploreOptions::default()).unwrap();
        let target = two_rate_net(n, die1, leak1);
        let reweighted = base.reweighted(&target).unwrap();
        let fresh = explore(&target, &ExploreOptions::default()).unwrap();

        prop_assert_eq!(reweighted.state_count(), fresh.state_count());
        let a_re = Ctmc::from_graph(&reweighted).unwrap().mean_time_to_absorption().unwrap();
        let a_fresh = Ctmc::from_graph(&fresh).unwrap().mean_time_to_absorption().unwrap();
        let rel = (a_re.mtta - a_fresh.mtta).abs() / a_fresh.mtta.max(1e-300);
        prop_assert!(rel < 1e-8, "MTTA {} vs {} (rel {})", a_re.mtta, a_fresh.mtta, rel);

        // Sojourn vectors and absorption splits agree state-by-state.
        // (State order matches: re-weighting never re-orders, and the fresh
        // exploration of the same structure walks states identically.)
        for (s_re, s_fresh) in a_re.sojourn.iter().zip(&a_fresh.sojourn) {
            prop_assert!((s_re - s_fresh).abs() < 1e-8 * (1.0 + s_fresh.abs()));
        }
        for (p_re, p_fresh) in
            a_re.absorption_probability.iter().zip(&a_fresh.absorption_probability)
        {
            prop_assert!((p_re - p_fresh).abs() < 1e-8);
        }

        // Self-loop rates (reward-only mass) track the new net too.
        for (sl_re, sl_fresh) in
            reweighted.self_loop_rates.iter().zip(&fresh.self_loop_rates)
        {
            prop_assert_eq!(sl_re.len(), sl_fresh.len());
            for (&(t_re, r_re), &(t_fresh, r_fresh)) in sl_re.iter().zip(sl_fresh) {
                prop_assert_eq!(t_re, t_fresh);
                prop_assert!((r_re - r_fresh).abs() < 1e-10 * (1.0 + r_fresh.abs()));
            }
        }
    }

    #[test]
    fn template_refreshed_solves_are_bitwise_equal_to_fresh_builds(
        n in 1u32..10,
        die0 in 0.05f64..5.0,
        leak0 in 0.01f64..2.0,
        family in proptest::collection::vec((0.05f64..5.0, 0.01f64..2.0), 1..4),
    ) {
        // One exploration, one pattern build; every member of a random
        // rate family is solved twice — once on the in-place-refreshed
        // template CTMC, once on a fresh Ctmc::from_graph build — and the
        // two must agree BIT FOR BIT: the template accumulates values in
        // from_graph's order, and its explicit zero entries only add +0.0
        // terms to non-negative sums.
        let pristine = explore(&two_rate_net(n, die0, leak0), &ExploreOptions::default()).unwrap();
        let template = CtmcTemplate::new(&pristine).unwrap();
        let mut working = pristine.clone();
        let mut ctmc = template.instantiate(&pristine).unwrap();
        let opts = TransientOptions::default();
        for (die, leak) in family {
            let net = two_rate_net(n, die, leak);
            working.copy_rates_from(&pristine);
            working.reweight_in_place(&net).unwrap();
            template.refresh(&working, &mut ctmc).unwrap();
            let fresh = Ctmc::from_graph(&working).unwrap();

            let a_t = ctmc.mean_time_to_absorption().unwrap();
            let a_f = fresh.mean_time_to_absorption().unwrap();
            prop_assert_eq!(a_t.mtta.to_bits(), a_f.mtta.to_bits());
            for (x, y) in a_t.sojourn.iter().zip(&a_f.sojourn) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in a_t
                .absorption_probability
                .iter()
                .zip(&a_f.absorption_probability)
            {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }

            let times = [0.0, 0.3 * a_f.mtta, a_f.mtta, 4.0 * a_f.mtta];
            let s_t = ctmc.survival_curve(&times, &opts);
            let s_f = fresh.survival_curve(&times, &opts);
            for (x, y) in s_t.iter().zip(&s_f) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn repeated_reweighting_is_stable(
        n in 1u32..10,
        die in 0.05f64..5.0,
        leak in 0.01f64..2.0,
    ) {
        // Re-weighting back and forth must return to the original rates
        // (no drift from repeated in-place rescaling).
        let original = explore(&two_rate_net(n, die, leak), &ExploreOptions::default()).unwrap();
        let mut g = original.reweighted(&two_rate_net(n, die * 3.0, leak * 0.25)).unwrap();
        g.reweight_in_place(&two_rate_net(n, die, leak)).unwrap();
        for (e_re, e_orig) in g.edges.iter().flatten().zip(original.edges.iter().flatten()) {
            prop_assert_eq!(e_re.target, e_orig.target);
            prop_assert!(
                (e_re.rate - e_orig.rate).abs() < 1e-12 * (1.0 + e_orig.rate),
                "{} vs {}", e_re.rate, e_orig.rate
            );
        }
    }
}

/// Heavier statistical agreement check kept outside proptest (one fixed
/// configuration, many replications).
#[test]
fn simulation_confirms_analytic_mtta_on_branching_net() {
    let mut b = SpnBuilder::new();
    let up = b.add_place("up", 6);
    let leak = b.add_place("leak", 0);
    b.add_transition(TransitionDef::timed("die", move |m| 0.7 * m.tokens(up) as f64).input(up, 1));
    b.add_transition(
        TransitionDef::timed("leakage", move |m| 0.1 * m.tokens(up) as f64)
            .input(up, 1)
            .output(leak, 1),
    );
    b.absorbing_when(move |m| m.tokens(leak) > 0 || m.tokens(up) == 0);
    let net = b.build().unwrap();
    let g = explore(&net, &ExploreOptions::default()).unwrap();
    let ctmc = Ctmc::from_graph(&g).unwrap();
    let analytic = ctmc.mean_time_to_absorption().unwrap();

    let rewards = RewardSet::new();
    let sim = Simulator::new(&net, &rewards, SimOptions::default());
    let stats = sim.run_replications(40_000, 2024).unwrap();
    let ci = stats.mtta_ci(0.99);
    assert!(
        ci.contains(analytic.mtta),
        "sim CI [{}, {}] excludes analytic {}",
        ci.lo(),
        ci.hi(),
        analytic.mtta
    );

    // absorption split: P[leak] should match simulated frequency
    let leak_p: f64 = g
        .states
        .iter()
        .enumerate()
        .filter(|(_, m)| m.tokens(net.place_by_name("leak").unwrap()) > 0)
        .map(|(i, _)| analytic.absorption_probability[i])
        .sum();
    assert!(leak_p > 0.0 && leak_p < 1.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The uniformization survival curve of a random small absorbing SPN is
    // a proper survival function: S(0) = 1, monotone non-increasing, and
    // its integral over a long horizon is the absorption-solver MTTSF
    // (the paper's `MTTSF = ∫ S(t) dt` identity, checked numerically).
    #[test]
    fn survival_curve_is_proper_and_integrates_to_mtta(
        n in 1u32..10,
        die in 0.05f64..5.0,
        leak in 0.01f64..2.0,
    ) {
        let net = two_rate_net(n, die, leak);
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        let c = Ctmc::from_graph(&g).unwrap();
        let a = c.mean_time_to_absorption().unwrap();

        // long horizon: far past the mean; the slowest stage has rate
        // ≥ min(die, leak), so 30×MTTA leaves negligible tail mass
        let horizon = a.mtta * 30.0;
        let points = 240usize;
        let times: Vec<f64> = (0..=points)
            .map(|i| horizon * i as f64 / points as f64)
            .collect();
        let s = c.survival_curve(&times, &TransientOptions::default());

        prop_assert!((s[0] - 1.0).abs() < 1e-10, "S(0) = {}", s[0]);
        for w in s.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9, "survival increased: {} -> {}", w[0], w[1]);
        }
        for &v in &s {
            prop_assert!((0.0..=1.0).contains(&v));
        }

        // trapezoid ∫₀^horizon S(t) dt ≈ MTTA
        let h = horizon / points as f64;
        let integral: f64 = h
            * (s.iter().sum::<f64>() - 0.5 * (s[0] + s[points]));
        let rel = (integral - a.mtta).abs() / a.mtta;
        prop_assert!(rel < 0.02, "∫S = {} vs MTTA {} (rel {:.4})", integral, a.mtta, rel);
    }

    // Segment-wise propagation over an irregular grid matches independent
    // per-point transient solves.
    #[test]
    fn survival_curve_matches_per_point_transients(
        n in 1u32..8,
        die in 0.1f64..4.0,
        leak in 0.02f64..1.5,
        t1 in 0.01f64..2.0,
        t2 in 2.0f64..10.0,
    ) {
        let net = two_rate_net(n, die, leak);
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        let c = Ctmc::from_graph(&g).unwrap();
        let opts = TransientOptions::default();
        let times = [0.0, t1, t2];
        let s = c.survival_curve(&times, &opts);
        for (&t, &st) in times.iter().zip(&s) {
            let pi = c.transient_distribution(t, &opts);
            let direct: f64 = pi
                .iter()
                .zip(c.absorbing())
                .filter_map(|(&x, &a)| (!a).then_some(x))
                .sum();
            prop_assert!((st - direct).abs() < 1e-7, "t={}: {} vs {}", t, st, direct);
        }
    }
}
