//! Property-based checks of the [`spn::TransientEngine`]: the optimized
//! submatrix/ELL path must agree with a naive dense uniformization
//! reference, survival curves must be bit-identical at every thread
//! count, steady-state detection must only collapse tails it has earned,
//! and early-exit grids must agree with full propagation.

use numerics::foxglynn::PoissonWeights;
use proptest::prelude::*;
use spn::ctmc::{Ctmc, TransientOptions};
use spn::model::{SpnBuilder, TransitionDef};
use spn::reach::{explore, ExploreOptions, ReachabilityGraph};

/// Randomized death process: `n` tokens drain with per-token rate `base`,
/// optionally with a bypass transition removing two at once (gives the
/// chain branching, so absorption is not a straight line).
fn death_net(n: u32, base: f64, with_bypass: bool) -> spn::model::Spn {
    let mut b = SpnBuilder::new();
    let up = b.add_place("up", n);
    b.add_transition(TransitionDef::timed("die", move |m| base * m.tokens(up) as f64).input(up, 1));
    if with_bypass {
        b.add_transition(
            TransitionDef::timed("die2", move |m| 0.3 * base * m.tokens(up) as f64).input(up, 2),
        );
    }
    b.build().unwrap()
}

/// Naive dense uniformization: build the full `n × n` DTMC `P = I + Q/q`
/// from the reachability graph, run plain dense vector-matrix products,
/// and mix with independently computed Poisson weights. Shares no code
/// with the engine's compact-submatrix path beyond Fox–Glynn itself.
fn dense_survival(graph: &ReachabilityGraph, times: &[f64]) -> Vec<f64> {
    let n = graph.state_count();
    let mut exit = vec![0.0f64; n];
    for (s, elist) in graph.edges.iter().enumerate() {
        for e in elist {
            exit[s] += e.rate;
        }
    }
    let q = exit.iter().cloned().fold(0.0f64, f64::max) * 1.05 + 1e-9;
    let mut p = vec![vec![0.0f64; n]; n];
    for (s, elist) in graph.edges.iter().enumerate() {
        p[s][s] = 1.0 - exit[s] / q;
        for e in elist {
            p[s][e.target as usize] += e.rate / q;
        }
    }
    times
        .iter()
        .map(|&t| {
            let mut v = vec![0.0f64; n];
            for &(s, mass) in &graph.initial_distribution {
                v[s as usize] += mass;
            }
            let w = PoissonWeights::compute(q * t, 1e-12);
            let mut survival = 0.0;
            for k in 0..=w.right {
                let wk = w.weight(k);
                if wk > 0.0 {
                    survival += wk
                        * v.iter()
                            .enumerate()
                            .filter(|&(s, _)| !graph.absorbing[s])
                            .map(|(_, &x)| x)
                            .sum::<f64>();
                }
                if k == w.right {
                    break;
                }
                let next: Vec<f64> = (0..n)
                    .map(|j| (0..n).map(|i| v[i] * p[i][j]).sum())
                    .collect();
                v = next;
            }
            survival
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // (a) The engine's compact-submatrix ELL path reproduces a naive
    // dense uniformization of the same chain.
    #[test]
    fn engine_matches_naive_dense_uniformization(
        n in 1u32..8,
        base in 0.1f64..3.0,
        bypass in any::<bool>(),
    ) {
        let net = death_net(n, base, bypass);
        let graph = explore(&net, &ExploreOptions::default()).unwrap();
        let ctmc = Ctmc::from_graph(&graph).unwrap();
        let mtta = ctmc.mean_time_to_absorption().unwrap().mtta;
        let times: Vec<f64> = [0.3, 0.7, 1.3, 2.1].iter().map(|f| f * mtta).collect();
        let engine = ctmc.survival_curve(&times, &TransientOptions::default());
        let dense = dense_survival(&graph, &times);
        for (i, (e, d)) in engine.iter().zip(&dense).enumerate() {
            prop_assert!(
                (e - d).abs() < 1e-7,
                "t[{i}]: engine {e} vs dense {d}"
            );
        }
    }

    // (c) Steady-state detection truncates the matvec sequence but not
    // the answer: detected curves match undetected ones, with no more
    // matvecs spent.
    #[test]
    fn detection_preserves_curves_with_fewer_matvecs(
        n in 2u32..10,
        base in 0.2f64..2.0,
        bypass in any::<bool>(),
    ) {
        let net = death_net(n, base, bypass);
        let graph = explore(&net, &ExploreOptions::default()).unwrap();
        let ctmc = Ctmc::from_graph(&graph).unwrap();
        let mtta = ctmc.mean_time_to_absorption().unwrap().mtta;
        // the last point sits deep past absorption, where ‖vP − v‖∞
        // certainly undercuts the detection tolerance
        let times: Vec<f64> = [0.5, 1.5, 40.0].iter().map(|f| f * mtta).collect();
        let base_opts = TransientOptions {
            detect_tolerance: 0.0,
            early_exit: false,
            ..TransientOptions::default()
        };
        let detect_opts = TransientOptions {
            detect_tolerance: 1e-12,
            ..base_opts
        };
        let (full, full_stats) = ctmc.survival_curve_with_stats(&times, &base_opts);
        let (det, det_stats) = ctmc.survival_curve_with_stats(&times, &detect_opts);
        prop_assert_eq!(full_stats.detection_step, None);
        prop_assert!(det_stats.detection_step.is_some(), "detection must fire past 40·MTTA");
        prop_assert!(det_stats.matvecs < full_stats.matvecs,
            "detected {} vs full {}", det_stats.matvecs, full_stats.matvecs);
        for (i, (a, b)) in det.iter().zip(&full).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "t[{i}]: detected {a} vs full {b}");
        }
    }

    // (d) Early-exit grids agree with full propagation: once the live
    // mass is below epsilon every later point is an honest zero.
    #[test]
    fn early_exit_agrees_with_full_propagation(
        n in 1u32..8,
        base in 0.2f64..2.0,
        bypass in any::<bool>(),
    ) {
        let net = death_net(n, base, bypass);
        let graph = explore(&net, &ExploreOptions::default()).unwrap();
        let ctmc = Ctmc::from_graph(&graph).unwrap();
        let mtta = ctmc.mean_time_to_absorption().unwrap().mtta;
        // 10 points out to 45·MTTA: the live mass drops below the 1e-10
        // truncation epsilon well before the tail of the grid
        let times: Vec<f64> = (1..=10).map(|i| 4.5 * i as f64 * mtta).collect();
        let base_opts = TransientOptions {
            early_exit: false,
            ..TransientOptions::default()
        };
        let exit_opts = TransientOptions {
            early_exit: true,
            ..base_opts
        };
        let (full, full_stats) = ctmc.survival_curve_with_stats(&times, &base_opts);
        let (fast, fast_stats) = ctmc.survival_curve_with_stats(&times, &exit_opts);
        prop_assert!(!full_stats.early_exit);
        prop_assert!(fast_stats.early_exit, "grid must exit early past 45·MTTA");
        prop_assert!(fast_stats.matvecs < full_stats.matvecs);
        for (i, (a, b)) in fast.iter().zip(&full).enumerate() {
            prop_assert!((a - b).abs() < 1e-8, "t[{i}]: early-exit {a} vs full {b}");
        }
    }
}

/// (b) Survival curves are bit-identical at every thread count. 600
/// transient states puts the chain over the engine's parallel threshold,
/// so 1 thread runs the sequential kernel and 2/8 run the chunked
/// parallel one — all three must agree to the last bit. Not a proptest:
/// `RAYON_NUM_THREADS` is process-global, and the chain must be big
/// enough to actually engage the parallel path.
#[test]
fn survival_is_bit_identical_across_thread_counts() {
    let net = death_net(600, 0.5, true);
    let graph = explore(&net, &ExploreOptions::default()).unwrap();
    let ctmc = Ctmc::from_graph(&graph).unwrap();
    let times = [0.4, 1.1, 2.3];
    let curve_at = |threads: &str| {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let curve = ctmc.survival_curve(&times, &TransientOptions::default());
        std::env::remove_var("RAYON_NUM_THREADS");
        curve
    };
    let c1 = curve_at("1");
    let c2 = curve_at("2");
    let c8 = curve_at("8");
    assert!(
        c1[0] > 0.0 && c1[0] < 1.0,
        "grid must hit a nontrivial regime"
    );
    for i in 0..times.len() {
        assert_eq!(c1[i].to_bits(), c2[i].to_bits(), "t[{i}]: 1 vs 2 threads");
        assert_eq!(c1[i].to_bits(), c8[i].to_bits(), "t[{i}]: 1 vs 8 threads");
    }
}
