//! Failure-injection tests: the engine must report model pathologies as
//! typed errors, never panic or silently mis-solve.

use spn::ctmc::Ctmc;
use spn::error::SpnError;
use spn::model::{SpnBuilder, TransitionDef};
use spn::reach::{explore, ExploreOptions};
use spn::reward::RewardSet;
use spn::sim::{SimOptions, Simulator};

#[test]
fn nan_rate_rejected_during_exploration() {
    let mut b = SpnBuilder::new();
    let a = b.add_place("a", 1);
    b.add_transition(TransitionDef::timed("nan", |_| f64::NAN).input(a, 1));
    let net = b.build().unwrap();
    assert!(matches!(
        explore(&net, &ExploreOptions::default()),
        Err(SpnError::BadRate { .. })
    ));
}

#[test]
fn negative_rate_rejected_during_simulation() {
    let mut b = SpnBuilder::new();
    let a = b.add_place("a", 2);
    // rate turns negative after the first firing
    b.add_transition(TransitionDef::timed("decay", move |m| m.tokens(a) as f64 - 1.5).input(a, 1));
    let net = b.build().unwrap();
    let rewards = RewardSet::new();
    let sim = Simulator::new(&net, &rewards, SimOptions::default());
    assert!(matches!(sim.run_one(3), Err(SpnError::BadRate { .. })));
}

#[test]
fn negative_immediate_weight_rejected() {
    let mut b = SpnBuilder::new();
    let a = b.add_place("a", 1);
    b.add_transition(TransitionDef::immediate_weighted("w", |_| -1.0, 0).input(a, 1));
    let net = b.build().unwrap();
    assert!(matches!(
        explore(&net, &ExploreOptions::default()),
        Err(SpnError::BadRate { .. })
    ));
}

#[test]
fn vanishing_depth_option_controls_loop_detection() {
    // a chain of immediates longer than the configured depth
    let mut b = SpnBuilder::new();
    let start = b.add_place("start", 1);
    let mut places = vec![start];
    for i in 0..6 {
        places.push(b.add_place(format!("v{i}"), 0));
    }
    b.add_transition(
        TransitionDef::timed_const("go", 1.0)
            .input(start, 1)
            .output(places[1], 1),
    );
    for i in 1..6 {
        b.add_transition(
            TransitionDef::immediate(format!("i{i}"))
                .input(places[i], 1)
                .output(places[i + 1], 1),
        );
    }
    let net = b.build().unwrap();
    // depth 3 < chain length 5 → reported as a loop
    let tight = ExploreOptions {
        max_vanishing_depth: 3,
        ..Default::default()
    };
    assert!(matches!(
        explore(&net, &tight),
        Err(SpnError::VanishingLoop { .. })
    ));
    // default depth succeeds
    assert!(explore(&net, &ExploreOptions::default()).is_ok());
}

#[test]
fn parallel_replications_propagate_first_error() {
    let mut b = SpnBuilder::new();
    let a = b.add_place("a", 3);
    b.add_transition(
        TransitionDef::timed("bad", move |m| {
            // valid at first, NaN after two firings
            if m.tokens(a) >= 2 {
                1.0
            } else {
                f64::NAN
            }
        })
        .input(a, 1),
    );
    let net = b.build().unwrap();
    let rewards = RewardSet::new();
    let sim = Simulator::new(&net, &rewards, SimOptions::default());
    assert!(sim.run_replications(64, 5).is_err());
}

#[test]
fn empty_reachability_graph_rejected_by_ctmc() {
    // Artificially construct a graph with a bad initial distribution by
    // exercising the Ctmc validation path: a net whose initial distribution
    // cannot sum to 1 is impossible through the public API, so instead we
    // check the unreachable-absorption path.
    let mut b = SpnBuilder::new();
    let q = b.add_place("q", 0);
    b.add_transition(
        TransitionDef::timed_const("in", 1.0)
            .output(q, 1)
            .inhibitor(q, 2),
    );
    b.add_transition(TransitionDef::timed_const("out", 2.0).input(q, 1));
    let net = b.build().unwrap();
    let g = explore(&net, &ExploreOptions::default()).unwrap();
    let ctmc = Ctmc::from_graph(&g).unwrap();
    assert!(matches!(
        ctmc.mean_time_to_absorption(),
        Err(SpnError::AnalysisUnavailable(_))
    ));
}

#[test]
fn max_firings_censors_runaway_simulation() {
    // ergodic net would run forever; the firing cap must stop it
    let mut b = SpnBuilder::new();
    let q = b.add_place("q", 1);
    let r = b.add_place("r", 0);
    b.add_transition(
        TransitionDef::timed_const("qr", 10.0)
            .input(q, 1)
            .output(r, 1),
    );
    b.add_transition(
        TransitionDef::timed_const("rq", 10.0)
            .input(r, 1)
            .output(q, 1),
    );
    let net = b.build().unwrap();
    let rewards = RewardSet::new();
    let opts = SimOptions {
        max_firings: 1_000,
        ..Default::default()
    };
    let sim = Simulator::new(&net, &rewards, opts);
    let o = sim.run_one(1).unwrap();
    assert!(!o.absorbed);
    assert_eq!(o.firings.values().sum::<u64>(), 1_000);
}
