//! Continuous-time Markov chain analysis over the tangible reachability
//! graph.
//!
//! Three solver families:
//!
//! * **Absorption**: expected sojourn times in the transient states solve
//!   the sparse linear system `Qᵀ_TT σ = −π₀`; the mean time to absorption
//!   is `Σ σ` (the paper's MTTSF), and expected accumulated rewards until
//!   absorption are `Σ σᵢ rᵢ` (the paper's Ĉtotal numerator). Absorption
//!   probabilities per absorbing state fall out of the same vector, which
//!   tells us whether a run failed through data leak (C1) or Byzantine
//!   capture (C2).
//! * **Transient**: `π(t)` and `∫₀ᵗ π(u) du` via uniformization with
//!   Poisson weights — the direct numerical form of the paper's
//!   `MTTSF = ∫ Σ rᵢ Pᵢ(t) dt` definition.
//! * **Steady state**: power iteration on the uniformized chain for ergodic
//!   nets (used by the mobility birth–death calibration).

use crate::error::SpnError;
use crate::reach::ReachabilityGraph;
use numerics::foxglynn::PoissonWeights;
use numerics::linsolve::IterConfig;
use numerics::sparse::{Csr, Triplets};

/// A CTMC extracted from a reachability graph.
#[derive(Debug, Clone)]
pub struct Ctmc {
    /// Off-diagonal rate matrix (row = source state).
    rates: Csr,
    /// Total exit rate per state.
    exit: Vec<f64>,
    /// Initial distribution as (state, probability) pairs.
    initial: Vec<(u32, f64)>,
    /// Absorbing flags.
    absorbing: Vec<bool>,
}

/// Options for uniformization-based transient analysis.
#[derive(Debug, Clone, Copy)]
pub struct TransientOptions {
    /// Poisson truncation error.
    pub epsilon: f64,
}

impl Default for TransientOptions {
    fn default() -> Self {
        Self { epsilon: 1e-10 }
    }
}

/// Result of the absorption solve.
#[derive(Debug, Clone)]
pub struct AbsorptionAnalysis {
    /// Mean time to absorption from the initial distribution.
    pub mtta: f64,
    /// Expected total time spent in each state before absorption
    /// (zero for absorbing/unreachable states).
    pub sojourn: Vec<f64>,
    /// Probability of being absorbed in each state (zero for transient
    /// states); sums to 1.
    pub absorption_probability: Vec<f64>,
}

impl AbsorptionAnalysis {
    /// Expected accumulated rate reward until absorption:
    /// `Σᵢ sojourn[i] · reward[i]`.
    ///
    /// # Panics
    /// Panics if `reward_per_state.len()` differs from the state count.
    pub fn accumulated_reward(&self, reward_per_state: &[f64]) -> f64 {
        assert_eq!(
            reward_per_state.len(),
            self.sojourn.len(),
            "reward vector length mismatch"
        );
        self.sojourn
            .iter()
            .zip(reward_per_state)
            .map(|(s, r)| s * r)
            .sum()
    }

    /// Time-averaged rate reward until absorption (accumulated / MTTA).
    pub fn time_averaged_reward(&self, reward_per_state: &[f64]) -> f64 {
        if self.mtta == 0.0 {
            0.0
        } else {
            self.accumulated_reward(reward_per_state) / self.mtta
        }
    }
}

impl Ctmc {
    /// Build the CTMC from a reachability graph.
    ///
    /// # Errors
    /// Returns [`SpnError::InvalidModel`] for an empty graph or an initial
    /// distribution that does not sum to 1.
    pub fn from_graph(graph: &ReachabilityGraph) -> Result<Self, SpnError> {
        let n = graph.state_count();
        if n == 0 {
            return Err(SpnError::InvalidModel(
                "reachability graph has no states".into(),
            ));
        }
        let mass: f64 = graph.initial_distribution.iter().map(|&(_, p)| p).sum();
        if (mass - 1.0).abs() > 1e-9 {
            return Err(SpnError::InvalidModel(format!(
                "initial distribution sums to {mass}, expected 1"
            )));
        }
        let mut t = Triplets::new(n, n);
        let mut exit = vec![0.0; n];
        for (s, elist) in graph.edges.iter().enumerate() {
            for e in elist {
                // Zero-rate edges can appear after re-weighting a graph with
                // a rate function that vanishes in some states; they carry
                // no CTMC mass and would only distort reachability checks.
                if e.rate > 0.0 {
                    t.push(s, e.target as usize, e.rate);
                    exit[s] += e.rate;
                }
            }
        }
        Ok(Self {
            rates: t.build(),
            exit,
            initial: graph.initial_distribution.clone(),
            absorbing: graph.absorbing.clone(),
        })
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.exit.len()
    }

    /// Exit rate of `state`.
    pub fn exit_rate(&self, state: usize) -> f64 {
        self.exit[state]
    }

    /// Absorbing flag per state.
    pub fn absorbing(&self) -> &[bool] {
        &self.absorbing
    }

    /// Initial distribution as a dense vector.
    pub fn initial_dense(&self) -> Vec<f64> {
        let mut pi0 = vec![0.0; self.state_count()];
        for &(s, p) in &self.initial {
            pi0[s as usize] += p;
        }
        pi0
    }

    /// States reachable (with positive probability) from the initial
    /// distribution.
    fn reachable_from_initial(&self) -> Vec<bool> {
        let n = self.state_count();
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = self
            .initial
            .iter()
            .filter(|&&(_, p)| p > 0.0)
            .map(|&(s, _)| s as usize)
            .collect();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            for (j, _) in self.rates.row(s) {
                if !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        seen
    }

    /// States that can reach an absorbing state.
    fn can_reach_absorbing(&self) -> Vec<bool> {
        let n = self.state_count();
        let transposed = self.rates.transpose();
        let mut can = vec![false; n];
        let mut stack: Vec<usize> = (0..n).filter(|&i| self.absorbing[i]).collect();
        for &s in &stack {
            can[s] = true;
        }
        while let Some(s) = stack.pop() {
            for (j, _) in transposed.row(s) {
                if !can[j] {
                    can[j] = true;
                    stack.push(j);
                }
            }
        }
        can
    }

    /// Solve for the mean time to absorption and per-state expected sojourn
    /// times.
    ///
    /// # Errors
    /// * [`SpnError::AnalysisUnavailable`] when no absorbing state is
    ///   reachable (MTTA is infinite).
    /// * [`SpnError::SolverDiverged`] when the linear solve fails.
    pub fn mean_time_to_absorption(&self) -> Result<AbsorptionAnalysis, SpnError> {
        let n = self.state_count();
        let reachable = self.reachable_from_initial();
        let can_absorb = self.can_reach_absorbing();
        if !(0..n).any(|i| reachable[i] && self.absorbing[i]) {
            return Err(SpnError::AnalysisUnavailable(
                "no absorbing state reachable from the initial distribution".into(),
            ));
        }
        for i in 0..n {
            if reachable[i] && !can_absorb[i] {
                return Err(SpnError::AnalysisUnavailable(format!(
                    "state {i} is reachable but cannot reach absorption; MTTA is infinite"
                )));
            }
        }

        // Transient states: reachable, non-absorbing.
        let transient: Vec<usize> = (0..n)
            .filter(|&i| reachable[i] && !self.absorbing[i])
            .collect();
        let mut local = vec![usize::MAX; n];
        for (li, &gi) in transient.iter().enumerate() {
            local[gi] = li;
        }
        let nt = transient.len();
        if nt == 0 {
            // Start inside an absorbing state.
            let mut absorption_probability = vec![0.0; n];
            for &(s, p) in &self.initial {
                absorption_probability[s as usize] += p;
            }
            return Ok(AbsorptionAnalysis {
                mtta: 0.0,
                sojourn: vec![0.0; n],
                absorption_probability,
            });
        }

        // Solve Σ_i σ_i q_ij = −π₀_j over the transient states. The chains
        // produced by absorbing security models are mostly acyclic (progress
        // variables only move one way; only small auxiliary dimensions, like
        // the group-count birth–death, cycle), so instead of a global
        // fixed-point iteration we solve block-by-block over the strongly
        // connected components in topological order: each SCC becomes a
        // small dense system with already-solved predecessors folded into
        // its right-hand side. Oversized SCCs fall back to the iterative
        // solver on their subsystem, so the path is exact and general.
        let mut b = vec![0.0; nt];
        for &(s, p) in &self.initial {
            if local[s as usize] != usize::MAX {
                b[local[s as usize]] = -p;
            }
        }
        let sigma_local = self.solve_sojourn_by_scc(&transient, &local, &b)?;

        let mut sojourn = vec![0.0; n];
        for (li, &gi) in transient.iter().enumerate() {
            // Numerical noise can produce tiny negatives; clamp.
            sojourn[gi] = sigma_local[li].max(0.0);
        }
        let mtta: f64 = sojourn.iter().sum();

        // Absorption probabilities: prob of ending in absorbing state a is
        // Σ_i σ_i rate(i→a), plus initial mass already in a.
        let mut absorption_probability = vec![0.0; n];
        for &(s, p) in &self.initial {
            if self.absorbing[s as usize] {
                absorption_probability[s as usize] += p;
            }
        }
        for &gi in &transient {
            let s = sojourn[gi];
            if s == 0.0 {
                continue;
            }
            for (gj, rate) in self.rates.row(gi) {
                if self.absorbing[gj] {
                    absorption_probability[gj] += s * rate;
                }
            }
        }
        Ok(AbsorptionAnalysis {
            mtta,
            sojourn,
            absorption_probability,
        })
    }

    /// Solve the sojourn system `Σ_i σ_i q_ij = b_j` over the transient
    /// states by SCC decomposition: Tarjan's algorithm on the transient
    /// subgraph, then one small direct solve per component in topological
    /// order (predecessor components folded into the right-hand side).
    ///
    /// # Errors
    /// Returns [`SpnError::SolverDiverged`] if an oversized component's
    /// iterative fallback fails to converge.
    fn solve_sojourn_by_scc(
        &self,
        transient: &[usize],
        local: &[usize],
        b: &[f64],
    ) -> Result<Vec<f64>, SpnError> {
        let nt = transient.len();
        // Successor and predecessor adjacency restricted to transients
        // (local indices, parallel edges pre-merged by the CSR build).
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nt];
        let mut pred: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nt];
        for (li, &gi) in transient.iter().enumerate() {
            for (gj, rate) in self.rates.row(gi) {
                let lj = local[gj];
                if lj != usize::MAX && rate > 0.0 {
                    succ[li].push(lj);
                    pred[lj].push((li, rate));
                }
            }
        }

        let components = tarjan_scc(&succ);
        let mut sigma = vec![0.0; nt];
        let mut pos = vec![usize::MAX; nt];
        // `components` comes back sinks-first; walk it in reverse so every
        // predecessor component is solved before its successors.
        for block in components.iter().rev() {
            for (k, &m) in block.iter().enumerate() {
                pos[m] = k;
            }
            let nb = block.len();
            if nb == 1 {
                let j = block[0];
                let mut rhs = b[j];
                for &(i, rate) in &pred[j] {
                    if i != j {
                        rhs -= rate * sigma[i];
                    }
                }
                // Self-edges cannot appear (the reachability graph drops
                // them), so the diagonal is exactly −exit.
                sigma[j] = rhs / -self.exit[transient[j]];
            } else {
                // External (already-solved) predecessors fold into the RHS;
                // in-block couplings form the subsystem matrix.
                let mut rhs = vec![0.0; nb];
                for (r, &j) in block.iter().enumerate() {
                    rhs[r] = b[j];
                    for &(i, rate) in &pred[j] {
                        if pos[i] == usize::MAX {
                            rhs[r] -= rate * sigma[i];
                        }
                    }
                }
                // Small components solve directly; oversized (or degenerate)
                // ones stay sparse end-to-end and use the iterative solver —
                // no O(nb²) dense materialization.
                let solved = if nb <= 512 {
                    let mut a = vec![vec![0.0; nb]; nb];
                    for (r, &j) in block.iter().enumerate() {
                        a[r][r] = -self.exit[transient[j]];
                        for &(i, rate) in &pred[j] {
                            if pos[i] != usize::MAX {
                                a[r][pos[i]] += rate;
                            }
                        }
                    }
                    numerics::linsolve::dense_lu_solve(&a, &rhs)
                } else {
                    None
                };
                let block_sigma = match solved {
                    Some(x) => x,
                    None => {
                        let mut t = Triplets::new(nb, nb);
                        for (r, &j) in block.iter().enumerate() {
                            t.push(r, r, -self.exit[transient[j]]);
                            for &(i, rate) in &pred[j] {
                                if pos[i] != usize::MAX {
                                    t.push(r, pos[i], rate);
                                }
                            }
                        }
                        let cfg = IterConfig {
                            tolerance: 1e-13,
                            max_iterations: 200_000,
                            omega: 1.0,
                        };
                        let (x, report) = numerics::linsolve::gauss_seidel(&t.build(), &rhs, &cfg);
                        if report.converged {
                            x
                        } else if nb <= 4096 {
                            // Divergent iteration on a mid-sized component:
                            // rescue with a direct solve, as the pre-SCC
                            // solve_auto path did.
                            let mut a = vec![vec![0.0; nb]; nb];
                            for (r, &j) in block.iter().enumerate() {
                                a[r][r] = -self.exit[transient[j]];
                                for &(i, rate) in &pred[j] {
                                    if pos[i] != usize::MAX {
                                        a[r][pos[i]] += rate;
                                    }
                                }
                            }
                            numerics::linsolve::dense_lu_solve(&a, &rhs).ok_or(
                                SpnError::SolverDiverged {
                                    iterations: report.iterations,
                                    residual: report.residual,
                                },
                            )?
                        } else {
                            return Err(SpnError::SolverDiverged {
                                iterations: report.iterations,
                                residual: report.residual,
                            });
                        }
                    }
                };
                for (&m, &x) in block.iter().zip(&block_sigma) {
                    sigma[m] = x;
                }
            }
            for &m in block {
                pos[m] = usize::MAX;
            }
        }
        Ok(sigma)
    }

    /// Uniformization constant and DTMC for transient analysis.
    fn uniformized(&self) -> (f64, Csr) {
        let n = self.state_count();
        let qmax = self.exit.iter().copied().fold(0.0_f64, f64::max);
        let q = (qmax * 1.02).max(1e-12);
        let mut t = Triplets::new(n, n);
        for s in 0..n {
            for (j, rate) in self.rates.row(s) {
                t.push(s, j, rate / q);
            }
            t.push(s, s, 1.0 - self.exit[s] / q);
        }
        (q, t.build())
    }

    /// Transient state distribution `π(t)` from the initial distribution.
    ///
    /// # Panics
    /// Panics if `t < 0`.
    pub fn transient_distribution(&self, t: f64, opts: &TransientOptions) -> Vec<f64> {
        assert!(t >= 0.0, "negative time {t}");
        let pi0 = self.initial_dense();
        if t == 0.0 {
            return pi0;
        }
        let (q, p) = self.uniformized();
        propagate(&p, q, pi0, t, opts.epsilon)
    }

    /// Survival function `S(t) = P[no absorption by t]` on an ascending
    /// mission-time grid.
    ///
    /// One uniformization sweep serves the whole grid: the distribution is
    /// propagated segment-by-segment (`t_{k-1} → t_k`), so the total Poisson
    /// depth is proportional to `q·t_max` rather than `q·Σ t_k` — on a
    /// typical mission grid this is several-fold cheaper than independent
    /// `transient_distribution` calls per point.
    ///
    /// # Panics
    /// Panics if any time is negative/non-finite or the grid is not
    /// non-decreasing.
    pub fn survival_curve(&self, times: &[f64], opts: &TransientOptions) -> Vec<f64> {
        let mut prev = 0.0_f64;
        for &t in times {
            assert!(t.is_finite() && t >= 0.0, "bad mission time {t}");
            assert!(t >= prev, "mission grid must be non-decreasing at {t}");
            prev = t;
        }
        let (q, p) = self.uniformized();
        let mut pi = self.initial_dense();
        let mut now = 0.0_f64;
        let mut out = Vec::with_capacity(times.len());
        for &t in times {
            if t > now {
                pi = propagate(&p, q, pi, t - now, opts.epsilon);
                now = t;
            }
            let absorbed: f64 = pi
                .iter()
                .zip(&self.absorbing)
                .filter_map(|(&x, &a)| a.then_some(x))
                .sum();
            out.push((1.0 - absorbed).clamp(0.0, 1.0));
        }
        out
    }

    /// Expected occupancy vector `∫₀ᵗ π(u) du` (expected time spent in each
    /// state during `[0, t]`).
    ///
    /// As `t → ∞` on an absorbing chain, the transient components converge
    /// to the sojourn vector of [`Ctmc::mean_time_to_absorption`] — this is
    /// the paper's integral definition of MTTSF evaluated numerically.
    ///
    /// # Panics
    /// Panics if `t < 0`.
    pub fn expected_occupancy(&self, t: f64, opts: &TransientOptions) -> Vec<f64> {
        assert!(t >= 0.0, "negative time {t}");
        let n = self.state_count();
        if t == 0.0 {
            return vec![0.0; n];
        }
        let (q, p) = self.uniformized();
        let weights = PoissonWeights::compute(q * t, opts.epsilon);
        // tail[k] = P[N_{qt} > k]; beyond the right truncation point it is 0.
        // Σ_k tail(k)/q · v_k, truncated once the tail is negligible.
        let mut cumulative = 0.0;
        let mut v = self.initial_dense();
        let mut next = vec![0.0; n];
        let mut integral = vec![0.0; n];
        for k in 0..=weights.right {
            cumulative += weights.weight(k);
            let tail = (1.0 - cumulative).max(0.0);
            // For k < left, weight(k) = 0 and tail = 1: full contribution.
            for (acc, &vi) in integral.iter_mut().zip(&v) {
                *acc += tail / q * vi;
            }
            if k < weights.right {
                p.vecmat_into(&v, &mut next);
                std::mem::swap(&mut v, &mut next);
            }
        }
        integral
    }

    /// Stationary distribution of an ergodic chain via power iteration on
    /// the uniformized DTMC.
    ///
    /// # Errors
    /// * [`SpnError::AnalysisUnavailable`] if the chain has absorbing
    ///   states (use the absorption solver instead).
    /// * [`SpnError::SolverDiverged`] if power iteration fails to converge.
    pub fn steady_state(&self) -> Result<Vec<f64>, SpnError> {
        if self.absorbing.iter().any(|&a| a) {
            return Err(SpnError::AnalysisUnavailable(
                "chain has absorbing states; steady state is degenerate".into(),
            ));
        }
        let (_, p) = self.uniformized();
        let cfg = IterConfig {
            tolerance: 1e-13,
            max_iterations: 1_000_000,
            omega: 1.0,
        };
        let (pi, rep) = numerics::linsolve::power_iteration_stationary(&p, &cfg);
        if !rep.converged {
            return Err(SpnError::SolverDiverged {
                iterations: rep.iterations,
                residual: rep.residual,
            });
        }
        Ok(pi)
    }
}

/// Advance a distribution by `dt` under the uniformized DTMC `p` with
/// uniformization constant `q`: `v · e^{Q·dt}` via Jensen's method.
fn propagate(p: &Csr, q: f64, v: Vec<f64>, dt: f64, epsilon: f64) -> Vec<f64> {
    let n = v.len();
    let weights = PoissonWeights::compute(q * dt, epsilon);
    let mut v = v;
    let mut next = vec![0.0; n];
    let mut result = vec![0.0; n];
    for k in 0..=weights.right {
        let w = weights.weight(k);
        if w > 0.0 {
            for (r, &vi) in result.iter_mut().zip(&v) {
                *r += w * vi;
            }
        }
        if k < weights.right {
            p.vecmat_into(&v, &mut next);
            std::mem::swap(&mut v, &mut next);
        }
    }
    result
}

/// Iterative Tarjan strongly-connected components. Components are emitted
/// in reverse topological order of the condensation (every component
/// appears before its predecessors).
fn tarjan_scc(succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succ.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < succ[v].len() {
                let w = succ[v][*child];
                *child += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(component);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SpnBuilder, TransitionDef};
    use crate::reach::{explore, ExploreOptions};

    fn build(netf: impl FnOnce(&mut SpnBuilder)) -> Ctmc {
        let mut b = SpnBuilder::new();
        netf(&mut b);
        let net = b.build().unwrap();
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        Ctmc::from_graph(&g).unwrap()
    }

    /// Exponential single-stage: MTTA = 1/λ.
    #[test]
    fn single_exponential_stage() {
        let c = build(|b| {
            let up = b.add_place("up", 1);
            b.add_transition(TransitionDef::timed_const("fail", 0.25).input(up, 1));
        });
        let a = c.mean_time_to_absorption().unwrap();
        assert!((a.mtta - 4.0).abs() < 1e-10);
        let total: f64 = a.absorption_probability.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    /// Hypoexponential chain: MTTA = Σ 1/(kλ).
    #[test]
    fn death_chain_mtta_closed_form() {
        let c = build(|b| {
            let up = b.add_place("up", 5);
            b.add_transition(
                TransitionDef::timed("die", move |m| 0.5 * m.tokens(up) as f64).input(up, 1),
            );
        });
        let a = c.mean_time_to_absorption().unwrap();
        let exact: f64 = (1..=5).map(|k| 1.0 / (0.5 * k as f64)).sum();
        assert!((a.mtta - exact).abs() < 1e-9, "{} vs {exact}", a.mtta);
    }

    /// Competing exponentials: absorption probabilities proportional to
    /// rates, MTTA = 1/(λ+μ).
    #[test]
    fn competing_risks_split() {
        let c = build(|b| {
            let up = b.add_place("up", 1);
            let dead_a = b.add_place("A", 0);
            let dead_b = b.add_place("B", 0);
            b.add_transition(
                TransitionDef::timed_const("to_a", 1.0)
                    .input(up, 1)
                    .output(dead_a, 1),
            );
            b.add_transition(
                TransitionDef::timed_const("to_b", 3.0)
                    .input(up, 1)
                    .output(dead_b, 1),
            );
        });
        let a = c.mean_time_to_absorption().unwrap();
        assert!((a.mtta - 0.25).abs() < 1e-10);
        let mut probs: Vec<f64> = a
            .absorption_probability
            .iter()
            .copied()
            .filter(|&p| p > 0.0)
            .collect();
        probs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((probs[0] - 0.25).abs() < 1e-10);
        assert!((probs[1] - 0.75).abs() < 1e-10);
    }

    #[test]
    fn mtta_infinite_detected() {
        // no absorbing state: M/M/1/K loop
        let c = build(|b| {
            let q = b.add_place("q", 0);
            b.add_transition(
                TransitionDef::timed_const("in", 1.0)
                    .output(q, 1)
                    .inhibitor(q, 3),
            );
            b.add_transition(TransitionDef::timed_const("out", 2.0).input(q, 1));
        });
        assert!(matches!(
            c.mean_time_to_absorption(),
            Err(SpnError::AnalysisUnavailable(_))
        ));
    }

    #[test]
    fn start_in_absorbing_state_gives_zero_mtta() {
        let c = build(|b| {
            let up = b.add_place("up", 1);
            b.add_transition(TransitionDef::timed_const("t", 1.0).input(up, 1));
            b.absorbing_when(move |m| m.tokens(up) >= 1); // initial marking absorbing
        });
        let a = c.mean_time_to_absorption().unwrap();
        assert_eq!(a.mtta, 0.0);
        assert!((a.absorption_probability.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transient_distribution_two_state() {
        // up --λ--> down; π_up(t) = e^{-λt}
        let c = build(|b| {
            let up = b.add_place("up", 1);
            b.add_transition(TransitionDef::timed_const("fail", 2.0).input(up, 1));
        });
        let opts = TransientOptions::default();
        for &t in &[0.0, 0.1, 0.5, 1.0, 3.0] {
            let pi = c.transient_distribution(t, &opts);
            let exact = (-2.0 * t).exp();
            assert!((pi[0] - exact).abs() < 1e-8, "t={t}: {} vs {exact}", pi[0]);
            assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn occupancy_converges_to_sojourn() {
        let c = build(|b| {
            let up = b.add_place("up", 3);
            b.add_transition(
                TransitionDef::timed("die", move |m| 1.0 * m.tokens(up) as f64).input(up, 1),
            );
        });
        let a = c.mean_time_to_absorption().unwrap();
        let occ = c.expected_occupancy(200.0, &TransientOptions::default());
        // transient occupancy converges to the sojourn vector; the absorbing
        // state's occupancy keeps growing with t and is excluded.
        for (i, (o, s)) in occ.iter().zip(&a.sojourn).enumerate() {
            if !c.absorbing()[i] {
                assert!((o - s).abs() < 1e-6, "state {i}: {o} vs {s}");
            }
        }
        // the paper's integral MTTSF formula: sum of transient occupancy
        let mttsf_integral: f64 = occ
            .iter()
            .enumerate()
            .filter(|&(i, _)| !c.absorbing()[i])
            .map(|(_, &o)| o)
            .sum();
        assert!((mttsf_integral - a.mtta).abs() < 1e-6);
    }

    #[test]
    fn survival_curve_matches_closed_form_exponential() {
        // up --λ--> absorbed; S(t) = e^{-λt}
        let c = build(|b| {
            let up = b.add_place("up", 1);
            b.add_transition(TransitionDef::timed_const("fail", 2.0).input(up, 1));
        });
        let times = [0.0, 0.1, 0.5, 1.0, 1.0, 3.0];
        let s = c.survival_curve(&times, &TransientOptions::default());
        for (&t, &st) in times.iter().zip(&s) {
            let exact = (-2.0 * t).exp();
            assert!((st - exact).abs() < 1e-8, "t={t}: {st} vs {exact}");
        }
    }

    #[test]
    fn survival_curve_agrees_with_transient_distribution() {
        // Segment-wise propagation must match independent solves per point.
        let c = build(|b| {
            let up = b.add_place("up", 4);
            b.add_transition(
                TransitionDef::timed("die", move |m| 0.7 * m.tokens(up) as f64).input(up, 1),
            );
        });
        let opts = TransientOptions::default();
        let times = [0.3, 0.9, 2.0, 5.5];
        let s = c.survival_curve(&times, &opts);
        for (&t, &st) in times.iter().zip(&s) {
            let pi = c.transient_distribution(t, &opts);
            let direct: f64 = pi
                .iter()
                .zip(c.absorbing())
                .filter_map(|(&x, &a)| (!a).then_some(x))
                .sum();
            assert!((st - direct).abs() < 1e-8, "t={t}: {st} vs {direct}");
        }
    }

    #[test]
    fn survival_starts_at_one_and_decreases() {
        let c = build(|b| {
            let up = b.add_place("up", 3);
            b.add_transition(
                TransitionDef::timed("die", move |m| m.tokens(up) as f64).input(up, 1),
            );
        });
        let times: Vec<f64> = (0..20).map(|i| i as f64 * 0.4).collect();
        let s = c.survival_curve(&times, &TransientOptions::default());
        assert!((s[0] - 1.0).abs() < 1e-12);
        for w in s.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "not monotone: {s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn survival_curve_rejects_unsorted_grid() {
        let c = build(|b| {
            let up = b.add_place("up", 1);
            b.add_transition(TransitionDef::timed_const("fail", 1.0).input(up, 1));
        });
        c.survival_curve(&[1.0, 0.5], &TransientOptions::default());
    }

    #[test]
    fn occupancy_at_small_t_is_linear() {
        let c = build(|b| {
            let up = b.add_place("up", 1);
            b.add_transition(TransitionDef::timed_const("fail", 1.0).input(up, 1));
        });
        let occ = c.expected_occupancy(1e-4, &TransientOptions::default());
        // at tiny t: time in initial state ≈ t
        assert!((occ[0] - 1e-4).abs() < 1e-7);
    }

    #[test]
    fn steady_state_mm1k() {
        // M/M/1/2 with λ=1, μ=2: π ∝ (1, ρ, ρ²), ρ=0.5
        let c = build(|b| {
            let q = b.add_place("q", 0);
            b.add_transition(
                TransitionDef::timed_const("in", 1.0)
                    .output(q, 1)
                    .inhibitor(q, 2),
            );
            b.add_transition(TransitionDef::timed_const("out", 2.0).input(q, 1));
        });
        let pi = c.steady_state().unwrap();
        let z = 1.0 + 0.5 + 0.25;
        let expect = [1.0 / z, 0.5 / z, 0.25 / z];
        // state order follows exploration (0, 1, 2 tokens)
        for (p, e) in pi.iter().zip(&expect) {
            assert!((p - e).abs() < 1e-9, "{pi:?}");
        }
    }

    #[test]
    fn steady_state_rejects_absorbing_chain() {
        let c = build(|b| {
            let up = b.add_place("up", 1);
            b.add_transition(TransitionDef::timed_const("fail", 1.0).input(up, 1));
        });
        assert!(matches!(
            c.steady_state(),
            Err(SpnError::AnalysisUnavailable(_))
        ));
    }

    #[test]
    fn accumulated_reward_weighted_sojourn() {
        let c = build(|b| {
            let up = b.add_place("up", 2);
            b.add_transition(
                TransitionDef::timed("die", move |m| m.tokens(up) as f64).input(up, 1),
            );
        });
        let a = c.mean_time_to_absorption().unwrap();
        // reward = tokens in `up`: E[∫ tokens dt] = 2·(1/2) + 1·(1/1) = 2
        // state order: (2), (1), (0)
        let reward = [2.0, 1.0, 0.0];
        let acc = a.accumulated_reward(&reward);
        assert!((acc - 2.0).abs() < 1e-9, "{acc}");
        let avg = a.time_averaged_reward(&reward);
        assert!((avg - acc / a.mtta).abs() < 1e-12);
    }

    #[test]
    fn absorption_probabilities_sum_to_one_on_branching_chain() {
        let c = build(|b| {
            let up = b.add_place("up", 2);
            let leak = b.add_place("leak", 0);
            b.add_transition(
                TransitionDef::timed("step", move |m| m.tokens(up) as f64).input(up, 1),
            );
            b.add_transition(
                TransitionDef::timed("jump", move |m| 0.3 * m.tokens(up) as f64)
                    .input(up, 1)
                    .output(leak, 1)
                    .guard(move |m| m.tokens(up) >= 1),
            );
            b.absorbing_when(move |m| m.tokens(leak) > 0);
        });
        let a = c.mean_time_to_absorption().unwrap();
        let total: f64 = a.absorption_probability.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
        assert!(a.mtta > 0.0);
    }
}
