//! Continuous-time Markov chain analysis over the tangible reachability
//! graph.
//!
//! Three solver families:
//!
//! * **Absorption**: expected sojourn times in the transient states solve
//!   the sparse linear system `Qᵀ_TT σ = −π₀`; the mean time to absorption
//!   is `Σ σ` (the paper's MTTSF), and expected accumulated rewards until
//!   absorption are `Σ σᵢ rᵢ` (the paper's Ĉtotal numerator). Absorption
//!   probabilities per absorbing state fall out of the same vector, which
//!   tells us whether a run failed through data leak (C1) or Byzantine
//!   capture (C2).
//! * **Transient**: `π(t)` and `∫₀ᵗ π(u) du` via uniformization with
//!   Poisson weights — the direct numerical form of the paper's
//!   `MTTSF = ∫ Σ rᵢ Pᵢ(t) dt` definition.
//! * **Steady state**: power iteration on the uniformized chain for ergodic
//!   nets (used by the mobility birth–death calibration).

use crate::error::SpnError;
use crate::reach::ReachabilityGraph;
use crate::transient::{TransientEngine, TransientStats};
use numerics::linsolve::IterConfig;
use numerics::sparse::{Csr, CsrPattern, Triplets};
use std::sync::{Arc, OnceLock};

/// A CTMC extracted from a reachability graph.
#[derive(Debug, Clone)]
pub struct Ctmc {
    /// Off-diagonal rate matrix (row = source state). May carry explicit
    /// zero entries when instantiated from a [`CtmcTemplate`] (the pattern
    /// is kept stable across re-weighted rate families).
    rates: Csr,
    /// Total exit rate per state.
    exit: Vec<f64>,
    /// Initial distribution as (state, probability) pairs.
    initial: Vec<(u32, f64)>,
    /// Absorbing flags.
    absorbing: Vec<bool>,
    /// Transposed rate matrix, pre-built by [`CtmcTemplate`] so repeated
    /// solves skip the per-solve transpose construction. `None` on the
    /// one-shot [`Ctmc::from_graph`] path.
    transposed: Option<Csr>,
    /// Uniformization constant and DTMC, pre-built by [`CtmcTemplate`] or
    /// memoized on first use on the one-shot path — repeated transient
    /// solves on one chain never rebuild it.
    uniformized: OnceLock<(f64, Csr)>,
    /// Transpose of the uniformized DTMC — the gather-matvec operand of
    /// [`TransientEngine`]. Pre-built by [`CtmcTemplate`], memoized on
    /// first use otherwise.
    uniformized_t: OnceLock<Csr>,
}

/// Options for uniformization-based transient analysis.
#[derive(Debug, Clone, Copy)]
pub struct TransientOptions {
    /// Poisson truncation error.
    pub epsilon: f64,
    /// Steady-state detection tolerance (Reibman–Trivedi): once
    /// `‖v·P − v‖∞` of the uniformized chain drops below this, the
    /// remaining Poisson mixture collapses to an analytic tail and no
    /// further matvecs run. `0.0` disables detection.
    pub detect_tolerance: f64,
    /// Stop sweeping a survival grid once the live transient mass falls
    /// below `epsilon` — every later mission time reports survival 0.
    pub early_exit: bool,
}

impl Default for TransientOptions {
    fn default() -> Self {
        Self {
            epsilon: 1e-10,
            detect_tolerance: 1e-14,
            early_exit: true,
        }
    }
}

/// Result of the absorption solve.
#[derive(Debug, Clone)]
pub struct AbsorptionAnalysis {
    /// Mean time to absorption from the initial distribution.
    pub mtta: f64,
    /// Expected total time spent in each state before absorption
    /// (zero for absorbing/unreachable states).
    pub sojourn: Vec<f64>,
    /// Probability of being absorbed in each state (zero for transient
    /// states); sums to 1.
    pub absorption_probability: Vec<f64>,
}

impl AbsorptionAnalysis {
    /// Expected accumulated rate reward until absorption:
    /// `Σᵢ sojourn[i] · reward[i]`.
    ///
    /// # Panics
    /// Panics if `reward_per_state.len()` differs from the state count.
    pub fn accumulated_reward(&self, reward_per_state: &[f64]) -> f64 {
        assert_eq!(
            reward_per_state.len(),
            self.sojourn.len(),
            "reward vector length mismatch"
        );
        self.sojourn
            .iter()
            .zip(reward_per_state)
            .map(|(s, r)| s * r)
            .sum()
    }

    /// Time-averaged rate reward until absorption (accumulated / MTTA).
    pub fn time_averaged_reward(&self, reward_per_state: &[f64]) -> f64 {
        if self.mtta == 0.0 {
            0.0
        } else {
            self.accumulated_reward(reward_per_state) / self.mtta
        }
    }
}

impl Ctmc {
    /// Build the CTMC from a reachability graph.
    ///
    /// A state whose edges all carry zero rate has no outflow: it is
    /// absorbing in effect, whatever its graph flag says. Leaving such a
    /// state unflagged would make the absorption system singular ("cannot
    /// reach absorption") and let uniformization report its stuck mass as
    /// surviving forever, so these states are promoted to absorbing here —
    /// the same semantics [`ReachabilityGraph::reweight_in_place`] applies
    /// when a re-weight silences a state's last live edge.
    ///
    /// # Errors
    /// Returns [`SpnError::InvalidModel`] for an empty graph or an initial
    /// distribution that does not sum to 1.
    pub fn from_graph(graph: &ReachabilityGraph) -> Result<Self, SpnError> {
        validate_graph(graph)?;
        let n = graph.state_count();
        let mut t = Triplets::new(n, n);
        let mut exit = vec![0.0; n];
        for (s, elist) in graph.edges.iter().enumerate() {
            for e in elist {
                // Zero-rate edges can appear after re-weighting a graph with
                // a rate function that vanishes in some states; they carry
                // no CTMC mass and would only distort reachability checks.
                if e.rate > 0.0 {
                    t.push(s, e.target as usize, e.rate);
                    exit[s] += e.rate;
                }
            }
        }
        let mut absorbing = graph.absorbing.clone();
        for (flag, &x) in absorbing.iter_mut().zip(&exit) {
            *flag = *flag || x == 0.0;
        }
        Ok(Self {
            rates: t.build(),
            exit,
            initial: graph.initial_distribution.clone(),
            absorbing,
            transposed: None,
            uniformized: OnceLock::new(),
            uniformized_t: OnceLock::new(),
        })
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.exit.len()
    }

    /// Exit rate of `state`.
    pub fn exit_rate(&self, state: usize) -> f64 {
        self.exit[state]
    }

    /// Absorbing flag per state.
    pub fn absorbing(&self) -> &[bool] {
        &self.absorbing
    }

    /// Initial distribution as a dense vector.
    pub fn initial_dense(&self) -> Vec<f64> {
        let mut pi0 = vec![0.0; self.state_count()];
        for &(s, p) in &self.initial {
            pi0[s as usize] += p;
        }
        pi0
    }

    /// States reachable (with positive probability) from the initial
    /// distribution.
    fn reachable_from_initial(&self) -> Vec<bool> {
        let n = self.state_count();
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = self
            .initial
            .iter()
            .filter(|&&(_, p)| p > 0.0)
            .map(|&(s, _)| s as usize)
            .collect();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(s) = stack.pop() {
            // Explicit zeros in a template-instantiated pattern carry no
            // probability flow — skip them, they are structure only.
            for (j, rate) in self.rates.row(s) {
                if rate > 0.0 && !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        seen
    }

    /// States that can reach an absorbing state.
    fn can_reach_absorbing(&self) -> Vec<bool> {
        let n = self.state_count();
        let built;
        let transposed = match &self.transposed {
            Some(t) => t,
            None => {
                built = self.rates.transpose();
                &built
            }
        };
        let mut can = vec![false; n];
        let mut stack: Vec<usize> = (0..n).filter(|&i| self.absorbing[i]).collect();
        for &s in &stack {
            can[s] = true;
        }
        while let Some(s) = stack.pop() {
            for (j, rate) in transposed.row(s) {
                if rate > 0.0 && !can[j] {
                    can[j] = true;
                    stack.push(j);
                }
            }
        }
        can
    }

    /// Solve for the mean time to absorption and per-state expected sojourn
    /// times.
    ///
    /// # Errors
    /// * [`SpnError::AnalysisUnavailable`] when no absorbing state is
    ///   reachable (MTTA is infinite).
    /// * [`SpnError::SolverDiverged`] when the linear solve fails.
    pub fn mean_time_to_absorption(&self) -> Result<AbsorptionAnalysis, SpnError> {
        let n = self.state_count();
        let reachable = self.reachable_from_initial();
        let can_absorb = self.can_reach_absorbing();
        if !(0..n).any(|i| reachable[i] && self.absorbing[i]) {
            return Err(SpnError::AnalysisUnavailable(
                "no absorbing state reachable from the initial distribution".into(),
            ));
        }
        for i in 0..n {
            if reachable[i] && !can_absorb[i] {
                return Err(SpnError::AnalysisUnavailable(format!(
                    "state {i} is reachable but cannot reach absorption; MTTA is infinite"
                )));
            }
        }

        // Transient states: reachable, non-absorbing.
        let transient: Vec<usize> = (0..n)
            .filter(|&i| reachable[i] && !self.absorbing[i])
            .collect();
        let mut local = vec![usize::MAX; n];
        for (li, &gi) in transient.iter().enumerate() {
            local[gi] = li;
        }
        let nt = transient.len();
        if nt == 0 {
            // Start inside an absorbing state.
            let mut absorption_probability = vec![0.0; n];
            for &(s, p) in &self.initial {
                absorption_probability[s as usize] += p;
            }
            return Ok(AbsorptionAnalysis {
                mtta: 0.0,
                sojourn: vec![0.0; n],
                absorption_probability,
            });
        }

        // Solve Σ_i σ_i q_ij = −π₀_j over the transient states. The chains
        // produced by absorbing security models are mostly acyclic (progress
        // variables only move one way; only small auxiliary dimensions, like
        // the group-count birth–death, cycle), so instead of a global
        // fixed-point iteration we solve block-by-block over the strongly
        // connected components in topological order: each SCC becomes a
        // small dense system with already-solved predecessors folded into
        // its right-hand side. Oversized SCCs fall back to the iterative
        // solver on their subsystem, so the path is exact and general.
        let mut b = vec![0.0; nt];
        for &(s, p) in &self.initial {
            if local[s as usize] != usize::MAX {
                b[local[s as usize]] = -p;
            }
        }
        let sigma_local = self.solve_sojourn_by_scc(&transient, &local, &b)?;

        let mut sojourn = vec![0.0; n];
        for (li, &gi) in transient.iter().enumerate() {
            // Numerical noise can produce tiny negatives; clamp.
            sojourn[gi] = sigma_local[li].max(0.0);
        }
        let mtta: f64 = sojourn.iter().sum();

        // Absorption probabilities: prob of ending in absorbing state a is
        // Σ_i σ_i rate(i→a), plus initial mass already in a.
        let mut absorption_probability = vec![0.0; n];
        for &(s, p) in &self.initial {
            if self.absorbing[s as usize] {
                absorption_probability[s as usize] += p;
            }
        }
        for &gi in &transient {
            let s = sojourn[gi];
            if s == 0.0 {
                continue;
            }
            for (gj, rate) in self.rates.row(gi) {
                if self.absorbing[gj] {
                    absorption_probability[gj] += s * rate;
                }
            }
        }
        Ok(AbsorptionAnalysis {
            mtta,
            sojourn,
            absorption_probability,
        })
    }

    /// Solve the sojourn system `Σ_i σ_i q_ij = b_j` over the transient
    /// states by SCC decomposition: Tarjan's algorithm on the transient
    /// subgraph, then one small direct solve per component in topological
    /// order (predecessor components folded into the right-hand side).
    ///
    /// # Errors
    /// Returns [`SpnError::SolverDiverged`] if an oversized component's
    /// iterative fallback fails to converge.
    fn solve_sojourn_by_scc(
        &self,
        transient: &[usize],
        local: &[usize],
        b: &[f64],
    ) -> Result<Vec<f64>, SpnError> {
        let nt = transient.len();
        // Successor and predecessor adjacency restricted to transients
        // (local indices, parallel edges pre-merged by the CSR build).
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nt];
        let mut pred: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nt];
        for (li, &gi) in transient.iter().enumerate() {
            for (gj, rate) in self.rates.row(gi) {
                let lj = local[gj];
                if lj != usize::MAX && rate > 0.0 {
                    succ[li].push(lj);
                    pred[lj].push((li, rate));
                }
            }
        }

        let components = tarjan_scc(&succ);
        let mut sigma = vec![0.0; nt];
        let mut pos = vec![usize::MAX; nt];
        // `components` comes back sinks-first; walk it in reverse so every
        // predecessor component is solved before its successors.
        for block in components.iter().rev() {
            for (k, &m) in block.iter().enumerate() {
                pos[m] = k;
            }
            let nb = block.len();
            if nb == 1 {
                let j = block[0];
                let mut rhs = b[j];
                for &(i, rate) in &pred[j] {
                    if i != j {
                        rhs -= rate * sigma[i];
                    }
                }
                // Self-edges cannot appear (the reachability graph drops
                // them), so the diagonal is exactly −exit.
                sigma[j] = rhs / -self.exit[transient[j]];
            } else {
                // External (already-solved) predecessors fold into the RHS;
                // in-block couplings form the subsystem matrix.
                let mut rhs = vec![0.0; nb];
                for (r, &j) in block.iter().enumerate() {
                    rhs[r] = b[j];
                    for &(i, rate) in &pred[j] {
                        if pos[i] == usize::MAX {
                            rhs[r] -= rate * sigma[i];
                        }
                    }
                }
                // Small components solve directly; oversized (or degenerate)
                // ones stay sparse end-to-end and use the iterative solver —
                // no O(nb²) dense materialization.
                let solved = if nb <= 512 {
                    let mut a = vec![vec![0.0; nb]; nb];
                    for (r, &j) in block.iter().enumerate() {
                        a[r][r] = -self.exit[transient[j]];
                        for &(i, rate) in &pred[j] {
                            if pos[i] != usize::MAX {
                                a[r][pos[i]] += rate;
                            }
                        }
                    }
                    numerics::linsolve::dense_lu_solve(&a, &rhs)
                } else {
                    None
                };
                let block_sigma = match solved {
                    Some(x) => x,
                    None => {
                        let mut t = Triplets::new(nb, nb);
                        for (r, &j) in block.iter().enumerate() {
                            t.push(r, r, -self.exit[transient[j]]);
                            for &(i, rate) in &pred[j] {
                                if pos[i] != usize::MAX {
                                    t.push(r, pos[i], rate);
                                }
                            }
                        }
                        let cfg = IterConfig {
                            tolerance: 1e-13,
                            max_iterations: 200_000,
                            omega: 1.0,
                        };
                        let (x, report) = numerics::linsolve::gauss_seidel(&t.build(), &rhs, &cfg);
                        if report.converged {
                            x
                        } else if nb <= 4096 {
                            // Divergent iteration on a mid-sized component:
                            // rescue with a direct solve, as the pre-SCC
                            // solve_auto path did.
                            let mut a = vec![vec![0.0; nb]; nb];
                            for (r, &j) in block.iter().enumerate() {
                                a[r][r] = -self.exit[transient[j]];
                                for &(i, rate) in &pred[j] {
                                    if pos[i] != usize::MAX {
                                        a[r][pos[i]] += rate;
                                    }
                                }
                            }
                            numerics::linsolve::dense_lu_solve(&a, &rhs).ok_or(
                                SpnError::SolverDiverged {
                                    iterations: report.iterations,
                                    residual: report.residual,
                                },
                            )?
                        } else {
                            return Err(SpnError::SolverDiverged {
                                iterations: report.iterations,
                                residual: report.residual,
                            });
                        }
                    }
                };
                for (&m, &x) in block.iter().zip(&block_sigma) {
                    sigma[m] = x;
                }
            }
            for &m in block {
                pos[m] = usize::MAX;
            }
        }
        Ok(sigma)
    }

    /// Uniformization constant and DTMC for transient analysis: the cached
    /// template copy when present, otherwise built **once** and memoized —
    /// repeated transient solves on one chain share the build.
    pub(crate) fn uniformized(&self) -> (f64, &Csr) {
        let (q, p) = self.uniformized.get_or_init(|| self.build_uniformized());
        (*q, p)
    }

    /// Transpose of the uniformized DTMC (the gather-propagation operand):
    /// the cached template copy when present, otherwise built once and
    /// memoized.
    pub(crate) fn uniformized_transpose(&self) -> &Csr {
        self.uniformized_t
            .get_or_init(|| self.uniformized().1.transpose())
    }

    /// Exit rate vector.
    pub(crate) fn exit_rates(&self) -> &[f64] {
        &self.exit
    }

    /// Initial distribution as sparse (state, probability) pairs.
    pub(crate) fn initial_pairs(&self) -> &[(u32, f64)] {
        &self.initial
    }

    /// Build the uniformized DTMC from the current rates.
    fn build_uniformized(&self) -> (f64, Csr) {
        let n = self.state_count();
        let q = uniformization_q(&self.exit);
        let mut t = Triplets::new(n, n);
        for s in 0..n {
            for (j, rate) in self.rates.row(s) {
                t.push(s, j, rate / q);
            }
            t.push(s, s, 1.0 - self.exit[s] / q);
        }
        (q, t.build())
    }

    /// Transient state distribution `π(t)` from the initial distribution.
    ///
    /// # Panics
    /// Panics if `t < 0`.
    pub fn transient_distribution(&self, t: f64, opts: &TransientOptions) -> Vec<f64> {
        assert!(t >= 0.0, "negative time {t}");
        if t == 0.0 {
            return self.initial_dense();
        }
        let mut engine = TransientEngine::new(self, opts);
        engine.advance(t);
        engine.distribution()
    }

    /// Survival function `S(t) = P[no absorption by t]` on an ascending
    /// mission-time grid.
    ///
    /// One [`TransientEngine`] sweep serves the whole grid: the distribution
    /// is propagated segment-by-segment (`t_{k-1} → t_k`), so the total
    /// Poisson depth is proportional to `q·t_max` rather than `q·Σ t_k` —
    /// on a typical mission grid this is several-fold cheaper than
    /// independent `transient_distribution` calls per point.
    ///
    /// # Panics
    /// Panics if any time is negative/non-finite or the grid is not
    /// non-decreasing.
    pub fn survival_curve(&self, times: &[f64], opts: &TransientOptions) -> Vec<f64> {
        self.survival_curve_with_stats(times, opts).0
    }

    /// [`Ctmc::survival_curve`] plus the engine's propagation telemetry
    /// (matvec count, steady-state detection step, early-exit flag, state
    /// split) for reporting and benchmark gating.
    ///
    /// # Panics
    /// Same conditions as [`Ctmc::survival_curve`].
    pub fn survival_curve_with_stats(
        &self,
        times: &[f64],
        opts: &TransientOptions,
    ) -> (Vec<f64>, TransientStats) {
        let mut prev = 0.0_f64;
        for &t in times {
            assert!(t.is_finite() && t >= 0.0, "bad mission time {t}");
            assert!(t >= prev, "mission grid must be non-decreasing at {t}");
            prev = t;
        }
        let mut engine = TransientEngine::for_survival(self, opts);
        let out = engine.survival_curve(times);
        (out, engine.stats().clone())
    }

    /// Expected occupancy vector `∫₀ᵗ π(u) du` (expected time spent in each
    /// state during `[0, t]`).
    ///
    /// As `t → ∞` on an absorbing chain, the transient components converge
    /// to the sojourn vector of [`Ctmc::mean_time_to_absorption`] — this is
    /// the paper's integral definition of MTTSF evaluated numerically.
    ///
    /// # Panics
    /// Panics if `t < 0`.
    pub fn expected_occupancy(&self, t: f64, opts: &TransientOptions) -> Vec<f64> {
        assert!(t >= 0.0, "negative time {t}");
        if t == 0.0 {
            return vec![0.0; self.state_count()];
        }
        let mut engine = TransientEngine::new(self, opts);
        engine.occupancy(t)
    }

    /// Stationary distribution of an ergodic chain via power iteration on
    /// the uniformized DTMC.
    ///
    /// # Errors
    /// * [`SpnError::AnalysisUnavailable`] if the chain has absorbing
    ///   states (use the absorption solver instead).
    /// * [`SpnError::SolverDiverged`] if power iteration fails to converge.
    pub fn steady_state(&self) -> Result<Vec<f64>, SpnError> {
        if self.absorbing.iter().any(|&a| a) {
            return Err(SpnError::AnalysisUnavailable(
                "chain has absorbing states; steady state is degenerate".into(),
            ));
        }
        let (_, p) = self.uniformized();
        let cfg = IterConfig {
            tolerance: 1e-13,
            max_iterations: 1_000_000,
            omega: 1.0,
        };
        let (pi, rep) = numerics::linsolve::power_iteration_stationary(p, &cfg);
        if !rep.converged {
            return Err(SpnError::SolverDiverged {
                iterations: rep.iterations,
                residual: rep.residual,
            });
        }
        Ok(pi)
    }
}

/// Rebuild-free CTMC instantiation over one reachability-graph structure.
///
/// The CSR sparsity patterns of the rate matrix, its transpose, and the
/// uniformized DTMC are built **once** from the graph; every structurally
/// identical re-weighting of that graph (rate-only parameter variations —
/// the explore-once-solve-many sweeps) then only rewrites the value arrays
/// and the exit-rate vector in place via [`CtmcTemplate::refresh`]. Edges
/// whose rate drops to zero stay in the pattern as explicit zeros, so the
/// structure is stable across whole rate families and per-point evaluation
/// performs no graph or matrix allocation at all.
///
/// Numerically the refreshed CTMC is **bit-for-bit identical** to a fresh
/// [`Ctmc::from_graph`] build of the same re-weighted graph: values are
/// accumulated in the same order, and the explicit zeros only contribute
/// `+0.0` terms to the (non-negative) solver arithmetic.
#[derive(Debug)]
pub struct CtmcTemplate {
    n: usize,
    /// Rate-matrix pattern (explicit zeros kept for vanished edges).
    pattern: Arc<CsrPattern>,
    /// Value slot of each graph edge, flattened state-major in edge order.
    /// Parallel edges to one target share a slot (their rates sum).
    slots: Vec<u32>,
    /// Per-state offsets into `slots` (length `n + 1`) for structure checks.
    edge_offsets: Vec<u32>,
    /// Transposed pattern plus the slot permutation forward → transpose.
    t_pattern: Arc<CsrPattern>,
    t_perm: Vec<u32>,
    /// Uniformized-DTMC pattern (forward plus diagonal), the slot
    /// permutation forward → uniformized, and the diagonal slot per state.
    u_pattern: Arc<CsrPattern>,
    u_perm: Vec<u32>,
    diag_slots: Vec<u32>,
    /// Transposed uniformized pattern (the [`TransientEngine`] gather
    /// operand) and the slot permutation uniformized → transpose.
    ut_pattern: Arc<CsrPattern>,
    ut_from_u: Vec<u32>,
    initial: Vec<(u32, f64)>,
}

impl CtmcTemplate {
    /// Build the three sparsity patterns from a graph's structure.
    ///
    /// # Errors
    /// Returns [`SpnError::InvalidModel`] for an empty graph, an initial
    /// distribution that does not sum to 1, or a self-targeting edge (the
    /// reachability exploration never produces one).
    pub fn new(graph: &ReachabilityGraph) -> Result<Self, SpnError> {
        validate_graph(graph)?;
        let n = graph.state_count();

        // Forward pattern. Graph edges per state are sorted by (target,
        // transition), so equal targets are adjacent; dedup them into one
        // slot each. Sort defensively anyway: hand-assembled graphs are
        // legal inputs.
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0u32);
        let mut col_idx: Vec<u32> = Vec::new();
        let mut slots: Vec<u32> = Vec::new();
        let mut edge_offsets = Vec::with_capacity(n + 1);
        edge_offsets.push(0u32);
        let mut scratch: Vec<(u32, usize)> = Vec::new();
        for (s, elist) in graph.edges.iter().enumerate() {
            scratch.clear();
            for (k, e) in elist.iter().enumerate() {
                if e.target as usize == s {
                    return Err(SpnError::InvalidModel(format!(
                        "state {s} has a self-targeting edge; the CTMC \
                         template requires self-loops to be dropped"
                    )));
                }
                scratch.push((e.target, k));
            }
            scratch.sort_by_key(|&(t, _)| t);
            let row_start = row_ptr[s] as usize;
            let mut edge_slots = vec![0u32; elist.len()];
            for &(target, k) in &scratch {
                if col_idx.len() == row_start || *col_idx.last().unwrap() != target {
                    col_idx.push(target);
                }
                edge_slots[k] = (col_idx.len() - 1) as u32;
            }
            slots.extend_from_slice(&edge_slots);
            edge_offsets.push(slots.len() as u32);
            row_ptr.push(col_idx.len() as u32);
        }
        let nnz = col_idx.len();

        // Transpose pattern + forward → transpose slot permutation.
        let mut t_row_ptr = vec![0u32; n + 1];
        for &c in &col_idx {
            t_row_ptr[c as usize + 1] += 1;
        }
        for i in 0..n {
            t_row_ptr[i + 1] += t_row_ptr[i];
        }
        let mut t_next = t_row_ptr.clone();
        let mut t_col = vec![0u32; nnz];
        let mut t_perm = vec![0u32; nnz];
        for r in 0..n {
            for slot in row_ptr[r] as usize..row_ptr[r + 1] as usize {
                let c = col_idx[slot] as usize;
                let pos = t_next[c];
                t_next[c] += 1;
                t_col[pos as usize] = r as u32;
                t_perm[slot] = pos;
            }
        }

        // Uniformized pattern: forward rows with the diagonal spliced in at
        // its sorted position (self-edges were rejected above, so the
        // diagonal is never already present).
        let mut u_row_ptr = Vec::with_capacity(n + 1);
        u_row_ptr.push(0u32);
        let mut u_col = Vec::with_capacity(nnz + n);
        let mut u_perm = vec![0u32; nnz];
        let mut diag_slots = vec![0u32; n];
        for s in 0..n {
            let mut placed_diag = false;
            for slot in row_ptr[s] as usize..row_ptr[s + 1] as usize {
                let c = col_idx[slot];
                if !placed_diag && c as usize > s {
                    diag_slots[s] = u_col.len() as u32;
                    u_col.push(s as u32);
                    placed_diag = true;
                }
                u_perm[slot] = u_col.len() as u32;
                u_col.push(c);
            }
            if !placed_diag {
                diag_slots[s] = u_col.len() as u32;
                u_col.push(s as u32);
            }
            u_row_ptr.push(u_col.len() as u32);
        }

        // Transposed uniformized pattern + slot permutation uniformized →
        // transpose, by counting sort — the same construction as the rate
        // transpose above, applied to the diagonal-bearing pattern.
        let u_nnz = u_col.len();
        let mut ut_row_ptr = vec![0u32; n + 1];
        for &c in &u_col {
            ut_row_ptr[c as usize + 1] += 1;
        }
        for i in 0..n {
            ut_row_ptr[i + 1] += ut_row_ptr[i];
        }
        let mut ut_next = ut_row_ptr.clone();
        let mut ut_col = vec![0u32; u_nnz];
        let mut ut_from_u = vec![0u32; u_nnz];
        for r in 0..n {
            for slot in u_row_ptr[r] as usize..u_row_ptr[r + 1] as usize {
                let c = u_col[slot] as usize;
                let pos = ut_next[c];
                ut_next[c] += 1;
                ut_col[pos as usize] = r as u32;
                ut_from_u[slot] = pos;
            }
        }

        Ok(Self {
            n,
            pattern: Arc::new(CsrPattern::new(n, n, row_ptr, col_idx)),
            slots,
            edge_offsets,
            t_pattern: Arc::new(CsrPattern::new(n, n, t_row_ptr, t_col)),
            t_perm,
            u_pattern: Arc::new(CsrPattern::new(n, n, u_row_ptr, u_col)),
            u_perm,
            diag_slots,
            ut_pattern: Arc::new(CsrPattern::new(n, n, ut_row_ptr, ut_col)),
            ut_from_u,
            initial: graph.initial_distribution.clone(),
        })
    }

    /// Number of states in the templated structure.
    pub fn state_count(&self) -> usize {
        self.n
    }

    /// Allocate a CTMC on this template's shared patterns and fill it from
    /// `graph`'s current rates. This is the only allocating step; reuse the
    /// returned chain across re-weightings via [`CtmcTemplate::refresh`].
    ///
    /// # Errors
    /// Same conditions as [`CtmcTemplate::refresh`].
    pub fn instantiate(&self, graph: &ReachabilityGraph) -> Result<Ctmc, SpnError> {
        let mut ctmc = Ctmc {
            rates: Csr::from_pattern(self.pattern.clone(), vec![0.0; self.pattern.nnz()]),
            exit: vec![0.0; self.n],
            initial: self.initial.clone(),
            absorbing: vec![false; self.n],
            transposed: Some(Csr::from_pattern(
                self.t_pattern.clone(),
                vec![0.0; self.t_pattern.nnz()],
            )),
            uniformized: OnceLock::from((
                0.0,
                Csr::from_pattern(self.u_pattern.clone(), vec![0.0; self.u_pattern.nnz()]),
            )),
            uniformized_t: OnceLock::from(Csr::from_pattern(
                self.ut_pattern.clone(),
                vec![0.0; self.ut_pattern.nnz()],
            )),
        };
        self.refresh(graph, &mut ctmc)?;
        Ok(ctmc)
    }

    /// Rewrite `ctmc`'s value arrays, exit rates, and absorbing flags in
    /// place from `graph`'s current (re-weighted) rates. No allocation.
    ///
    /// Zero-exit states are promoted to absorbing exactly as in
    /// [`Ctmc::from_graph`] (see there for why).
    ///
    /// # Errors
    /// Returns [`SpnError::InvalidModel`] when `graph`'s structure differs
    /// from the templated one (state count, per-state edge counts, or edge
    /// targets), or when `ctmc` was not instantiated from this template.
    pub fn refresh(&self, graph: &ReachabilityGraph, ctmc: &mut Ctmc) -> Result<(), SpnError> {
        if graph.state_count() != self.n {
            return Err(SpnError::InvalidModel(format!(
                "template has {} states, graph has {}; re-explore instead",
                self.n,
                graph.state_count()
            )));
        }
        if !Arc::ptr_eq(ctmc.rates.pattern(), &self.pattern) {
            return Err(SpnError::InvalidModel(
                "refresh target was not instantiated from this template".into(),
            ));
        }
        let Ctmc {
            rates,
            exit,
            absorbing,
            transposed,
            uniformized,
            uniformized_t,
            ..
        } = ctmc;
        let (Some(transposed), Some((q_cached, uni)), Some(uni_t)) = (
            transposed.as_mut(),
            uniformized.get_mut(),
            uniformized_t.get_mut(),
        ) else {
            return Err(SpnError::InvalidModel(
                "refresh target lost its cached matrices".into(),
            ));
        };

        // Forward values + exit rates, accumulated in graph-edge order —
        // the same order Ctmc::from_graph sums shared slots in.
        let values = rates.values_mut();
        values.fill(0.0);
        let mut k = 0usize;
        for (s, elist) in graph.edges.iter().enumerate() {
            if elist.len() != (self.edge_offsets[s + 1] - self.edge_offsets[s]) as usize {
                return Err(SpnError::InvalidModel(format!(
                    "state {s}: edge count changed; the variation is \
                     structural — re-explore"
                )));
            }
            let mut exit_s = 0.0;
            for e in elist {
                let slot = self.slots[k] as usize;
                if self.pattern.col(slot) != e.target as usize {
                    return Err(SpnError::InvalidModel(format!(
                        "state {s}: edge target changed; the variation is \
                         structural — re-explore"
                    )));
                }
                if e.rate > 0.0 {
                    values[slot] += e.rate;
                    exit_s += e.rate;
                }
                k += 1;
            }
            exit[s] = exit_s;
            absorbing[s] = graph.absorbing[s] || exit_s == 0.0;
        }

        // Transposed values: a pure permutation of the forward slots.
        let values = rates.values();
        let t_values = transposed.values_mut();
        for (slot, &v) in values.iter().enumerate() {
            t_values[self.t_perm[slot] as usize] = v;
        }

        // Uniformized DTMC, on the same q as Ctmc::build_uniformized.
        let q = uniformization_q(exit);
        let u_values = uni.values_mut();
        for (slot, &v) in values.iter().enumerate() {
            u_values[self.u_perm[slot] as usize] = v / q;
        }
        for s in 0..self.n {
            u_values[self.diag_slots[s] as usize] = 1.0 - exit[s] / q;
        }
        *q_cached = q;

        // Transposed uniformized values: a pure permutation of the
        // uniformized slots.
        let u_values = uni.values();
        let ut_values = uni_t.values_mut();
        for (slot, &v) in u_values.iter().enumerate() {
            ut_values[self.ut_from_u[slot] as usize] = v;
        }
        Ok(())
    }
}

/// Shared input validation for [`Ctmc::from_graph`] and
/// [`CtmcTemplate::new`]: both constructors must accept exactly the same
/// graphs.
fn validate_graph(graph: &ReachabilityGraph) -> Result<(), SpnError> {
    if graph.state_count() == 0 {
        return Err(SpnError::InvalidModel(
            "reachability graph has no states".into(),
        ));
    }
    let mass: f64 = graph.initial_distribution.iter().map(|&(_, p)| p).sum();
    if (mass - 1.0).abs() > 1e-9 {
        return Err(SpnError::InvalidModel(format!(
            "initial distribution sums to {mass}, expected 1"
        )));
    }
    Ok(())
}

/// Uniformization constant for a vector of exit rates — one definition so
/// the template-refreshed DTMC and [`Ctmc::build_uniformized`] can never
/// drift apart.
fn uniformization_q(exit: &[f64]) -> f64 {
    let qmax = exit.iter().copied().fold(0.0_f64, f64::max);
    (qmax * 1.02).max(1e-12)
}

/// Iterative Tarjan strongly-connected components. Components are emitted
/// in reverse topological order of the condensation (every component
/// appears before its predecessors).
fn tarjan_scc(succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succ.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < succ[v].len() {
                let w = succ[v][*child];
                *child += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(component);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SpnBuilder, TransitionDef};
    use crate::reach::{explore, ExploreOptions};

    fn build(netf: impl FnOnce(&mut SpnBuilder)) -> Ctmc {
        let mut b = SpnBuilder::new();
        netf(&mut b);
        let net = b.build().unwrap();
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        Ctmc::from_graph(&g).unwrap()
    }

    /// Exponential single-stage: MTTA = 1/λ.
    #[test]
    fn single_exponential_stage() {
        let c = build(|b| {
            let up = b.add_place("up", 1);
            b.add_transition(TransitionDef::timed_const("fail", 0.25).input(up, 1));
        });
        let a = c.mean_time_to_absorption().unwrap();
        assert!((a.mtta - 4.0).abs() < 1e-10);
        let total: f64 = a.absorption_probability.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    /// Hypoexponential chain: MTTA = Σ 1/(kλ).
    #[test]
    fn death_chain_mtta_closed_form() {
        let c = build(|b| {
            let up = b.add_place("up", 5);
            b.add_transition(
                TransitionDef::timed("die", move |m| 0.5 * m.tokens(up) as f64).input(up, 1),
            );
        });
        let a = c.mean_time_to_absorption().unwrap();
        let exact: f64 = (1..=5).map(|k| 1.0 / (0.5 * k as f64)).sum();
        assert!((a.mtta - exact).abs() < 1e-9, "{} vs {exact}", a.mtta);
    }

    /// Competing exponentials: absorption probabilities proportional to
    /// rates, MTTA = 1/(λ+μ).
    #[test]
    fn competing_risks_split() {
        let c = build(|b| {
            let up = b.add_place("up", 1);
            let dead_a = b.add_place("A", 0);
            let dead_b = b.add_place("B", 0);
            b.add_transition(
                TransitionDef::timed_const("to_a", 1.0)
                    .input(up, 1)
                    .output(dead_a, 1),
            );
            b.add_transition(
                TransitionDef::timed_const("to_b", 3.0)
                    .input(up, 1)
                    .output(dead_b, 1),
            );
        });
        let a = c.mean_time_to_absorption().unwrap();
        assert!((a.mtta - 0.25).abs() < 1e-10);
        let mut probs: Vec<f64> = a
            .absorption_probability
            .iter()
            .copied()
            .filter(|&p| p > 0.0)
            .collect();
        probs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((probs[0] - 0.25).abs() < 1e-10);
        assert!((probs[1] - 0.75).abs() < 1e-10);
    }

    #[test]
    fn mtta_infinite_detected() {
        // no absorbing state: M/M/1/K loop
        let c = build(|b| {
            let q = b.add_place("q", 0);
            b.add_transition(
                TransitionDef::timed_const("in", 1.0)
                    .output(q, 1)
                    .inhibitor(q, 3),
            );
            b.add_transition(TransitionDef::timed_const("out", 2.0).input(q, 1));
        });
        assert!(matches!(
            c.mean_time_to_absorption(),
            Err(SpnError::AnalysisUnavailable(_))
        ));
    }

    #[test]
    fn start_in_absorbing_state_gives_zero_mtta() {
        let c = build(|b| {
            let up = b.add_place("up", 1);
            b.add_transition(TransitionDef::timed_const("t", 1.0).input(up, 1));
            b.absorbing_when(move |m| m.tokens(up) >= 1); // initial marking absorbing
        });
        let a = c.mean_time_to_absorption().unwrap();
        assert_eq!(a.mtta, 0.0);
        assert!((a.absorption_probability.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transient_distribution_two_state() {
        // up --λ--> down; π_up(t) = e^{-λt}
        let c = build(|b| {
            let up = b.add_place("up", 1);
            b.add_transition(TransitionDef::timed_const("fail", 2.0).input(up, 1));
        });
        let opts = TransientOptions::default();
        for &t in &[0.0, 0.1, 0.5, 1.0, 3.0] {
            let pi = c.transient_distribution(t, &opts);
            let exact = (-2.0 * t).exp();
            assert!((pi[0] - exact).abs() < 1e-8, "t={t}: {} vs {exact}", pi[0]);
            assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn occupancy_converges_to_sojourn() {
        let c = build(|b| {
            let up = b.add_place("up", 3);
            b.add_transition(
                TransitionDef::timed("die", move |m| 1.0 * m.tokens(up) as f64).input(up, 1),
            );
        });
        let a = c.mean_time_to_absorption().unwrap();
        let occ = c.expected_occupancy(200.0, &TransientOptions::default());
        // transient occupancy converges to the sojourn vector; the absorbing
        // state's occupancy keeps growing with t and is excluded.
        for (i, (o, s)) in occ.iter().zip(&a.sojourn).enumerate() {
            if !c.absorbing()[i] {
                assert!((o - s).abs() < 1e-6, "state {i}: {o} vs {s}");
            }
        }
        // the paper's integral MTTSF formula: sum of transient occupancy
        let mttsf_integral: f64 = occ
            .iter()
            .enumerate()
            .filter(|&(i, _)| !c.absorbing()[i])
            .map(|(_, &o)| o)
            .sum();
        assert!((mttsf_integral - a.mtta).abs() < 1e-6);
    }

    #[test]
    fn survival_curve_matches_closed_form_exponential() {
        // up --λ--> absorbed; S(t) = e^{-λt}
        let c = build(|b| {
            let up = b.add_place("up", 1);
            b.add_transition(TransitionDef::timed_const("fail", 2.0).input(up, 1));
        });
        let times = [0.0, 0.1, 0.5, 1.0, 1.0, 3.0];
        let s = c.survival_curve(&times, &TransientOptions::default());
        for (&t, &st) in times.iter().zip(&s) {
            let exact = (-2.0 * t).exp();
            assert!((st - exact).abs() < 1e-8, "t={t}: {st} vs {exact}");
        }
    }

    #[test]
    fn survival_curve_agrees_with_transient_distribution() {
        // Segment-wise propagation must match independent solves per point.
        let c = build(|b| {
            let up = b.add_place("up", 4);
            b.add_transition(
                TransitionDef::timed("die", move |m| 0.7 * m.tokens(up) as f64).input(up, 1),
            );
        });
        let opts = TransientOptions::default();
        let times = [0.3, 0.9, 2.0, 5.5];
        let s = c.survival_curve(&times, &opts);
        for (&t, &st) in times.iter().zip(&s) {
            let pi = c.transient_distribution(t, &opts);
            let direct: f64 = pi
                .iter()
                .zip(c.absorbing())
                .filter_map(|(&x, &a)| (!a).then_some(x))
                .sum();
            assert!((st - direct).abs() < 1e-8, "t={t}: {st} vs {direct}");
        }
    }

    #[test]
    fn survival_starts_at_one_and_decreases() {
        let c = build(|b| {
            let up = b.add_place("up", 3);
            b.add_transition(
                TransitionDef::timed("die", move |m| m.tokens(up) as f64).input(up, 1),
            );
        });
        let times: Vec<f64> = (0..20).map(|i| i as f64 * 0.4).collect();
        let s = c.survival_curve(&times, &TransientOptions::default());
        assert!((s[0] - 1.0).abs() < 1e-12);
        for w in s.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "not monotone: {s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn survival_curve_rejects_unsorted_grid() {
        let c = build(|b| {
            let up = b.add_place("up", 1);
            b.add_transition(TransitionDef::timed_const("fail", 1.0).input(up, 1));
        });
        c.survival_curve(&[1.0, 0.5], &TransientOptions::default());
    }

    #[test]
    fn occupancy_at_small_t_is_linear() {
        let c = build(|b| {
            let up = b.add_place("up", 1);
            b.add_transition(TransitionDef::timed_const("fail", 1.0).input(up, 1));
        });
        let occ = c.expected_occupancy(1e-4, &TransientOptions::default());
        // at tiny t: time in initial state ≈ t
        assert!((occ[0] - 1e-4).abs() < 1e-7);
    }

    #[test]
    fn steady_state_mm1k() {
        // M/M/1/2 with λ=1, μ=2: π ∝ (1, ρ, ρ²), ρ=0.5
        let c = build(|b| {
            let q = b.add_place("q", 0);
            b.add_transition(
                TransitionDef::timed_const("in", 1.0)
                    .output(q, 1)
                    .inhibitor(q, 2),
            );
            b.add_transition(TransitionDef::timed_const("out", 2.0).input(q, 1));
        });
        let pi = c.steady_state().unwrap();
        let z = 1.0 + 0.5 + 0.25;
        let expect = [1.0 / z, 0.5 / z, 0.25 / z];
        // state order follows exploration (0, 1, 2 tokens)
        for (p, e) in pi.iter().zip(&expect) {
            assert!((p - e).abs() < 1e-9, "{pi:?}");
        }
    }

    #[test]
    fn steady_state_rejects_absorbing_chain() {
        let c = build(|b| {
            let up = b.add_place("up", 1);
            b.add_transition(TransitionDef::timed_const("fail", 1.0).input(up, 1));
        });
        assert!(matches!(
            c.steady_state(),
            Err(SpnError::AnalysisUnavailable(_))
        ));
    }

    #[test]
    fn accumulated_reward_weighted_sojourn() {
        let c = build(|b| {
            let up = b.add_place("up", 2);
            b.add_transition(
                TransitionDef::timed("die", move |m| m.tokens(up) as f64).input(up, 1),
            );
        });
        let a = c.mean_time_to_absorption().unwrap();
        // reward = tokens in `up`: E[∫ tokens dt] = 2·(1/2) + 1·(1/1) = 2
        // state order: (2), (1), (0)
        let reward = [2.0, 1.0, 0.0];
        let acc = a.accumulated_reward(&reward);
        assert!((acc - 2.0).abs() < 1e-9, "{acc}");
        let avg = a.time_averaged_reward(&reward);
        assert!((avg - acc / a.mtta).abs() < 1e-12);
    }

    /// Regression: a transient state whose edges were all zeroed (without
    /// the graph's absorbing flag being recomputed) must not silently
    /// corrupt the solves. `from_graph` promotes zero-exit states to
    /// absorbing, so absorption stays solvable and uniformization counts
    /// the stuck mass as absorbed instead of "surviving" forever.
    #[test]
    fn vanishing_exit_state_is_treated_as_absorbing() {
        let mut b = SpnBuilder::new();
        let up = b.add_place("up", 2);
        b.add_transition(TransitionDef::timed("die", move |m| m.tokens(up) as f64).input(up, 1));
        let net = b.build().unwrap();
        let mut g = explore(&net, &ExploreOptions::default()).unwrap();
        // Zero state 1's edges by hand, leaving its absorbing flag stale.
        for e in &mut g.edges[1] {
            e.rate = 0.0;
        }
        assert!(!g.absorbing[1], "flag is deliberately stale");
        let c = Ctmc::from_graph(&g).unwrap();
        assert!(c.absorbing()[1], "zero-exit state must be promoted");
        // Absorption now ends in state 1: MTTA is the first stage alone.
        let a = c.mean_time_to_absorption().unwrap();
        assert!((a.mtta - 0.5).abs() < 1e-12, "{}", a.mtta);
        assert!((a.absorption_probability[1] - 1.0).abs() < 1e-12);
        // And survival decays to zero instead of plateauing at "alive".
        let s = c.survival_curve(&[0.0, 50.0], &TransientOptions::default());
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!(s[1] < 1e-6, "stuck mass reported as surviving: {}", s[1]);
    }

    #[test]
    fn template_instantiate_matches_from_graph() {
        let mut b = SpnBuilder::new();
        let up = b.add_place("up", 4);
        b.add_transition(
            TransitionDef::timed("die", move |m| 0.7 * m.tokens(up) as f64).input(up, 1),
        );
        b.add_transition(
            TransitionDef::timed("die2", move |m| 0.2 * m.tokens(up) as f64).input(up, 2),
        );
        let net = b.build().unwrap();
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        let template = CtmcTemplate::new(&g).unwrap();
        assert_eq!(template.state_count(), g.state_count());
        let t = template.instantiate(&g).unwrap();
        let f = Ctmc::from_graph(&g).unwrap();
        let a_t = t.mean_time_to_absorption().unwrap();
        let a_f = f.mean_time_to_absorption().unwrap();
        assert_eq!(a_t.mtta.to_bits(), a_f.mtta.to_bits());
        let times = [0.0, 1.0, 5.0];
        let opts = TransientOptions::default();
        let s_t = t.survival_curve(&times, &opts);
        let s_f = f.survival_curve(&times, &opts);
        for (x, y) in s_t.iter().zip(&s_f) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn template_refresh_rejects_structural_mismatch() {
        let chain = |n: u32| {
            let mut b = SpnBuilder::new();
            let up = b.add_place("up", n);
            b.add_transition(
                TransitionDef::timed("die", move |m| m.tokens(up) as f64).input(up, 1),
            );
            let net = b.build().unwrap();
            explore(&net, &ExploreOptions::default()).unwrap()
        };
        let g3 = chain(3);
        let g5 = chain(5);
        let template = CtmcTemplate::new(&g3).unwrap();
        let mut ctmc = template.instantiate(&g3).unwrap();
        assert!(matches!(
            template.refresh(&g5, &mut ctmc),
            Err(SpnError::InvalidModel(_))
        ));
        // A CTMC not laid out on this template's pattern is refused too.
        let mut foreign = Ctmc::from_graph(&g3).unwrap();
        assert!(matches!(
            template.refresh(&g3, &mut foreign),
            Err(SpnError::InvalidModel(_))
        ));
    }

    #[test]
    fn template_keeps_zero_rate_edges_as_explicit_zeros() {
        // Re-weight a two-transition chain so one transition vanishes: the
        // pattern keeps the dead edges, the refreshed values zero them, and
        // the solve matches a fresh build of the same re-weighted graph.
        let build = |die: f64, leak: f64| {
            let mut b = SpnBuilder::new();
            let up = b.add_place("up", 2);
            let bad = b.add_place("bad", 0);
            b.add_transition(
                TransitionDef::timed("die", move |m| die * m.tokens(up) as f64).input(up, 1),
            );
            b.add_transition(
                TransitionDef::timed("leak", move |m| leak * m.tokens(up) as f64)
                    .input(up, 1)
                    .output(bad, 1),
            );
            b.absorbing_when(move |m| m.tokens(bad) >= 1 || m.tokens(up) == 0);
            b.build().unwrap()
        };
        let pristine = explore(&build(1.0, 0.5), &ExploreOptions::default()).unwrap();
        let template = CtmcTemplate::new(&pristine).unwrap();
        let mut ctmc = template.instantiate(&pristine).unwrap();
        let nnz_before = ctmc_nnz(&ctmc);

        let mut working = pristine.clone();
        working.reweight_in_place(&build(1.0, 0.0)).unwrap();
        template.refresh(&working, &mut ctmc).unwrap();
        assert_eq!(ctmc_nnz(&ctmc), nnz_before, "pattern must be stable");
        let fresh = Ctmc::from_graph(&working).unwrap();
        let a_t = ctmc.mean_time_to_absorption().unwrap();
        let a_f = fresh.mean_time_to_absorption().unwrap();
        assert_eq!(a_t.mtta.to_bits(), a_f.mtta.to_bits());
    }

    fn ctmc_nnz(c: &Ctmc) -> usize {
        (0..c.state_count()).map(|s| c.rates.row(s).count()).sum()
    }

    #[test]
    fn absorption_probabilities_sum_to_one_on_branching_chain() {
        let c = build(|b| {
            let up = b.add_place("up", 2);
            let leak = b.add_place("leak", 0);
            b.add_transition(
                TransitionDef::timed("step", move |m| m.tokens(up) as f64).input(up, 1),
            );
            b.add_transition(
                TransitionDef::timed("jump", move |m| 0.3 * m.tokens(up) as f64)
                    .input(up, 1)
                    .output(leak, 1)
                    .guard(move |m| m.tokens(up) >= 1),
            );
            b.absorbing_when(move |m| m.tokens(leak) > 0);
        });
        let a = c.mean_time_to_absorption().unwrap();
        let total: f64 = a.absorption_probability.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
        assert!(a.mtta > 0.0);
    }
}
