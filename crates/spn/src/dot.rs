//! Graphviz DOT export of nets and reachability graphs (debugging aid).

use crate::model::{Spn, TransitionKind};
use crate::reach::ReachabilityGraph;
use std::fmt::Write;

/// Render the net structure (places, transitions, arcs) as DOT.
pub fn net_to_dot(net: &Spn) -> String {
    let mut s = String::new();
    writeln!(s, "digraph spn {{").unwrap();
    writeln!(s, "  rankdir=LR;").unwrap();
    let initial = net.initial_marking();
    for p in 0..net.place_count() {
        let pid = crate::model::PlaceId(p as u32);
        writeln!(
            s,
            "  p{p} [shape=circle, label=\"{}\\n{}\"];",
            net.place_name(pid),
            initial.tokens(pid)
        )
        .unwrap();
    }
    for t in net.transition_ids() {
        let style = if net.is_immediate(t) {
            "filled"
        } else {
            "solid"
        };
        writeln!(
            s,
            "  t{} [shape=box, style={style}, label=\"{}\"];",
            t.index(),
            net.transition_name(t)
        )
        .unwrap();
    }
    for (t, def) in net.transition_defs() {
        for &(p, mult) in &def.0 {
            let lbl = if mult > 1 {
                format!(" [label=\"{mult}\"]")
            } else {
                String::new()
            };
            writeln!(s, "  p{} -> t{}{lbl};", p.index(), t.index()).unwrap();
        }
        for &(p, mult) in &def.1 {
            let lbl = if mult > 1 {
                format!(" [label=\"{mult}\"]")
            } else {
                String::new()
            };
            writeln!(s, "  t{} -> p{}{lbl};", t.index(), p.index()).unwrap();
        }
        for &(p, thresh) in &def.2 {
            writeln!(
                s,
                "  p{} -> t{} [arrowhead=odot, label=\"{thresh}\"];",
                p.index(),
                t.index()
            )
            .unwrap();
        }
    }
    writeln!(s, "}}").unwrap();
    s
}

/// Render a reachability graph as DOT (small graphs only; the label is the
/// marking).
pub fn graph_to_dot(graph: &ReachabilityGraph, net: &Spn) -> String {
    let mut s = String::new();
    writeln!(s, "digraph reach {{").unwrap();
    for (i, m) in graph.states.iter().enumerate() {
        let shape = if graph.absorbing[i] {
            "doublecircle"
        } else {
            "ellipse"
        };
        writeln!(s, "  s{i} [shape={shape}, label=\"{m:?}\"];").unwrap();
    }
    for (i, elist) in graph.edges.iter().enumerate() {
        for e in elist {
            writeln!(
                s,
                "  s{i} -> s{} [label=\"{} ({:.3})\"];",
                e.target,
                net.transition_name(e.transition),
                e.rate
            )
            .unwrap();
        }
    }
    writeln!(s, "}}").unwrap();
    s
}

impl Spn {
    /// Arc lists per transition `(inputs, outputs, inhibitors)` — used by
    /// the DOT exporter.
    #[allow(clippy::type_complexity)]
    pub(crate) fn transition_defs(
        &self,
    ) -> Vec<(
        crate::model::TransitionId,
        (
            Vec<(crate::model::PlaceId, u32)>,
            Vec<(crate::model::PlaceId, u32)>,
            Vec<(crate::model::PlaceId, u32)>,
        ),
    )> {
        self.transition_ids()
            .map(|t| {
                let tr = self.transition_ref(t);
                (
                    t,
                    (tr.inputs.clone(), tr.outputs.clone(), tr.inhibitors.clone()),
                )
            })
            .collect()
    }
}

/// Kind marker re-exported for exporters.
pub fn kind_label(k: &TransitionKind) -> &'static str {
    match k {
        TransitionKind::Timed { .. } => "timed",
        TransitionKind::Immediate { .. } => "immediate",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SpnBuilder, TransitionDef};
    use crate::reach::{explore, ExploreOptions};

    fn net() -> Spn {
        let mut b = SpnBuilder::new();
        let a = b.add_place("A", 2);
        let c = b.add_place("B", 0);
        b.add_transition(
            TransitionDef::timed_const("mv", 1.0)
                .input(a, 1)
                .output(c, 1)
                .inhibitor(c, 5),
        );
        b.add_transition(TransitionDef::immediate("snap").input(c, 2).output(a, 2));
        b.build().unwrap()
    }

    #[test]
    fn net_dot_contains_structure() {
        let d = net_to_dot(&net());
        assert!(d.contains("digraph spn"));
        assert!(d.contains("\"A\\n2\""));
        assert!(d.contains("mv"));
        assert!(d.contains("snap"));
        assert!(d.contains("arrowhead=odot"));
        assert!(d.ends_with("}\n"));
    }

    #[test]
    fn graph_dot_marks_absorbing() {
        let mut b = SpnBuilder::new();
        let up = b.add_place("up", 1);
        b.add_transition(TransitionDef::timed_const("t", 1.0).input(up, 1));
        let net = b.build().unwrap();
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        let d = graph_to_dot(&g, &net);
        assert!(d.contains("doublecircle"));
        assert!(d.contains("t (1.000)"));
    }
}
