//! The transient engine: uniformization specialized for absorbing chains.
//!
//! [`TransientEngine`] is the hot path behind [`Ctmc::survival_curve`],
//! [`Ctmc::transient_distribution`] and [`Ctmc::expected_occupancy`]. It
//! restructures Jensen uniformization around four compounding optimizations:
//!
//! 1. **Transient-submatrix propagation.** States are partitioned into the
//!    *transient block* (positive exit rate) and *frozen classes* (zero exit
//!    rate — true sinks of the chain). Matvecs run on the compact
//!    `nt × nt` block `Uᵀ_TT` only; probability flowing into a frozen class
//!    is accumulated as a single scalar per class via a small `na × nt`
//!    flux block, so survival reads are O(classes), not O(n).
//! 2. **Steady-state detection** (Reibman–Trivedi): once consecutive DTMC
//!    iterates agree to `detect_tolerance` in max-norm, the vector is a
//!    fixed point to working precision and every further matvec would
//!    reproduce it. The remaining Poisson tail is collapsed analytically
//!    (`Σ_{k>k*} w_k · v_{k*}`), and whole-grid propagation stops early
//!    once live transient mass drops below `epsilon` (survival clamps to 0
//!    for all later mission times).
//! 3. **Deterministic gather matvecs.** Propagation multiplies by the
//!    *transposed* uniformized DTMC, so each output element is an
//!    independent dot-product over sources in ascending order — the exact
//!    accumulation order of the sequential forward scatter. On large blocks
//!    with a multi-worker rayon pool the rows are mapped over the fixed
//!    64-row chunk grid ([`Csr::par_gather_into`]), which is bit-identical
//!    to the sequential kernel for any thread count.
//! 4. **Zero allocation after setup.** The engine owns every buffer the
//!    sweep needs (iterate, accumulator, flux, Poisson-weight scratch); a
//!    whole survival grid performs no heap allocation after
//!    [`TransientEngine::new`] returns.
//!
//! The engine is seeded from the chain's memoized uniformized DTMC and its
//! transpose (see [`Ctmc::uniformized`]), so repeated sweeps on one `Ctmc`
//! — or on a [`crate::ctmc::CtmcTemplate`] instantiation across parameter
//! points — never rebuild structure.

use crate::ctmc::{Ctmc, TransientOptions};
use numerics::foxglynn::PoissonWeights;
use numerics::sparse::{Csr, CsrPattern, EllMatrix};
use std::sync::Arc;

/// Propagation telemetry from one engine sweep, wired through run reports
/// and the bench snapshot so the optimizations stay measured and gated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransientStats {
    /// Number of `Uᵀ_TT` matrix-vector products performed.
    pub matvecs: u64,
    /// Global matvec index at which steady-state detection fired, if it
    /// did. Deterministic for a fixed chain/grid/options.
    pub detection_step: Option<u64>,
    /// True when grid propagation stopped early because live transient
    /// mass fell below `epsilon` with mission points still remaining.
    pub early_exit: bool,
    /// Size of the transient block (states with positive exit rate).
    pub transient_states: u32,
    /// Number of frozen absorbing classes (states with zero exit rate).
    pub absorbing_states: u32,
}

impl TransientStats {
    /// Fold another sweep's telemetry into this one (used when an
    /// evaluation runs several engine sweeps, e.g. hierarchical models):
    /// matvecs add, the first detection step wins, early-exit is sticky,
    /// and the state split keeps the largest sweep.
    pub fn merge(&mut self, other: &TransientStats) {
        self.matvecs += other.matvecs;
        if self.detection_step.is_none() {
            self.detection_step = other.detection_step;
        }
        self.early_exit |= other.early_exit;
        self.transient_states = self.transient_states.max(other.transient_states);
        self.absorbing_states = self.absorbing_states.max(other.absorbing_states);
    }
}

/// Check for steady state every this many matvecs: the O(nt) max-norm diff
/// stays a few percent of the matvec cost while detection still lands
/// within 8 steps of the true fixed point.
const DETECT_STRIDE: u64 = 8;

/// Minimum transient-block size before the parallel gather kernel beats
/// per-chunk spawn overhead in the vendored rayon pool.
const PAR_MIN_ROWS: usize = 512;

/// Reusable uniformization sweep over one chain's transient block.
///
/// Construction partitions states, compacts the propagation blocks, and
/// scatters the initial distribution; [`TransientEngine::advance`] then
/// moves the iterate forward by any `dt > 0` with zero allocation. One
/// engine serves a whole mission grid ([`TransientEngine::survival_curve`])
/// or a single horizon ([`TransientEngine::occupancy`]).
pub struct TransientEngine {
    /// Uniformization rate of the source chain.
    q: f64,
    /// Poisson truncation error per segment.
    epsilon: f64,
    /// Steady-state detection tolerance (`0.0` disables detection).
    detect_tolerance: f64,
    /// Whether whole-grid early exit on vanished transient mass is allowed.
    early_exit_enabled: bool,
    /// Use the chunked parallel gather kernel (decided once at setup so a
    /// sweep never changes kernels mid-grid).
    par: bool,
    /// Whether per-class absorbed mass is maintained step-by-step. The
    /// survival sweep reads only live transient mass, so it skips the
    /// `Uᵀ_AT` flux gather entirely; distribution/occupancy sweeps need
    /// the per-class split and pay for it.
    track_absorbed: bool,
    /// Compact transposed uniformized transient block `Uᵀ_TT` (nt × nt) in
    /// padded fixed-width layout, explicit zeros dropped, sources ascending
    /// within each row.
    g: EllMatrix,
    /// Per-class absorption flux rows `Uᵀ_AT` (na × nt): row `j` gathers
    /// one step's probability flow from the transient block into frozen
    /// class `j`.
    ta: EllMatrix,
    /// Global state id of each transient-block slot.
    transient_index: Vec<u32>,
    /// Global state id of each frozen absorbing class.
    class_index: Vec<u32>,
    /// Transient-block slots whose state carries the absorbing flag despite
    /// a positive exit rate (legal in hand-assembled graphs); their mass
    /// counts as failed in survival reads. Empty for promoted-only chains.
    flagged_live: Vec<u32>,
    /// Current transient iterate (length nt).
    v: Vec<f64>,
    /// Accumulated probability mass per frozen class (length na).
    absorbed: Vec<f64>,
    /// Matvec output scratch (length nt).
    next: Vec<f64>,
    /// Poisson-mixture accumulator for the transient block (length nt).
    acc_v: Vec<f64>,
    /// Poisson-mixture accumulator for absorbed mass (length na).
    acc_abs: Vec<f64>,
    /// One-step absorption flux scratch (length na).
    flux: Vec<f64>,
    /// Reused Fox–Glynn weight window.
    weights: PoissonWeights,
    /// Telemetry for the sweep so far.
    stats: TransientStats,
}

impl TransientEngine {
    /// Set up a sweep from the chain's initial distribution, maintaining
    /// the full per-class absorbed split (what
    /// [`TransientEngine::distribution`] and [`TransientEngine::occupancy`]
    /// need).
    ///
    /// # Panics
    /// Panics if `opts.epsilon` is not in (0, 1) or `opts.detect_tolerance`
    /// is negative.
    pub fn new(ctmc: &Ctmc, opts: &TransientOptions) -> Self {
        Self::with_mode(ctmc, opts, true)
    }

    /// Survival-only sweep: absorbed mass is not split per class, so every
    /// propagation step skips the `Uᵀ_AT` flux gather — survival reads live
    /// transient mass directly. [`TransientEngine::distribution`] and
    /// [`TransientEngine::occupancy`] are unavailable in this mode.
    ///
    /// # Panics
    /// Same conditions as [`TransientEngine::new`].
    pub fn for_survival(ctmc: &Ctmc, opts: &TransientOptions) -> Self {
        Self::with_mode(ctmc, opts, false)
    }

    fn with_mode(ctmc: &Ctmc, opts: &TransientOptions, track_absorbed: bool) -> Self {
        assert!(
            opts.epsilon > 0.0 && opts.epsilon < 1.0,
            "bad epsilon {}",
            opts.epsilon
        );
        assert!(
            opts.detect_tolerance >= 0.0,
            "bad detect tolerance {}",
            opts.detect_tolerance
        );
        let n = ctmc.state_count();
        let (q, _) = ctmc.uniformized();
        let ut = ctmc.uniformized_transpose();
        let exit = ctmc.exit_rates();
        let absorbing = ctmc.absorbing();

        // Partition: frozen classes are the true sinks (zero exit rate —
        // always flagged absorbing by construction); everything else
        // propagates.
        let mut local = vec![u32::MAX; n];
        let mut transient_index = Vec::new();
        let mut class_index = Vec::new();
        for s in 0..n {
            if exit[s] == 0.0 {
                class_index.push(s as u32);
            } else {
                local[s] = transient_index.len() as u32;
                transient_index.push(s as u32);
            }
        }
        let nt = transient_index.len();
        let na = class_index.len();
        let flagged_live: Vec<u32> = transient_index
            .iter()
            .enumerate()
            .filter(|&(_, &gs)| absorbing[gs as usize])
            .map(|(li, _)| li as u32)
            .collect();

        // Compact the gather blocks out of the transposed uniformized DTMC.
        // Explicit template zeros are dropped (templates keep them so value
        // arrays stay index-stable across refreshes; the engine does not
        // need that), and sources stay in ascending order, so each row's
        // dot-product accumulates in the same order as the sequential
        // forward scatter — the compaction is value-neutral bit-for-bit.
        let mut g_ptr = Vec::with_capacity(nt + 1);
        let mut g_col: Vec<u32> = Vec::new();
        let mut g_val: Vec<f64> = Vec::new();
        g_ptr.push(0u32);
        for &gt in &transient_index {
            for (src, p) in ut.row(gt as usize) {
                if p != 0.0 {
                    debug_assert!(
                        local[src] != u32::MAX,
                        "frozen state {src} has outgoing probability"
                    );
                    g_col.push(local[src]);
                    g_val.push(p);
                }
            }
            g_ptr.push(g_col.len() as u32);
        }
        let g = EllMatrix::from_csr(&Csr::from_pattern(
            Arc::new(CsrPattern::new(nt, nt, g_ptr, g_col)),
            g_val,
        ));

        let mut ta_ptr = Vec::with_capacity(na + 1);
        let mut ta_col: Vec<u32> = Vec::new();
        let mut ta_val: Vec<f64> = Vec::new();
        ta_ptr.push(0u32);
        for &ga in &class_index {
            // The frozen state's own self-loop (diagonal 1.0) is excluded
            // by the transient-source filter: absorbed mass is tracked
            // directly, not re-multiplied.
            for (src, p) in ut.row(ga as usize) {
                if local[src] != u32::MAX && p != 0.0 {
                    ta_col.push(local[src]);
                    ta_val.push(p);
                }
            }
            ta_ptr.push(ta_col.len() as u32);
        }
        let ta = EllMatrix::from_csr(&Csr::from_pattern(
            Arc::new(CsrPattern::new(na, nt, ta_ptr, ta_col)),
            ta_val,
        ));

        // Scatter the initial distribution into the split representation.
        let mut v = vec![0.0; nt];
        let mut absorbed = vec![0.0; na];
        let mut class_slot = vec![u32::MAX; n];
        for (j, &ga) in class_index.iter().enumerate() {
            class_slot[ga as usize] = j as u32;
        }
        for &(s, p) in ctmc.initial_pairs() {
            let s = s as usize;
            if local[s] != u32::MAX {
                v[local[s] as usize] += p;
            } else {
                absorbed[class_slot[s] as usize] += p;
            }
        }

        let par = rayon::current_num_threads() > 1 && nt >= PAR_MIN_ROWS;
        Self {
            q,
            epsilon: opts.epsilon,
            detect_tolerance: opts.detect_tolerance,
            early_exit_enabled: opts.early_exit,
            par,
            track_absorbed,
            g,
            ta,
            transient_index,
            class_index,
            flagged_live,
            v,
            absorbed,
            next: vec![0.0; nt],
            acc_v: vec![0.0; nt],
            acc_abs: vec![0.0; na],
            flux: vec![0.0; na],
            weights: PoissonWeights::compute(0.0, opts.epsilon),
            stats: TransientStats {
                matvecs: 0,
                detection_step: None,
                early_exit: false,
                transient_states: nt as u32,
                absorbing_states: na as u32,
            },
        }
    }

    /// Telemetry accumulated so far.
    pub fn stats(&self) -> &TransientStats {
        &self.stats
    }

    /// Advance the iterate by `dt > 0` via one truncated Poisson mixture.
    ///
    /// Performs no heap allocation (the weight window and all vectors are
    /// engine-owned scratch). When steady-state detection fires, the
    /// remaining Poisson tail `Σ_{k > k*} w_k` is applied to the fixed
    /// point analytically instead of step-by-step.
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt > 0.0, "advance needs dt > 0, got {dt}");
        if self.transient_index.is_empty() {
            // All mass is frozen; the mixture Σ w_k · absorbed is absorbed.
            return;
        }
        self.weights.compute_into(self.q * dt, self.epsilon);
        let right = self.weights.right;
        self.acc_v.fill(0.0);
        self.acc_abs.fill(0.0);
        let mut cum = 0.0_f64;
        let mut k = 0usize;
        loop {
            let w = self.weights.weight(k);
            if w > 0.0 {
                cum += w;
                axpy(&mut self.acc_v, w, &self.v);
                if self.track_absorbed {
                    axpy(&mut self.acc_abs, w, &self.absorbed);
                }
            }
            if k >= right {
                break;
            }
            // One DTMC step: first bank the flux into frozen classes (only
            // when the per-class split is maintained), then propagate the
            // transient block.
            if self.track_absorbed {
                self.ta.gather_into(&self.v, &mut self.flux);
                axpy(&mut self.absorbed, 1.0, &self.flux);
            }
            if self.par {
                self.g.par_gather_into(&self.v, &mut self.next);
            } else {
                self.g.gather_into(&self.v, &mut self.next);
            }
            self.stats.matvecs += 1;
            if self.detect_tolerance > 0.0 && self.stats.matvecs.is_multiple_of(DETECT_STRIDE) {
                let dmax = max_abs_diff(&self.next, &self.v);
                if dmax <= self.detect_tolerance {
                    // Fixed point to working precision: every remaining
                    // mixture term equals the current iterate, so the tail
                    // collapses to a single scaled add.
                    std::mem::swap(&mut self.v, &mut self.next);
                    let rem = (1.0 - cum).max(0.0);
                    axpy(&mut self.acc_v, rem, &self.v);
                    if self.track_absorbed {
                        axpy(&mut self.acc_abs, rem, &self.absorbed);
                    }
                    if self.stats.detection_step.is_none() {
                        self.stats.detection_step = Some(self.stats.matvecs);
                    }
                    break;
                }
            }
            std::mem::swap(&mut self.v, &mut self.next);
            k += 1;
        }
        std::mem::swap(&mut self.v, &mut self.acc_v);
        if self.track_absorbed {
            std::mem::swap(&mut self.absorbed, &mut self.acc_abs);
        }
    }

    /// Survival probability at the current time point, clamped to [0, 1]:
    /// live transient mass minus flagged-live mass in survival-only mode,
    /// `1 − (absorbed + flagged live)` when the per-class split is
    /// maintained. The two differ only by conservation roundoff.
    fn survival(&self) -> f64 {
        let flagged: f64 = self
            .flagged_live
            .iter()
            .map(|&li| self.v[li as usize])
            .sum();
        if self.track_absorbed {
            let absorbed: f64 = self.absorbed.iter().sum();
            (1.0 - absorbed - flagged).clamp(0.0, 1.0)
        } else {
            (self.live_mass() - flagged).clamp(0.0, 1.0)
        }
    }

    /// Total probability mass still in the transient block.
    fn live_mass(&self) -> f64 {
        self.v.iter().sum()
    }

    /// Sweep an ascending mission grid, reading survival at each point.
    ///
    /// Propagation is segment-by-segment (`t_{k-1} → t_k`); once live
    /// transient mass drops below `epsilon` with points still remaining
    /// (and early exit is enabled), the rest of the curve is filled with
    /// zeros without further matvecs.
    pub fn survival_curve(&mut self, times: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(times.len());
        let mut now = 0.0_f64;
        for (i, &t) in times.iter().enumerate() {
            if t > now {
                self.advance(t - now);
                now = t;
            }
            out.push(self.survival());
            if self.early_exit_enabled && i + 1 < times.len() && self.live_mass() < self.epsilon {
                self.stats.early_exit = true;
                out.resize(times.len(), 0.0);
                break;
            }
        }
        out
    }

    /// Full-length distribution at the current time point (transient slots
    /// and frozen classes scattered back to global state indices).
    pub fn distribution(&self) -> Vec<f64> {
        debug_assert!(
            self.track_absorbed,
            "distribution() needs a full-tracking engine (TransientEngine::new)"
        );
        let n = self.transient_index.len() + self.class_index.len();
        let mut out = vec![0.0; n];
        for (li, &gs) in self.transient_index.iter().enumerate() {
            out[gs as usize] = self.v[li];
        }
        for (j, &ga) in self.class_index.iter().enumerate() {
            out[ga as usize] = self.absorbed[j];
        }
        out
    }

    /// Expected occupancy `∫₀ᵗ π(u) du` from the engine's current point
    /// (normally the initial distribution), as a full-length vector.
    ///
    /// Uses the standard uniformization identity
    /// `∫₀ᵗ π(u) du = (1/q) Σ_k tail_k(q·t) · v_k` where
    /// `tail_k = P[Poisson(q·t) > k]`. On steady-state detection the
    /// remaining tail sum is evaluated analytically against the fixed
    /// point.
    pub fn occupancy(&mut self, t: f64) -> Vec<f64> {
        debug_assert!(t > 0.0, "occupancy needs t > 0, got {t}");
        debug_assert!(
            self.track_absorbed,
            "occupancy() needs a full-tracking engine (TransientEngine::new)"
        );
        self.weights.compute_into(self.q * t, self.epsilon);
        let right = self.weights.right;
        self.acc_v.fill(0.0);
        self.acc_abs.fill(0.0);
        let mut cum = 0.0_f64;
        let mut k = 0usize;
        loop {
            cum += self.weights.weight(k);
            let f = (1.0 - cum).max(0.0) / self.q;
            if f > 0.0 {
                axpy(&mut self.acc_v, f, &self.v);
                axpy(&mut self.acc_abs, f, &self.absorbed);
            }
            if k >= right || self.transient_index.is_empty() {
                if self.transient_index.is_empty() && k < right {
                    // Frozen-only chain: remaining tail factors apply to a
                    // constant vector; finish the scalar sum analytically.
                    let mut c = cum;
                    let mut rem = 0.0_f64;
                    for k2 in (k + 1)..=right {
                        c += self.weights.weight(k2);
                        rem += (1.0 - c).max(0.0);
                    }
                    axpy(&mut self.acc_abs, rem / self.q, &self.absorbed);
                }
                break;
            }
            self.ta.gather_into(&self.v, &mut self.flux);
            axpy(&mut self.absorbed, 1.0, &self.flux);
            if self.par {
                self.g.par_gather_into(&self.v, &mut self.next);
            } else {
                self.g.gather_into(&self.v, &mut self.next);
            }
            self.stats.matvecs += 1;
            if self.detect_tolerance > 0.0 && self.stats.matvecs.is_multiple_of(DETECT_STRIDE) {
                let dmax = max_abs_diff(&self.next, &self.v);
                if dmax <= self.detect_tolerance {
                    std::mem::swap(&mut self.v, &mut self.next);
                    // Remaining Σ tail_k against the frozen fixed point.
                    let mut c = cum;
                    let mut rem = 0.0_f64;
                    for k2 in (k + 1)..=right {
                        c += self.weights.weight(k2);
                        rem += (1.0 - c).max(0.0);
                    }
                    let f = rem / self.q;
                    axpy(&mut self.acc_v, f, &self.v);
                    axpy(&mut self.acc_abs, f, &self.absorbed);
                    if self.stats.detection_step.is_none() {
                        self.stats.detection_step = Some(self.stats.matvecs);
                    }
                    break;
                }
            }
            std::mem::swap(&mut self.v, &mut self.next);
            k += 1;
        }
        let n = self.transient_index.len() + self.class_index.len();
        let mut out = vec![0.0; n];
        for (li, &gs) in self.transient_index.iter().enumerate() {
            out[gs as usize] = self.acc_v[li];
        }
        for (j, &ga) in self.class_index.iter().enumerate() {
            out[ga as usize] = self.acc_abs[j];
        }
        out
    }
}

/// `y += a·x` in index order (the accumulation order the determinism
/// contract pins).
#[inline]
fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Max-norm distance between two equal-length vectors.
#[inline]
fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    let mut m = 0.0_f64;
    for (&x, &y) in a.iter().zip(b) {
        let d = (x - y).abs();
        if d > m {
            m = d;
        }
    }
    m
}
