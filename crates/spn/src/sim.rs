//! Monte-Carlo token-game simulation of an SPN.
//!
//! The simulator plays the net directly: in each tangible marking it samples
//! the exponential race among enabled timed transitions, advances time,
//! accrues rate rewards, fires, resolves any enabled immediate transitions
//! (priority then weighted choice), and repeats until an absorbing marking
//! or a time/step cap. Replications run in parallel under rayon with
//! deterministic per-replication seeds, providing an independent check of
//! the analytic CTMC solvers (EXPERIMENTS.md records the agreement).

use crate::error::SpnError;
use crate::model::{Marking, Spn, TransitionId};
use crate::reward::RewardSet;
use numerics::replicate::{run_plan, OutcomeSink, Replicate, SamplingPlan};
use numerics::stats::{ConfidenceInterval, Welford};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Simulation run limits.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Stop (censor) a replication at this simulated time.
    pub max_time: f64,
    /// Stop (censor) a replication after this many timed firings.
    pub max_firings: u64,
    /// Cap on consecutive immediate firings (loop guard).
    pub max_immediate_chain: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            max_time: f64::INFINITY,
            max_firings: 50_000_000,
            max_immediate_chain: 64,
        }
    }
}

/// Outcome of a single replication.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Simulated time at which the run ended.
    pub time: f64,
    /// True when the run ended in an absorbing marking (not censored).
    pub absorbed: bool,
    /// Accumulated value of each rate reward in the [`RewardSet`] (rate
    /// rewards integrate over time; impulse rewards sum over firings), in
    /// the order rates-then-impulses.
    pub accumulated: Vec<f64>,
    /// Firing counts per transition.
    pub firings: HashMap<TransitionId, u64>,
    /// Simulated time of each transition's first firing (absent if it never
    /// fired). Lets callers derive first-passage observables — e.g. the
    /// delay from first compromise to first detection — without replaying.
    pub first_firings: HashMap<TransitionId, f64>,
    /// Final marking.
    pub final_marking: Marking,
}

/// Aggregated statistics over replications.
#[derive(Debug, Clone)]
pub struct ReplicationStats {
    /// Time-to-absorption statistics (absorbed replications only).
    pub time_to_absorption: Welford,
    /// Per-reward accumulated statistics (all replications).
    pub accumulated: Vec<Welford>,
    /// Number of censored (non-absorbed) replications.
    pub censored: u64,
    /// Total replications.
    pub replications: u64,
}

impl ReplicationStats {
    /// Confidence interval on the mean time to absorption.
    pub fn mtta_ci(&self, level: f64) -> ConfidenceInterval {
        self.time_to_absorption.confidence_interval(level)
    }
}

/// [`ReplicationStats`] plus the adaptive-sampling verdict of a
/// [`Simulator::run_sampled`] run.
#[derive(Debug, Clone)]
pub struct SampledStats {
    /// The aggregate statistics (`replications` records the count actually
    /// run, which an adaptive plan chooses at runtime).
    pub stats: ReplicationStats,
    /// Whether the adaptive precision target was met (`None` for fixed
    /// plans, `Some(false)` when the budget ran out first).
    pub target_met: Option<bool>,
}

/// Streaming aggregation of [`SimOutcome`]s for the shared replication
/// engine: Welford moments only, no outcome `Vec`. The first error (in
/// replication-index order) is retained and aborts the run's result.
#[derive(Clone)]
struct SimSink {
    tta: Welford,
    accumulated: Vec<Welford>,
    censored: u64,
    replications: u64,
    confidence: f64,
    error: Option<SpnError>,
}

impl SimSink {
    fn new(reward_count: usize, confidence: f64) -> Self {
        Self {
            tta: Welford::new(),
            accumulated: vec![Welford::new(); reward_count],
            censored: 0,
            replications: 0,
            confidence,
            error: None,
        }
    }

    fn into_result(self) -> Result<ReplicationStats, SpnError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(ReplicationStats {
                time_to_absorption: self.tta,
                accumulated: self.accumulated,
                censored: self.censored,
                replications: self.replications,
            }),
        }
    }
}

impl OutcomeSink<Result<SimOutcome, SpnError>> for SimSink {
    fn record(&mut self, outcome: Result<SimOutcome, SpnError>) {
        self.replications += 1;
        match outcome {
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
            }
            Ok(o) => {
                if o.absorbed {
                    self.tta.push(o.time);
                } else {
                    self.censored += 1;
                }
                for (w, &a) in self.accumulated.iter_mut().zip(&o.accumulated) {
                    w.push(a);
                }
            }
        }
    }

    fn merge(&mut self, other: Self) {
        self.tta.merge(&other.tta);
        for (w, o) in self.accumulated.iter_mut().zip(&other.accumulated) {
            w.merge(o);
        }
        self.censored += other.censored;
        self.replications += other.replications;
        // self covers the earlier index range, so its error stays first
        if self.error.is_none() {
            self.error = other.error;
        }
    }

    fn precision(&self) -> Option<f64> {
        if self.error.is_some() {
            // a fatal replication error: stop spawning batches immediately
            return Some(0.0);
        }
        self.tta.relative_precision(self.confidence)
    }
}

impl Replicate for Simulator<'_> {
    type Outcome = Result<SimOutcome, SpnError>;

    fn run_one(&self, seed: u64) -> Self::Outcome {
        Simulator::run_one(self, seed)
    }
}

/// SPN Monte-Carlo simulator.
pub struct Simulator<'a> {
    net: &'a Spn,
    rewards: &'a RewardSet,
    opts: SimOptions,
}

impl<'a> Simulator<'a> {
    /// Create a simulator for `net` accruing `rewards`.
    pub fn new(net: &'a Spn, rewards: &'a RewardSet, opts: SimOptions) -> Self {
        Self { net, rewards, opts }
    }

    /// Run one replication with the given RNG seed.
    ///
    /// # Errors
    /// Propagates rate-function failures and immediate-loop detection.
    pub fn run_one(&self, seed: u64) -> Result<SimOutcome, SpnError> {
        // detlint::allow(D003): leaf constructor — `seed` is a child_seed from the replicate grid, passed down by the executor
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut marking = self.net.initial_marking();
        let mut time = 0.0_f64;
        let n_rates = self.rewards.rates.len();
        let mut accumulated = vec![0.0_f64; n_rates + self.rewards.impulses.len()];
        let mut firings: HashMap<TransitionId, u64> = HashMap::new();
        let mut first_firings: HashMap<TransitionId, f64> = HashMap::new();
        let mut timed_firings = 0u64;

        // Resolve immediates at t=0 (vanishing initial marking).
        self.settle_immediates(
            &mut marking,
            &mut rng,
            &mut firings,
            &mut first_firings,
            time,
            &mut accumulated,
        )?;

        loop {
            if self.net.is_absorbing_marking(&marking) {
                return Ok(SimOutcome {
                    time,
                    absorbed: true,
                    accumulated,
                    firings,
                    first_firings,
                    final_marking: marking,
                });
            }
            let enabled = self.net.enabled_timed(&marking)?;
            if enabled.is_empty() {
                return Ok(SimOutcome {
                    time,
                    absorbed: true,
                    accumulated,
                    firings,
                    first_firings,
                    final_marking: marking,
                });
            }
            let total_rate: f64 = enabled.iter().map(|&(_, r)| r).sum();
            let dt = numerics::dist::sample_exponential(&mut rng, total_rate);
            let censored_dt = dt.min(self.opts.max_time - time);
            // Rate rewards accrue over the sojourn (censored at max_time).
            for (i, r) in self.rewards.rates.iter().enumerate() {
                accumulated[i] += (r.rate)(&marking) * censored_dt;
            }
            if time + dt > self.opts.max_time {
                return Ok(SimOutcome {
                    time: self.opts.max_time,
                    absorbed: false,
                    accumulated,
                    firings,
                    first_firings,
                    final_marking: marking,
                });
            }
            time += dt;
            // Pick the winning transition proportionally to rate.
            let mut pick = rng.gen::<f64>() * total_rate;
            let mut chosen = enabled[enabled.len() - 1].0;
            for &(t, r) in &enabled {
                if pick < r {
                    chosen = t;
                    break;
                }
                pick -= r;
            }
            // Impulse rewards observe the pre-firing marking.
            for (k, imp) in self.rewards.impulses.iter().enumerate() {
                if imp.transition == chosen {
                    accumulated[n_rates + k] += (imp.amount)(&marking);
                }
            }
            marking = self.net.fire(chosen, &marking);
            *firings.entry(chosen).or_insert(0) += 1;
            first_firings.entry(chosen).or_insert(time);
            timed_firings += 1;
            if timed_firings >= self.opts.max_firings {
                return Ok(SimOutcome {
                    time,
                    absorbed: false,
                    accumulated,
                    firings,
                    first_firings,
                    final_marking: marking,
                });
            }
            self.settle_immediates(
                &mut marking,
                &mut rng,
                &mut firings,
                &mut first_firings,
                time,
                &mut accumulated,
            )?;
        }
    }

    /// Fire enabled immediate transitions (in zero time) until the marking
    /// is tangible.
    fn settle_immediates(
        &self,
        marking: &mut Marking,
        rng: &mut SmallRng,
        firings: &mut HashMap<TransitionId, u64>,
        first_firings: &mut HashMap<TransitionId, f64>,
        time: f64,
        accumulated: &mut [f64],
    ) -> Result<(), SpnError> {
        let n_rates = self.rewards.rates.len();
        for _ in 0..self.opts.max_immediate_chain {
            let immediates = self.net.enabled_immediate(marking)?;
            if immediates.is_empty() {
                return Ok(());
            }
            let total: f64 = immediates.iter().map(|&(_, w)| w).sum();
            let mut pick = rng.gen::<f64>() * total;
            let mut chosen = immediates[immediates.len() - 1].0;
            for &(t, w) in &immediates {
                if pick < w {
                    chosen = t;
                    break;
                }
                pick -= w;
            }
            for (k, imp) in self.rewards.impulses.iter().enumerate() {
                if imp.transition == chosen {
                    accumulated[n_rates + k] += (imp.amount)(marking);
                }
            }
            *marking = self.net.fire(chosen, marking);
            *firings.entry(chosen).or_insert(0) += 1;
            first_firings.entry(chosen).or_insert(time);
        }
        Err(SpnError::VanishingLoop {
            marking: format!("{marking:?}"),
        })
    }

    /// Run `n` replications in parallel with deterministic per-replication
    /// seeds derived from `master_seed` (a fixed [`SamplingPlan`] through
    /// the shared replication engine).
    ///
    /// # Errors
    /// Returns the first replication error encountered.
    pub fn run_replications(&self, n: u64, master_seed: u64) -> Result<ReplicationStats, SpnError> {
        self.run_sampled(&SamplingPlan::Fixed(n), master_seed, 0.95)
            .map(|s| s.stats)
    }

    /// Run a [`SamplingPlan`] through the shared replication engine.
    /// Adaptive plans keep spawning batches until the relative half-width
    /// of the `confidence`-level CI on the mean time to absorption meets
    /// the plan's target (or its budget runs out); outcomes stream into
    /// Welford accumulators, never a `Vec`.
    ///
    /// # Errors
    /// Returns the first replication error (in replication-index order).
    ///
    /// # Panics
    /// Panics on an invalid plan (see [`SamplingPlan::validate`]).
    pub fn run_sampled(
        &self,
        plan: &SamplingPlan,
        master_seed: u64,
        confidence: f64,
    ) -> Result<SampledStats, SpnError> {
        let rewards = self.rewards.rates.len() + self.rewards.impulses.len();
        let done = run_plan(self, plan, master_seed, || {
            SimSink::new(rewards, confidence)
        });
        Ok(SampledStats {
            stats: done.sink.into_result()?,
            target_met: done.target_met,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SpnBuilder, TransitionDef};
    use crate::reward::{ImpulseReward, RateReward};

    fn exp_net(rate: f64) -> Spn {
        let mut b = SpnBuilder::new();
        let up = b.add_place("up", 1);
        b.add_transition(TransitionDef::timed_const("fail", rate).input(up, 1));
        b.build().unwrap()
    }

    #[test]
    fn single_replication_absorbs() {
        let net = exp_net(1.0);
        let rewards = RewardSet::new();
        let sim = Simulator::new(&net, &rewards, SimOptions::default());
        let o = sim.run_one(42).unwrap();
        assert!(o.absorbed);
        assert!(o.time > 0.0);
        assert_eq!(o.final_marking.total_tokens(), 0);
        assert_eq!(o.firings.values().sum::<u64>(), 1);
    }

    #[test]
    fn replications_match_exponential_mean() {
        let net = exp_net(2.0);
        let rewards = RewardSet::new();
        let sim = Simulator::new(&net, &rewards, SimOptions::default());
        let stats = sim.run_replications(20_000, 7).unwrap();
        assert_eq!(stats.censored, 0);
        let ci = stats.mtta_ci(0.99);
        assert!(
            ci.contains(0.5),
            "CI [{}, {}] should contain 0.5",
            ci.lo(),
            ci.hi()
        );
    }

    #[test]
    fn adaptive_sampling_stops_at_target_precision() {
        let net = exp_net(1.0);
        let rewards = RewardSet::new();
        let sim = Simulator::new(&net, &rewards, SimOptions::default());
        let plan = SamplingPlan::Adaptive {
            target_rel_halfwidth: 0.10,
            min: 100,
            max: 50_000,
            batch: 200,
        };
        let out = sim.run_sampled(&plan, 13, 0.95).unwrap();
        assert_eq!(out.target_met, Some(true));
        let n = out.stats.replications;
        assert!(n < 50_000, "should stop early, used {n}");
        let ci = out.stats.mtta_ci(0.95);
        assert!(ci.half_width / ci.mean <= 0.10, "{ci:?}");
        // bit-identical to the fixed plan with the same replication count
        let fixed = sim.run_replications(n, 13).unwrap();
        assert_eq!(fixed.time_to_absorption, out.stats.time_to_absorption);
    }

    #[test]
    fn deterministic_given_seed() {
        let net = exp_net(1.0);
        let rewards = RewardSet::new();
        let sim = Simulator::new(&net, &rewards, SimOptions::default());
        let a = sim.run_one(9).unwrap();
        let b = sim.run_one(9).unwrap();
        assert_eq!(a.time, b.time);
    }

    #[test]
    fn censoring_at_max_time() {
        let net = exp_net(1e-9); // effectively never fires
        let rewards = RewardSet::new();
        let opts = SimOptions {
            max_time: 5.0,
            ..Default::default()
        };
        let sim = Simulator::new(&net, &rewards, opts);
        let o = sim.run_one(1).unwrap();
        assert!(!o.absorbed);
        assert_eq!(o.time, 5.0);
    }

    #[test]
    fn rate_reward_integrates_uptime() {
        // reward = 1 while up; accumulated == time to absorption
        let net = exp_net(0.5);
        let up = net.place_by_name("up").unwrap();
        let rewards =
            RewardSet::new().with_rate(RateReward::new("up", move |m| m.tokens(up) as f64));
        let sim = Simulator::new(&net, &rewards, SimOptions::default());
        let o = sim.run_one(5).unwrap();
        assert!((o.accumulated[0] - o.time).abs() < 1e-12);
    }

    #[test]
    fn impulse_reward_counts_firings() {
        let mut b = SpnBuilder::new();
        let up = b.add_place("up", 4);
        b.add_transition(TransitionDef::timed("die", move |m| m.tokens(up) as f64).input(up, 1));
        let net = b.build().unwrap();
        let t = net.transition_by_name("die").unwrap();
        let rewards = RewardSet::new().with_impulse(ImpulseReward::new("evt", t, |_| 2.5));
        let sim = Simulator::new(&net, &rewards, SimOptions::default());
        let o = sim.run_one(3).unwrap();
        assert!(o.absorbed);
        assert_eq!(o.firings[&t], 4);
        assert!((o.accumulated[0] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn immediate_transitions_resolve_in_zero_time() {
        let mut b = SpnBuilder::new();
        let s = b.add_place("s", 1);
        let v = b.add_place("v", 0);
        let done = b.add_place("done", 0);
        b.add_transition(
            TransitionDef::timed_const("go", 4.0)
                .input(s, 1)
                .output(v, 1),
        );
        b.add_transition(TransitionDef::immediate("snap").input(v, 1).output(done, 1));
        let net = b.build().unwrap();
        let rewards = RewardSet::new();
        let sim = Simulator::new(&net, &rewards, SimOptions::default());
        let o = sim.run_one(11).unwrap();
        assert!(o.absorbed);
        assert_eq!(o.final_marking.tokens(done), 1);
        assert_eq!(o.firings.len(), 2);
    }

    #[test]
    fn immediate_loop_reports_error() {
        let mut b = SpnBuilder::new();
        let a = b.add_place("a", 1);
        let c = b.add_place("c", 0);
        b.add_transition(TransitionDef::immediate("ab").input(a, 1).output(c, 1));
        b.add_transition(TransitionDef::immediate("ba").input(c, 1).output(a, 1));
        let net = b.build().unwrap();
        let rewards = RewardSet::new();
        let sim = Simulator::new(&net, &rewards, SimOptions::default());
        assert!(matches!(
            sim.run_one(1),
            Err(SpnError::VanishingLoop { .. })
        ));
    }

    #[test]
    fn absorbing_predicate_stops_run() {
        let mut b = SpnBuilder::new();
        let up = b.add_place("up", 10);
        b.add_transition(TransitionDef::timed("die", move |m| m.tokens(up) as f64).input(up, 1));
        b.absorbing_when(move |m| m.tokens(up) <= 7);
        let net = b.build().unwrap();
        let rewards = RewardSet::new();
        let sim = Simulator::new(&net, &rewards, SimOptions::default());
        let o = sim.run_one(2).unwrap();
        assert!(o.absorbed);
        assert_eq!(o.final_marking.tokens(net.place_by_name("up").unwrap()), 7);
    }

    #[test]
    fn simulation_agrees_with_ctmc_mtta() {
        // death chain with 3 tokens, rate k per token
        let mut b = SpnBuilder::new();
        let up = b.add_place("up", 3);
        b.add_transition(
            TransitionDef::timed("die", move |m| 0.8 * m.tokens(up) as f64).input(up, 1),
        );
        let net = b.build().unwrap();
        let g = crate::reach::explore(&net, &Default::default()).unwrap();
        let ctmc = crate::ctmc::Ctmc::from_graph(&g).unwrap();
        let exact = ctmc.mean_time_to_absorption().unwrap().mtta;
        let rewards = RewardSet::new();
        let sim = Simulator::new(&net, &rewards, SimOptions::default());
        let stats = sim.run_replications(30_000, 123).unwrap();
        let ci = stats.mtta_ci(0.99);
        assert!(
            ci.contains(exact),
            "CI [{}, {}] vs exact {exact}",
            ci.lo(),
            ci.hi()
        );
    }
}
