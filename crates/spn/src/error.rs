//! Error type shared across the SPN engine.

use std::fmt;

/// Errors produced while building, exploring, or solving an SPN.
#[derive(Debug, Clone, PartialEq)]
pub enum SpnError {
    /// The net definition is inconsistent (duplicate names, dangling ids…).
    InvalidModel(String),
    /// Reachability exploration exceeded the configured state cap.
    StateSpaceExceeded {
        /// The configured cap that was hit.
        cap: usize,
    },
    /// A chain of immediate transitions did not reach a tangible marking.
    VanishingLoop {
        /// Textual description of the offending marking.
        marking: String,
    },
    /// A rate/weight function returned a negative or non-finite value.
    BadRate {
        /// Transition whose rate misbehaved.
        transition: String,
        /// The offending value.
        value: f64,
    },
    /// The requested analysis does not apply (e.g. MTTA of a chain with no
    /// reachable absorbing state).
    AnalysisUnavailable(String),
    /// An iterative solver failed to converge.
    SolverDiverged {
        /// Iterations performed.
        iterations: usize,
        /// Final residual.
        residual: f64,
    },
}

impl fmt::Display for SpnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpnError::InvalidModel(msg) => write!(f, "invalid SPN model: {msg}"),
            SpnError::StateSpaceExceeded { cap } => {
                write!(f, "reachability exceeded state cap of {cap}")
            }
            SpnError::VanishingLoop { marking } => {
                write!(f, "immediate-transition loop at marking {marking}")
            }
            SpnError::BadRate { transition, value } => {
                write!(f, "transition {transition} returned invalid rate {value}")
            }
            SpnError::AnalysisUnavailable(msg) => write!(f, "analysis unavailable: {msg}"),
            SpnError::SolverDiverged {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "solver diverged after {iterations} iterations (residual {residual})"
                )
            }
        }
    }
}

impl std::error::Error for SpnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SpnError::StateSpaceExceeded { cap: 10 };
        assert!(e.to_string().contains("10"));
        let e = SpnError::BadRate {
            transition: "T_CP".into(),
            value: -1.0,
        };
        assert!(e.to_string().contains("T_CP"));
        assert!(e.to_string().contains("-1"));
        let e = SpnError::InvalidModel("dup".into());
        assert!(e.to_string().contains("dup"));
    }
}
