//! Reachability-graph generation with vanishing-marking elimination.
//!
//! Exploration is a breadth-first walk over *tangible* markings (markings in
//! which no immediate transition is enabled). When firing a timed transition
//! leads to a vanishing marking, the chain of immediate firings is resolved
//! on the fly — probabilities split by immediate weights — until tangible
//! markings are reached, and the timed rate is distributed over them. The
//! result is directly a CTMC over tangible states.
//!
//! Self-loop edges (marking unchanged after firing) carry no information for
//! the CTMC and are dropped, but their rates are retained per state in
//! [`ReachabilityGraph::self_loop_rates`] so cost-only transitions (the
//! paper's `T_RK` rekeying transition) can still contribute to reward
//! accounting.

use crate::error::SpnError;
use crate::model::{Marking, PlaceId, Spn, TransitionId};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Symmetry-lumping canonicalizer: maps every marking to a canonical
/// representative of its orbit under permutations of indistinguishable
/// *member blocks*.
///
/// An orbit is a set of members that may be freely exchanged; each member is
/// an ordered list of places (the member's private sub-marking), and every
/// member of one orbit has the same block shape. Canonicalization sorts the
/// member token-tuples of each orbit lexicographically, so two markings that
/// differ only by a permutation of members inside an orbit map to the same
/// representative.
///
/// Exploring with a canonicalizer (see [`ExploreOptions::lumping`]) builds
/// the reachability graph directly over the lumped quotient chain. This is
/// **exact** (strong lumpability) precisely when the permutations are net
/// automorphisms: every rate, guard, and arc must be symmetric under
/// exchanging two members of an orbit. The canonicalizer cannot check that —
/// the model builder supplying the orbits is responsible for it.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkingCanonicalizer {
    /// orbit → member → place indices (all members of an orbit share a
    /// length).
    orbits: Vec<Vec<Vec<u32>>>,
}

impl MarkingCanonicalizer {
    /// Build a canonicalizer from orbits of interchangeable member blocks.
    ///
    /// # Errors
    /// [`SpnError::InvalidModel`] when an orbit has members of differing
    /// lengths, an empty member, or a place occurs in more than one member
    /// (sorting would then be ill-defined).
    pub fn new(orbits: Vec<Vec<Vec<PlaceId>>>) -> Result<Self, SpnError> {
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut compiled = Vec::with_capacity(orbits.len());
        for orbit in &orbits {
            let len = orbit.first().map_or(0, Vec::len);
            if len == 0 && !orbit.is_empty() {
                return Err(SpnError::InvalidModel(
                    "lumping orbit has an empty member block".into(),
                ));
            }
            let mut members = Vec::with_capacity(orbit.len());
            for member in orbit {
                if member.len() != len {
                    return Err(SpnError::InvalidModel(
                        "lumping orbit members must share one block shape".into(),
                    ));
                }
                let mut block = Vec::with_capacity(len);
                for p in member {
                    let idx = p.index() as u32;
                    if !seen.insert(idx) {
                        return Err(SpnError::InvalidModel(format!(
                            "place {idx} appears in more than one lumping member"
                        )));
                    }
                    block.push(idx);
                }
                members.push(block);
            }
            compiled.push(members);
        }
        Ok(Self { orbits: compiled })
    }

    /// Number of orbits (including degenerate single-member ones).
    pub fn orbit_count(&self) -> usize {
        self.orbits.len()
    }

    /// Total member blocks across all orbits.
    pub fn member_count(&self) -> usize {
        self.orbits.iter().map(Vec::len).sum()
    }

    /// True when no orbit has ≥ 2 members, i.e. canonicalization is the
    /// identity map and lumping cannot shrink anything.
    pub fn is_trivial(&self) -> bool {
        self.orbits.iter().all(|o| o.len() < 2)
    }

    /// Canonical representative of `m`'s symmetry orbit: member token-tuples
    /// sorted lexicographically within each orbit, all other places
    /// untouched. Idempotent.
    pub fn canonicalize(&self, m: &Marking) -> Marking {
        let mut tokens: Vec<u32> = m.as_slice().to_vec();
        for orbit in &self.orbits {
            if orbit.len() < 2 {
                continue;
            }
            let mut tuples: Vec<Vec<u32>> = orbit
                .iter()
                .map(|block| block.iter().map(|&p| tokens[p as usize]).collect())
                .collect();
            tuples.sort_unstable();
            for (block, tuple) in orbit.iter().zip(&tuples) {
                for (&p, &v) in block.iter().zip(tuple) {
                    tokens[p as usize] = v;
                }
            }
        }
        Marking::new(tokens)
    }
}

/// Exploration limits and (optional) symmetry lumping.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Maximum number of tangible states to generate.
    pub max_states: usize,
    /// Maximum length of an immediate-transition chain before declaring a
    /// vanishing loop.
    pub max_vanishing_depth: usize,
    /// When set, [`explore`] interns only canonical representatives, building
    /// the graph over the lumped quotient chain. Exactness requires the
    /// orbit permutations to be net automorphisms; see
    /// [`MarkingCanonicalizer`].
    pub lumping: Option<MarkingCanonicalizer>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self {
            max_states: 2_000_000,
            max_vanishing_depth: 64,
            lumping: None,
        }
    }
}

/// One CTMC edge of the reachability graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Target tangible state index.
    pub target: u32,
    /// Exponential rate of the move.
    pub rate: f64,
    /// The timed transition whose firing produced this edge (immediate
    /// resolution keeps the originating timed transition).
    pub transition: TransitionId,
}

/// The tangible reachability graph / CTMC skeleton of a net.
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    /// Tangible markings, index = state id; state 0 is the initial marking
    /// (or its tangible resolution).
    pub states: Vec<Marking>,
    /// Outgoing edges per state.
    pub edges: Vec<Vec<Edge>>,
    /// Summed rate of dropped self-loop edges per state, by transition.
    pub self_loop_rates: Vec<Vec<(TransitionId, f64)>>,
    /// Initial probability distribution over states (a point mass unless the
    /// initial marking was vanishing and split probabilistically).
    pub initial_distribution: Vec<(u32, f64)>,
    /// `true` for states where the net's global absorbing predicate holds or
    /// no transition is enabled.
    pub absorbing: Vec<bool>,
}

impl ReachabilityGraph {
    /// Number of tangible states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Total number of CTMC edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Indices of absorbing states.
    pub fn absorbing_states(&self) -> impl Iterator<Item = usize> + '_ {
        self.absorbing
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i)
    }

    /// Exit rate (sum of outgoing edge rates) of a state.
    pub fn exit_rate(&self, state: usize) -> f64 {
        self.edges[state].iter().map(|e| e.rate).sum()
    }

    /// Re-weight every edge and self-loop in place from `net`'s *current*
    /// timed-rate functions, without re-exploring the state space.
    ///
    /// This is the engine behind explore-once-solve-many sweeps: the state
    /// space of the Cho–Chen net depends only on structural parameters
    /// (`N`, `max_groups`), while the detection interval, attacker
    /// intensity, vote-participant count and rate shapes only change the
    /// *rates*. For such rate-only variations the graph explored once can
    /// be re-weighted in `O(states × transitions)` instead of re-running
    /// the full breadth-first interning walk.
    ///
    /// For each tangible state `s` and timed transition `t`, the total rate
    /// mass recorded at exploration time (the sum over `t`'s edges out of
    /// `s` plus any retained self-loop rate) equals `rate_t(s)` of the net
    /// that was explored; each edge holds its share of that mass (1 unless
    /// vanishing markings split the firing probabilistically). Re-weighting
    /// rescales every share by `new_rate / old_mass`, which preserves the
    /// vanishing-resolution probabilities — exact whenever the immediate
    /// weight *ratios* are unchanged (trivially true for nets without
    /// immediate transitions, like the GCS model).
    ///
    /// # Errors
    /// * [`SpnError::InvalidModel`] if `net` enables a timed transition with
    ///   positive rate in a state where the explored graph recorded no mass
    ///   for it (the variation is structural; re-explore instead), or if
    ///   `net` refers to a transition id outside this graph's vocabulary.
    /// * [`SpnError::BadRate`] from misbehaving rate functions.
    pub fn reweight_in_place(&mut self, net: &Spn) -> Result<(), SpnError> {
        let mut old_mass: HashMap<TransitionId, f64> = HashMap::new();
        let mut new_rate: HashMap<TransitionId, f64> = HashMap::new();
        for s in 0..self.states.len() {
            old_mass.clear();
            for e in &self.edges[s] {
                *old_mass.entry(e.transition).or_insert(0.0) += e.rate;
            }
            for &(t, r) in &self.self_loop_rates[s] {
                *old_mass.entry(t).or_insert(0.0) += r;
            }
            let marking = &self.states[s];
            new_rate.clear();
            for (t, r) in net.enabled_timed(marking)? {
                match old_mass.get(&t) {
                    Some(&mass) if mass > 0.0 => {}
                    _ => {
                        return Err(SpnError::InvalidModel(format!(
                            "reweight: transition {} gained rate {r} in state {s} \
                             where the explored graph has no mass for it; \
                             the change is structural — re-explore",
                            net.transition_name(t)
                        )))
                    }
                }
                new_rate.insert(t, r);
            }
            // Transitions absent from `new_rate` now have rate zero
            // (disabled-by-rate); their edges keep the graph's structure but
            // contribute no CTMC mass. A transition whose mass is already
            // zero (zeroed by a previous re-weight) stays zero — guarding
            // the division avoids 0/0 → NaN on repeated re-weighting. (It
            // cannot be revived either: its probability split is lost, and
            // a positive new rate is rejected by the check above.)
            //
            // An edge carrying its transition's *entire* mass (no vanishing
            // split — the only case in the GCS net) takes the new rate
            // verbatim: `rate * (new / mass)` double-rounds and would leave
            // a re-weighted graph one ULP off the same graph explored
            // fresh, breaking bit-identical template-cache replays.
            let reweight = |rate: &mut f64,
                            t: TransitionId,
                            new_rate: &HashMap<TransitionId, f64>,
                            old_mass: &HashMap<TransitionId, f64>| {
                match old_mass.get(&t) {
                    Some(&mass) if mass > 0.0 => {
                        let target = new_rate.get(&t).copied().unwrap_or(0.0);
                        if *rate == mass {
                            *rate = target;
                        } else {
                            *rate *= target / mass;
                        }
                    }
                    _ => *rate = 0.0,
                }
            };
            for e in &mut self.edges[s] {
                reweight(&mut e.rate, e.transition, &new_rate, &old_mass);
            }
            for sl in &mut self.self_loop_rates[s] {
                reweight(&mut sl.1, sl.0, &new_rate, &old_mass);
            }
        }
        // A rate that drops to zero can silence every remaining edge of a
        // state, making it absorbing for CTMC purposes.
        for (i, flag) in self.absorbing.iter_mut().enumerate() {
            *flag = net.is_absorbing_marking(&self.states[i])
                || self.edges[i].iter().all(|e| e.rate <= 0.0);
        }
        Ok(())
    }

    /// Reset this graph's rate-bearing parts (edge rates, self-loop rates,
    /// absorbing flags) from a structurally identical `pristine` graph,
    /// reusing every allocation. This is the scratch-reset step of a
    /// rebuild-free sweep: a working copy is re-armed from the explored
    /// graph before each [`ReachabilityGraph::reweight_in_place`], so rate
    /// families that zero a transition at one grid point can still revive
    /// it at the next (re-weighting always starts from the explored mass,
    /// never from an already-zeroed one).
    ///
    /// # Panics
    /// Panics if the state counts differ (the graphs are not copies of one
    /// structure).
    pub fn copy_rates_from(&mut self, pristine: &ReachabilityGraph) {
        assert_eq!(
            self.state_count(),
            pristine.state_count(),
            "copy_rates_from requires structurally identical graphs"
        );
        self.edges.clone_from(&pristine.edges);
        self.self_loop_rates.clone_from(&pristine.self_loop_rates);
        self.absorbing.clone_from(&pristine.absorbing);
    }

    /// Copy of this graph re-weighted from `net`'s current rate functions;
    /// see [`ReachabilityGraph::reweight_in_place`].
    ///
    /// # Errors
    /// Same conditions as [`ReachabilityGraph::reweight_in_place`].
    pub fn reweighted(&self, net: &Spn) -> Result<Self, SpnError> {
        let mut g = Self {
            states: self.states.clone(),
            edges: self.edges.clone(),
            self_loop_rates: self.self_loop_rates.clone(),
            initial_distribution: self.initial_distribution.clone(),
            absorbing: self.absorbing.clone(),
        };
        g.reweight_in_place(net)?;
        Ok(g)
    }
}

/// Resolution of one (possibly vanishing) marking into tangible successors
/// with probabilities.
fn resolve_to_tangible(
    net: &Spn,
    start: Marking,
    opts: &ExploreOptions,
) -> Result<Vec<(Marking, f64)>, SpnError> {
    // Depth-limited probabilistic expansion of immediate chains.
    let mut tangible: Vec<(Marking, f64)> = Vec::new();
    let mut frontier: Vec<(Marking, f64, usize)> = vec![(start, 1.0, 0)];
    while let Some((m, prob, depth)) = frontier.pop() {
        let immediates = net.enabled_immediate(&m)?;
        if immediates.is_empty() {
            tangible.push((m, prob));
            continue;
        }
        if depth >= opts.max_vanishing_depth {
            return Err(SpnError::VanishingLoop {
                marking: format!("{m:?}"),
            });
        }
        let total_w: f64 = immediates.iter().map(|&(_, w)| w).sum();
        for (t, w) in immediates {
            let next = net.fire(t, &m);
            frontier.push((next, prob * w / total_w, depth + 1));
        }
    }
    // Merge duplicates. A BTreeMap keeps the merged order a pure function
    // of the markings themselves: for nets with immediate transitions this
    // order feeds state interning, so hash order here would leak into
    // every downstream index.
    let mut merged: std::collections::BTreeMap<Marking, f64> = std::collections::BTreeMap::new();
    for (m, p) in tangible {
        *merged.entry(m).or_insert(0.0) += p;
    }
    Ok(merged.into_iter().collect())
}

/// Explore the tangible reachability graph of `net`.
///
/// # Errors
/// * [`SpnError::StateSpaceExceeded`] when `opts.max_states` is hit.
/// * [`SpnError::VanishingLoop`] on unbounded immediate chains.
/// * [`SpnError::BadRate`] when a rate/weight function misbehaves.
pub fn explore(net: &Spn, opts: &ExploreOptions) -> Result<ReachabilityGraph, SpnError> {
    let mut index: HashMap<Marking, u32> = HashMap::new();
    let mut states: Vec<Marking> = Vec::new();
    let mut edges: Vec<Vec<Edge>> = Vec::new();
    let mut self_loops: Vec<Vec<(TransitionId, f64)>> = Vec::new();
    let mut queue: VecDeque<u32> = VecDeque::new();

    let mut intern = |m: Marking,
                      states: &mut Vec<Marking>,
                      edges: &mut Vec<Vec<Edge>>,
                      self_loops: &mut Vec<Vec<(TransitionId, f64)>>,
                      queue: &mut VecDeque<u32>|
     -> Result<u32, SpnError> {
        if let Some(&id) = index.get(&m) {
            return Ok(id);
        }
        if states.len() >= opts.max_states {
            return Err(SpnError::StateSpaceExceeded {
                cap: opts.max_states,
            });
        }
        let id = states.len() as u32;
        index.insert(m.clone(), id);
        states.push(m);
        edges.push(Vec::new());
        self_loops.push(Vec::new());
        queue.push_back(id);
        Ok(id)
    };

    // Under lumping, only canonical orbit representatives are interned; the
    // walk then explores the quotient chain directly.
    let canon = |m: Marking| -> Marking {
        match &opts.lumping {
            Some(c) => c.canonicalize(&m),
            None => m,
        }
    };

    // The initial marking may itself be vanishing. Distinct tangible
    // resolutions can share an orbit, so probabilities are re-merged after
    // canonicalization.
    let initial = resolve_to_tangible(net, net.initial_marking(), opts)?;
    let mut initial_mass: HashMap<u32, f64> = HashMap::new();
    let mut initial_order: Vec<u32> = Vec::with_capacity(initial.len());
    for (m, p) in initial {
        let id = intern(
            canon(m),
            &mut states,
            &mut edges,
            &mut self_loops,
            &mut queue,
        )?;
        if !initial_mass.contains_key(&id) {
            initial_order.push(id);
        }
        *initial_mass.entry(id).or_insert(0.0) += p;
    }
    let initial_distribution: Vec<(u32, f64)> = initial_order
        .into_iter()
        .map(|id| (id, initial_mass[&id]))
        .collect();

    while let Some(sid) = queue.pop_front() {
        let marking = states[sid as usize].clone();
        let timed = net.enabled_timed(&marking)?;
        for (t, rate) in timed {
            let fired = net.fire(t, &marking);
            if fired == marking {
                // Cost-only self-loop: keep the rate for reward accounting.
                self_loops[sid as usize].push((t, rate));
                continue;
            }
            for (succ, prob) in resolve_to_tangible(net, fired, opts)? {
                // `marking` is already canonical, so comparing the
                // canonicalized successor against it also catches moves that
                // stay inside the state's own orbit.
                let succ = canon(succ);
                if succ == marking {
                    self_loops[sid as usize].push((t, rate * prob));
                    continue;
                }
                let tid = intern(succ, &mut states, &mut edges, &mut self_loops, &mut queue)?;
                edges[sid as usize].push(Edge {
                    target: tid,
                    rate: rate * prob,
                    transition: t,
                });
            }
        }
    }

    // Merge parallel edges with the same (target, transition).
    for elist in &mut edges {
        elist.sort_by_key(|e| (e.target, e.transition));
        let mut merged: Vec<Edge> = Vec::with_capacity(elist.len());
        for e in elist.drain(..) {
            match merged.last_mut() {
                Some(last) if last.target == e.target && last.transition == e.transition => {
                    last.rate += e.rate;
                }
                _ => merged.push(e),
            }
        }
        *elist = merged;
    }

    let absorbing = states
        .iter()
        .enumerate()
        .map(|(i, m)| net.is_absorbing_marking(m) || edges[i].is_empty())
        .collect();

    Ok(ReachabilityGraph {
        states,
        edges,
        self_loop_rates: self_loops,
        initial_distribution,
        absorbing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SpnBuilder, TransitionDef};

    /// Pure-death chain: N tokens drain one by one.
    fn death_chain(n: u32) -> Spn {
        let mut b = SpnBuilder::new();
        let up = b.add_place("up", n);
        b.add_transition(TransitionDef::timed("die", move |m| m.tokens(up) as f64).input(up, 1));
        b.build().unwrap()
    }

    #[test]
    fn death_chain_states_and_edges() {
        let net = death_chain(4);
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        assert_eq!(g.state_count(), 5); // 4,3,2,1,0 tokens
        assert_eq!(g.edge_count(), 4);
        // exactly one absorbing state: zero tokens
        let abs: Vec<usize> = g.absorbing_states().collect();
        assert_eq!(abs.len(), 1);
        assert_eq!(g.states[abs[0]].total_tokens(), 0);
        // rates decrease along the chain
        assert_eq!(g.exit_rate(0), 4.0);
    }

    #[test]
    fn initial_distribution_is_point_mass_for_tangible_start() {
        let net = death_chain(2);
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        assert_eq!(g.initial_distribution, vec![(0, 1.0)]);
    }

    #[test]
    fn state_cap_enforced() {
        let net = death_chain(100);
        let opts = ExploreOptions {
            max_states: 10,
            ..Default::default()
        };
        assert!(matches!(
            explore(&net, &opts),
            Err(SpnError::StateSpaceExceeded { cap: 10 })
        ));
    }

    #[test]
    fn birth_death_is_finite_with_inhibitor() {
        // M/M/1/K queue: arrivals inhibited at K
        let mut b = SpnBuilder::new();
        let q = b.add_place("q", 0);
        let k = 5;
        b.add_transition(
            TransitionDef::timed_const("arrive", 2.0)
                .output(q, 1)
                .inhibitor(q, k),
        );
        b.add_transition(TransitionDef::timed_const("serve", 3.0).input(q, 1));
        let net = b.build().unwrap();
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        assert_eq!(g.state_count(), k as usize + 1);
        assert!(g.absorbing_states().next().is_none());
    }

    #[test]
    fn vanishing_marking_resolved_by_weights() {
        // timed "go" leads to a vanishing marking resolved by two immediates
        // with weights 1:3 into distinct tangible states.
        let mut b = SpnBuilder::new();
        let start = b.add_place("start", 1);
        let mid = b.add_place("mid", 0);
        let left = b.add_place("left", 0);
        let right = b.add_place("right", 0);
        b.add_transition(
            TransitionDef::timed_const("go", 2.0)
                .input(start, 1)
                .output(mid, 1),
        );
        b.add_transition(
            TransitionDef::immediate_weighted("l", |_| 1.0, 0)
                .input(mid, 1)
                .output(left, 1),
        );
        b.add_transition(
            TransitionDef::immediate_weighted("r", |_| 3.0, 0)
                .input(mid, 1)
                .output(right, 1),
        );
        let net = b.build().unwrap();
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        // states: start, left, right — mid is vanishing and eliminated
        assert_eq!(g.state_count(), 3);
        let e = &g.edges[0];
        assert_eq!(e.len(), 2);
        let total: f64 = e.iter().map(|e| e.rate).sum();
        assert!((total - 2.0).abs() < 1e-12);
        let mut rates: Vec<f64> = e.iter().map(|e| e.rate).collect();
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((rates[0] - 0.5).abs() < 1e-12);
        assert!((rates[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn vanishing_chain_resolved() {
        // two immediates in sequence
        let mut b = SpnBuilder::new();
        let s = b.add_place("s", 1);
        let v1 = b.add_place("v1", 0);
        let v2 = b.add_place("v2", 0);
        let end = b.add_place("end", 0);
        b.add_transition(
            TransitionDef::timed_const("go", 1.0)
                .input(s, 1)
                .output(v1, 1),
        );
        b.add_transition(TransitionDef::immediate("i1").input(v1, 1).output(v2, 1));
        b.add_transition(TransitionDef::immediate("i2").input(v2, 1).output(end, 1));
        let net = b.build().unwrap();
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        assert_eq!(g.state_count(), 2);
        assert_eq!(g.edges[0].len(), 1);
        assert!((g.edges[0][0].rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vanishing_loop_detected() {
        // immediate ping-pong loop
        let mut b = SpnBuilder::new();
        let s = b.add_place("s", 1);
        let a = b.add_place("a", 0);
        let c = b.add_place("c", 0);
        b.add_transition(
            TransitionDef::timed_const("go", 1.0)
                .input(s, 1)
                .output(a, 1),
        );
        b.add_transition(TransitionDef::immediate("ab").input(a, 1).output(c, 1));
        b.add_transition(TransitionDef::immediate("ba").input(c, 1).output(a, 1));
        let net = b.build().unwrap();
        assert!(matches!(
            explore(&net, &ExploreOptions::default()),
            Err(SpnError::VanishingLoop { .. })
        ));
    }

    #[test]
    fn vanishing_initial_marking_splits_distribution() {
        let mut b = SpnBuilder::new();
        let v = b.add_place("v", 1);
        let x = b.add_place("x", 0);
        let y = b.add_place("y", 0);
        b.add_transition(
            TransitionDef::immediate_weighted("ix", |_| 1.0, 0)
                .input(v, 1)
                .output(x, 1),
        );
        b.add_transition(
            TransitionDef::immediate_weighted("iy", |_| 1.0, 0)
                .input(v, 1)
                .output(y, 1),
        );
        let net = b.build().unwrap();
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        assert_eq!(g.initial_distribution.len(), 2);
        let total: f64 = g.initial_distribution.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_loop_rates_recorded_not_edged() {
        // cost-only transition: fires but leaves the marking unchanged via
        // an effect that cancels the arc arithmetic.
        let mut b = SpnBuilder::new();
        let a = b.add_place("a", 1);
        b.add_transition(TransitionDef::timed_const("noop", 7.0)); // no arcs at all
        b.add_transition(TransitionDef::timed_const("drain", 1.0).input(a, 1));
        let net = b.build().unwrap();
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        assert_eq!(g.state_count(), 2);
        // state 0 has a self loop of rate 7 plus a real edge
        assert_eq!(g.edges[0].len(), 1);
        assert_eq!(g.self_loop_rates[0].len(), 1);
        assert_eq!(g.self_loop_rates[0][0].1, 7.0);
        // terminal state keeps self-looping on "noop": no outgoing CTMC
        // edges, so for CTMC purposes it is absorbing.
        assert_eq!(g.edges[1].len(), 0);
        assert!(g.absorbing[1]);
    }

    #[test]
    fn global_absorbing_predicate_marks_states() {
        let mut b = SpnBuilder::new();
        let up = b.add_place("up", 3);
        let down = b.add_place("down", 0);
        b.add_transition(
            TransitionDef::timed_const("fail", 1.0)
                .input(up, 1)
                .output(down, 1),
        );
        b.absorbing_when(move |m| m.tokens(down) >= 2);
        let net = b.build().unwrap();
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        // states: (3,0) (2,1) (1,2 absorbing) — exploration stops there
        assert_eq!(g.state_count(), 3);
        let abs: Vec<usize> = g.absorbing_states().collect();
        assert_eq!(abs.len(), 1);
        assert_eq!(g.states[abs[0]].tokens(down), 2);
    }

    /// Death chain with a tunable rate constant (structure fixed).
    fn scaled_death_chain(n: u32, k: f64) -> Spn {
        let mut b = SpnBuilder::new();
        let up = b.add_place("up", n);
        b.add_transition(
            TransitionDef::timed("die", move |m| k * m.tokens(up) as f64).input(up, 1),
        );
        b.build().unwrap()
    }

    #[test]
    fn reweight_matches_fresh_exploration() {
        let base = explore(&scaled_death_chain(5, 1.0), &ExploreOptions::default()).unwrap();
        let hot = scaled_death_chain(5, 3.5);
        let rg = base.reweighted(&hot).unwrap();
        let fresh = explore(&hot, &ExploreOptions::default()).unwrap();
        assert_eq!(rg.state_count(), fresh.state_count());
        for (a, b) in rg.edges.iter().zip(&fresh.edges) {
            assert_eq!(a.len(), b.len());
            for (ea, eb) in a.iter().zip(b) {
                assert_eq!(ea.target, eb.target);
                assert!(
                    (ea.rate - eb.rate).abs() < 1e-12,
                    "{} vs {}",
                    ea.rate,
                    eb.rate
                );
            }
        }
        assert_eq!(rg.absorbing, fresh.absorbing);
    }

    #[test]
    fn reweight_preserves_vanishing_probability_split() {
        // timed "go" into a vanishing marking split 1:3; rate-only change
        // rescales both edges while keeping the 1:3 split.
        let build = |rate: f64| {
            let mut b = SpnBuilder::new();
            let start = b.add_place("start", 1);
            let mid = b.add_place("mid", 0);
            let left = b.add_place("left", 0);
            let right = b.add_place("right", 0);
            b.add_transition(
                TransitionDef::timed_const("go", rate)
                    .input(start, 1)
                    .output(mid, 1),
            );
            b.add_transition(
                TransitionDef::immediate_weighted("l", |_| 1.0, 0)
                    .input(mid, 1)
                    .output(left, 1),
            );
            b.add_transition(
                TransitionDef::immediate_weighted("r", |_| 3.0, 0)
                    .input(mid, 1)
                    .output(right, 1),
            );
            b.build().unwrap()
        };
        let base = explore(&build(2.0), &ExploreOptions::default()).unwrap();
        let rg = base.reweighted(&build(8.0)).unwrap();
        let mut rates: Vec<f64> = rg.edges[0].iter().map(|e| e.rate).collect();
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((rates[0] - 2.0).abs() < 1e-12);
        assert!((rates[1] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn reweight_rescales_self_loops() {
        let build = |noop_rate: f64| {
            let mut b = SpnBuilder::new();
            let a = b.add_place("a", 1);
            b.add_transition(TransitionDef::timed_const("noop", noop_rate));
            b.add_transition(TransitionDef::timed_const("drain", 1.0).input(a, 1));
            b.build().unwrap()
        };
        let base = explore(&build(7.0), &ExploreOptions::default()).unwrap();
        let rg = base.reweighted(&build(21.0)).unwrap();
        assert_eq!(rg.self_loop_rates[0][0].1, 21.0);
    }

    #[test]
    fn reweight_without_vanishing_split_is_bit_exact() {
        // An edge holding its transition's whole mass must take the new
        // rate verbatim. The old `rate * (new / old)` double-rounds: for
        // this rate pair x * (y / x) != y in f64, so scaling would leave
        // the re-weighted graph one ULP off a fresh exploration — visible
        // as non-bit-identical template-cache replays downstream.
        let (old_r, new_r) = (6.519413797500402_f64, 7.889346277843776_f64);
        assert_ne!(old_r * (new_r / old_r), new_r, "pair no longer witnesses");
        let build = |rate: f64| {
            let mut b = SpnBuilder::new();
            let up = b.add_place("up", 2);
            b.add_transition(TransitionDef::timed_const("die", rate).input(up, 1));
            b.build().unwrap()
        };
        let reweighted = explore(&build(old_r), &ExploreOptions::default())
            .unwrap()
            .reweighted(&build(new_r))
            .unwrap();
        let fresh = explore(&build(new_r), &ExploreOptions::default()).unwrap();
        for (a, b) in reweighted
            .edges
            .iter()
            .flatten()
            .zip(fresh.edges.iter().flatten())
        {
            assert_eq!(a.rate.to_bits(), b.rate.to_bits());
            assert_eq!(a.rate, new_r);
        }
    }

    #[test]
    fn reweight_rejects_structural_change() {
        // A guard flips from blocking to enabling a transition: the explored
        // graph has no mass for it, so re-weighting must refuse.
        let build = |enabled: bool| {
            let mut b = SpnBuilder::new();
            let a = b.add_place("a", 2);
            b.add_transition(TransitionDef::timed_const("drain", 1.0).input(a, 1));
            b.add_transition(
                TransitionDef::timed_const("dump", 1.0)
                    .input(a, 2)
                    .guard(move |_| enabled),
            );
            b.build().unwrap()
        };
        let base = explore(&build(false), &ExploreOptions::default()).unwrap();
        assert!(matches!(
            base.reweighted(&build(true)),
            Err(SpnError::InvalidModel(_))
        ));
    }

    #[test]
    fn reweight_to_zero_rate_makes_state_absorbing() {
        let base = explore(&scaled_death_chain(3, 1.0), &ExploreOptions::default()).unwrap();
        let dead = {
            let mut b = SpnBuilder::new();
            let up = b.add_place("up", 3);
            b.add_transition(TransitionDef::timed("die", move |_| 0.0).input(up, 1));
            b.build().unwrap()
        };
        let rg = base.reweighted(&dead).unwrap();
        assert!(rg.absorbing.iter().all(|&a| a));
    }

    #[test]
    fn repeated_reweight_through_zero_stays_finite() {
        // Zero a rate, re-weight again while still zero: no 0/0 → NaN, and
        // reviving the zeroed transition is rejected as structural.
        let base = explore(&scaled_death_chain(3, 1.0), &ExploreOptions::default()).unwrap();
        let dead = {
            let mut b = SpnBuilder::new();
            let up = b.add_place("up", 3);
            b.add_transition(TransitionDef::timed("die", move |_| 0.0).input(up, 1));
            b.build().unwrap()
        };
        let mut g = base.reweighted(&dead).unwrap();
        g.reweight_in_place(&dead).unwrap();
        for e in g.edges.iter().flatten() {
            assert!(e.rate == 0.0, "expected zero, got {}", e.rate);
        }
        assert!(matches!(
            g.reweighted(&scaled_death_chain(3, 1.0)),
            Err(SpnError::InvalidModel(_))
        ));
    }

    #[test]
    fn parallel_edges_same_transition_merge() {
        // Two tokens in one place, transition moves one: firing from (2)
        // always lands in (1); ensure single merged edge.
        let net = death_chain(2);
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        for e in &g.edges {
            let mut seen = std::collections::HashSet::new();
            for edge in e {
                assert!(seen.insert((edge.target, edge.transition)));
            }
        }
    }

    /// `copies` independent, identical death chains of `n` tokens each,
    /// absorbing when every chain has drained. Fully symmetric under chain
    /// permutation, so lumping over one orbit of all chains is exact.
    fn parallel_death_chains(copies: usize, n: u32) -> (Spn, Vec<Vec<PlaceId>>) {
        let mut b = SpnBuilder::new();
        let mut blocks = Vec::with_capacity(copies);
        let mut places = Vec::with_capacity(copies);
        for i in 0..copies {
            let up = b.add_place(format!("up{i}"), n);
            places.push(up);
            blocks.push(vec![up]);
            b.add_transition(
                TransitionDef::timed(format!("die{i}"), move |m: &Marking| m.tokens(up) as f64)
                    .input(up, 1),
            );
        }
        b.absorbing_when(move |m| places.iter().all(|&p| m.tokens(p) == 0));
        (b.build().unwrap(), blocks)
    }

    #[test]
    fn canonicalizer_sorts_member_tuples_and_is_idempotent() {
        let (_, blocks) = parallel_death_chains(3, 4);
        let c = MarkingCanonicalizer::new(vec![blocks]).unwrap();
        let m = Marking::new(vec![4, 0, 2]);
        let canon = c.canonicalize(&m);
        assert_eq!(canon.as_slice(), &[0, 2, 4]);
        assert_eq!(c.canonicalize(&canon), canon);
        assert!(!c.is_trivial());
        assert_eq!(c.orbit_count(), 1);
        assert_eq!(c.member_count(), 3);
    }

    #[test]
    fn canonicalizer_rejects_ragged_and_overlapping_orbits() {
        let mut b = SpnBuilder::new();
        let p = b.add_place("p", 1);
        let q = b.add_place("q", 1);
        let r = b.add_place("r", 1);
        b.add_transition(TransitionDef::timed_const("t", 1.0).input(p, 1));
        let _ = b.build().unwrap();
        assert!(matches!(
            MarkingCanonicalizer::new(vec![vec![vec![p, q], vec![r]]]),
            Err(SpnError::InvalidModel(_))
        ));
        assert!(matches!(
            MarkingCanonicalizer::new(vec![vec![vec![p], vec![q]], vec![vec![q], vec![r]]]),
            Err(SpnError::InvalidModel(_))
        ));
    }

    #[test]
    fn lumped_exploration_shrinks_states_and_preserves_mtta() {
        // Two iid chains of 3: unlumped (a, b) pairs = 16 states, lumped
        // multisets {a, b} = 10. MTTA must agree exactly (strong
        // lumpability of the permutation symmetry).
        let (net, blocks) = parallel_death_chains(2, 3);
        let unlumped = explore(&net, &ExploreOptions::default()).unwrap();
        let opts = ExploreOptions {
            lumping: Some(MarkingCanonicalizer::new(vec![blocks]).unwrap()),
            ..Default::default()
        };
        let lumped = explore(&net, &opts).unwrap();
        assert_eq!(unlumped.state_count(), 16);
        assert_eq!(lumped.state_count(), 10);
        assert!(lumped.edge_count() < unlumped.edge_count());
        let mtta_full = crate::ctmc::Ctmc::from_graph(&unlumped)
            .unwrap()
            .mean_time_to_absorption()
            .unwrap()
            .mtta;
        let mtta_lumped = crate::ctmc::Ctmc::from_graph(&lumped)
            .unwrap()
            .mean_time_to_absorption()
            .unwrap()
            .mtta;
        assert!(
            (mtta_full - mtta_lumped).abs() <= 1e-9 * mtta_full,
            "lumped {mtta_lumped} vs full {mtta_full}"
        );
    }

    #[test]
    fn lumped_graph_reweights_in_place() {
        // Rate-only changes re-weight on the lumped quotient exactly as on
        // the full graph: representatives see the same rate functions.
        let (net, blocks) = parallel_death_chains(2, 3);
        let canon = MarkingCanonicalizer::new(vec![blocks]).unwrap();
        let opts = ExploreOptions {
            lumping: Some(canon),
            ..Default::default()
        };
        let lumped = explore(&net, &opts).unwrap();

        // same structure, half the rate
        let slow = {
            let mut b = SpnBuilder::new();
            let mut places = Vec::new();
            for i in 0..2usize {
                let up = b.add_place(format!("up{i}"), 3);
                places.push(up);
                b.add_transition(
                    TransitionDef::timed(format!("die{i}"), move |m: &Marking| {
                        0.5 * m.tokens(up) as f64
                    })
                    .input(up, 1),
                );
            }
            b.absorbing_when(move |m| places.iter().all(|&p| m.tokens(p) == 0));
            b.build().unwrap()
        };
        let rg = lumped.reweighted(&slow).unwrap();
        let mtta_fast = crate::ctmc::Ctmc::from_graph(&lumped)
            .unwrap()
            .mean_time_to_absorption()
            .unwrap()
            .mtta;
        let mtta_slow = crate::ctmc::Ctmc::from_graph(&rg)
            .unwrap()
            .mean_time_to_absorption()
            .unwrap()
            .mtta;
        assert!((mtta_slow - 2.0 * mtta_fast).abs() <= 1e-9 * mtta_slow);
    }

    #[test]
    fn trivial_canonicalizer_changes_nothing() {
        let (net, blocks) = parallel_death_chains(2, 2);
        let plain = explore(&net, &ExploreOptions::default()).unwrap();
        // one orbit per chain — no two members interchangeable
        let orbits: Vec<Vec<Vec<PlaceId>>> = blocks.into_iter().map(|blk| vec![blk]).collect();
        let canon = MarkingCanonicalizer::new(orbits).unwrap();
        assert!(canon.is_trivial());
        let opts = ExploreOptions {
            lumping: Some(canon),
            ..Default::default()
        };
        let lumped = explore(&net, &opts).unwrap();
        assert_eq!(lumped.state_count(), plain.state_count());
        assert_eq!(lumped.edge_count(), plain.edge_count());
    }
}
