//! A stochastic Petri net (SPN) engine.
//!
//! This crate reimplements, from scratch, the modelling machinery the paper
//! used (an SPNP-style tool): extended stochastic Petri nets with
//! marking-dependent exponential rates, guards, inhibitor arcs, immediate
//! transitions, and general marking-transform effects; reachability-graph
//! generation with vanishing-marking elimination; extraction of the
//! underlying continuous-time Markov chain (CTMC); and the solvers needed by
//! the evaluation:
//!
//! * **mean time to absorption** (the paper's MTTSF) via the sparse linear
//!   system over expected sojourn times,
//! * **expected accumulated reward until absorption** (the paper's Ĉtotal
//!   numerator) for arbitrary rate rewards,
//! * **transient analysis** by uniformization (Jensen's method) with
//!   Fox–Glynn Poisson weights,
//! * **steady-state analysis** for ergodic nets, and
//! * a **Monte-Carlo token-game simulator** with parallel replications for
//!   cross-validation of the analytic results, and
//! * **structural analysis** (incidence matrix, Farkas P/T-invariants) for
//!   state-space-free conservation and boundedness arguments.
//!
//! # Example
//!
//! A two-place net where tokens drain from `up` to `down` (an absorbing
//! failure state) at a marking-dependent rate:
//!
//! ```
//! use spn::model::{SpnBuilder, TransitionDef};
//!
//! let mut b = SpnBuilder::new();
//! let up = b.add_place("up", 3);
//! let down = b.add_place("down", 0);
//! b.add_transition(
//!     TransitionDef::timed("fail", move |m| 0.1 * m.tokens(up) as f64)
//!         .input(up, 1)
//!         .output(down, 1),
//! );
//! let net = b.build().unwrap();
//! let graph = spn::reach::explore(&net, &Default::default()).unwrap();
//! let ctmc = spn::ctmc::Ctmc::from_graph(&graph).unwrap();
//! // All states eventually reach the empty-`up` marking.
//! let mtta = ctmc.mean_time_to_absorption().unwrap();
//! // Expected time = 1/0.3 + 1/0.2 + 1/0.1 (sum of stage means)
//! assert!((mtta.mtta - (1.0/0.3 + 1.0/0.2 + 1.0/0.1)).abs() < 1e-9);
//! ```

pub mod ctmc;
pub mod dot;
pub mod error;
pub mod model;
pub mod reach;
pub mod reward;
pub mod sim;
pub mod structural;
pub mod transient;

pub use ctmc::{AbsorptionAnalysis, Ctmc, TransientOptions};
pub use error::SpnError;
pub use model::{Marking, PlaceId, Spn, SpnBuilder, TransitionDef, TransitionId};
pub use reach::{explore, ExploreOptions, ReachabilityGraph};
pub use reward::{ImpulseReward, RateReward, RewardSet};
pub use sim::{ReplicationStats, SimOptions, SimOutcome, Simulator};
pub use structural::{analyze as structural_analyze, StructuralReport};
pub use transient::{TransientEngine, TransientStats};
