//! Net structure: places, markings, transitions, arcs, guards and effects.
//!
//! The transition vocabulary follows extended SPNs à la SPNP:
//!
//! * **timed** transitions fire after an exponentially distributed delay
//!   whose rate may depend on the whole marking (`Fn(&Marking) -> f64`);
//! * **immediate** transitions fire in zero time, resolved by priority then
//!   probabilistic weight;
//! * arcs carry multiplicities; **inhibitor** arcs disable a transition when
//!   a place holds at least the arc's multiplicity;
//! * optional **guards** (enabling functions) veto firing;
//! * optional **effects** apply an arbitrary marking transformation after
//!   the arc arithmetic — this is what lets the GCS model implement
//!   "adjust member counts on group partition" style updates that plain
//!   arcs cannot express.

use crate::error::SpnError;
use std::fmt;
use std::sync::Arc;

/// Identifier of a place (index into the net's place table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) u32);

/// Identifier of a transition (index into the net's transition table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionId(pub(crate) u32);

impl PlaceId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TransitionId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A token assignment to every place.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Marking(Box<[u32]>);

impl Marking {
    /// Build from a raw token vector.
    pub fn new(tokens: Vec<u32>) -> Self {
        Self(tokens.into_boxed_slice())
    }

    /// Tokens currently in `place`.
    pub fn tokens(&self, place: PlaceId) -> u32 {
        self.0[place.0 as usize]
    }

    /// Set the token count of `place`.
    pub fn set_tokens(&mut self, place: PlaceId, tokens: u32) {
        self.0[place.0 as usize] = tokens;
    }

    /// Add tokens to `place`.
    pub fn add_tokens(&mut self, place: PlaceId, n: u32) {
        self.0[place.0 as usize] += n;
    }

    /// Remove tokens from `place`.
    ///
    /// # Panics
    /// Panics if fewer than `n` tokens are present (the engine checks
    /// enabledness before firing, so this indicates a model bug).
    pub fn remove_tokens(&mut self, place: PlaceId, n: u32) {
        let cur = self.0[place.0 as usize];
        assert!(cur >= n, "removing {n} tokens from place holding {cur}");
        self.0[place.0 as usize] = cur - n;
    }

    /// Total token count across all places.
    pub fn total_tokens(&self) -> u64 {
        self.0.iter().map(|&t| t as u64).sum()
    }

    /// Raw view.
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }
}

impl fmt::Debug for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Marking{:?}", &self.0)
    }
}

/// Marking-dependent scalar function (rates, weights).
pub type MarkingFn = Arc<dyn Fn(&Marking) -> f64 + Send + Sync>;
/// Marking predicate (guards, absorbing condition).
pub type GuardFn = Arc<dyn Fn(&Marking) -> bool + Send + Sync>;
/// In-place marking transformation applied after arc arithmetic.
pub type EffectFn = Arc<dyn Fn(&mut Marking) + Send + Sync>;

/// Firing semantics of a transition.
#[derive(Clone)]
pub enum TransitionKind {
    /// Exponential delay with marking-dependent rate.
    Timed {
        /// Rate function; must return a finite, non-negative value. A zero
        /// rate disables the transition in that marking.
        rate: MarkingFn,
    },
    /// Zero-delay transition resolved by priority, then weight.
    Immediate {
        /// Relative weight among same-priority enabled immediates.
        weight: MarkingFn,
        /// Higher priority fires first.
        priority: u8,
    },
}

impl fmt::Debug for TransitionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransitionKind::Timed { .. } => write!(f, "Timed"),
            TransitionKind::Immediate { priority, .. } => {
                write!(f, "Immediate(priority={priority})")
            }
        }
    }
}

/// Declarative description of one transition, built fluently and passed to
/// [`SpnBuilder::add_transition`].
pub struct TransitionDef {
    pub(crate) name: String,
    pub(crate) kind: TransitionKind,
    pub(crate) inputs: Vec<(PlaceId, u32)>,
    pub(crate) outputs: Vec<(PlaceId, u32)>,
    pub(crate) inhibitors: Vec<(PlaceId, u32)>,
    pub(crate) guard: Option<GuardFn>,
    pub(crate) effect: Option<EffectFn>,
}

impl TransitionDef {
    /// A timed transition with the given marking-dependent rate.
    pub fn timed(
        name: impl Into<String>,
        rate: impl Fn(&Marking) -> f64 + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            kind: TransitionKind::Timed {
                rate: Arc::new(rate),
            },
            inputs: Vec::new(),
            outputs: Vec::new(),
            inhibitors: Vec::new(),
            guard: None,
            effect: None,
        }
    }

    /// A timed transition with a constant rate.
    pub fn timed_const(name: impl Into<String>, rate: f64) -> Self {
        Self::timed(name, move |_| rate)
    }

    /// An immediate transition with constant weight 1 and priority 0.
    pub fn immediate(name: impl Into<String>) -> Self {
        Self::immediate_weighted(name, |_| 1.0, 0)
    }

    /// An immediate transition with marking-dependent weight and a priority
    /// level (higher fires first).
    pub fn immediate_weighted(
        name: impl Into<String>,
        weight: impl Fn(&Marking) -> f64 + Send + Sync + 'static,
        priority: u8,
    ) -> Self {
        Self {
            name: name.into(),
            kind: TransitionKind::Immediate {
                weight: Arc::new(weight),
                priority,
            },
            inputs: Vec::new(),
            outputs: Vec::new(),
            inhibitors: Vec::new(),
            guard: None,
            effect: None,
        }
    }

    /// Add an input arc of the given multiplicity.
    pub fn input(mut self, place: PlaceId, multiplicity: u32) -> Self {
        self.inputs.push((place, multiplicity));
        self
    }

    /// Add an output arc of the given multiplicity.
    pub fn output(mut self, place: PlaceId, multiplicity: u32) -> Self {
        self.outputs.push((place, multiplicity));
        self
    }

    /// Add an inhibitor arc: the transition is disabled while `place` holds
    /// at least `threshold` tokens.
    pub fn inhibitor(mut self, place: PlaceId, threshold: u32) -> Self {
        self.inhibitors.push((place, threshold));
        self
    }

    /// Attach an enabling guard.
    pub fn guard(mut self, g: impl Fn(&Marking) -> bool + Send + Sync + 'static) -> Self {
        self.guard = Some(Arc::new(g));
        self
    }

    /// Attach a post-firing marking transformation.
    pub fn effect(mut self, e: impl Fn(&mut Marking) + Send + Sync + 'static) -> Self {
        self.effect = Some(Arc::new(e));
        self
    }
}

pub(crate) struct Transition {
    pub(crate) name: String,
    pub(crate) kind: TransitionKind,
    pub(crate) inputs: Vec<(PlaceId, u32)>,
    pub(crate) outputs: Vec<(PlaceId, u32)>,
    pub(crate) inhibitors: Vec<(PlaceId, u32)>,
    pub(crate) guard: Option<GuardFn>,
    pub(crate) effect: Option<EffectFn>,
}

/// Incrementally assembles an [`Spn`].
#[derive(Default)]
pub struct SpnBuilder {
    place_names: Vec<String>,
    initial: Vec<u32>,
    transitions: Vec<Transition>,
    absorbing: Option<GuardFn>,
}

impl SpnBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a place with its initial token count; returns its id.
    pub fn add_place(&mut self, name: impl Into<String>, initial_tokens: u32) -> PlaceId {
        self.place_names.push(name.into());
        self.initial.push(initial_tokens);
        PlaceId(self.place_names.len() as u32 - 1)
    }

    /// Add a transition described by `def`; returns its id.
    pub fn add_transition(&mut self, def: TransitionDef) -> TransitionId {
        self.transitions.push(Transition {
            name: def.name,
            kind: def.kind,
            inputs: def.inputs,
            outputs: def.outputs,
            inhibitors: def.inhibitors,
            guard: def.guard,
            effect: def.effect,
        });
        TransitionId(self.transitions.len() as u32 - 1)
    }

    /// Declare a global absorbing condition: any marking satisfying the
    /// predicate disables **all** transitions (the paper's C1/C2 failure
    /// conditions are expressed this way).
    pub fn absorbing_when(&mut self, p: impl Fn(&Marking) -> bool + Send + Sync + 'static) {
        self.absorbing = Some(Arc::new(p));
    }

    /// Validate and freeze the net.
    ///
    /// # Errors
    /// Returns [`SpnError::InvalidModel`] for duplicate place/transition
    /// names, nets without places, or arcs pointing at unknown places.
    pub fn build(self) -> Result<Spn, SpnError> {
        if self.place_names.is_empty() {
            return Err(SpnError::InvalidModel("net has no places".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for n in &self.place_names {
            if !seen.insert(n.as_str()) {
                return Err(SpnError::InvalidModel(format!("duplicate place name {n}")));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for t in &self.transitions {
            if !seen.insert(t.name.as_str()) {
                return Err(SpnError::InvalidModel(format!(
                    "duplicate transition name {}",
                    t.name
                )));
            }
            let np = self.place_names.len() as u32;
            for &(p, mult) in t.inputs.iter().chain(&t.outputs) {
                if p.0 >= np {
                    return Err(SpnError::InvalidModel(format!(
                        "transition {} references unknown place {:?}",
                        t.name, p
                    )));
                }
                if mult == 0 {
                    return Err(SpnError::InvalidModel(format!(
                        "transition {} has a zero-multiplicity arc",
                        t.name
                    )));
                }
            }
            for &(p, _) in &t.inhibitors {
                if p.0 >= np {
                    return Err(SpnError::InvalidModel(format!(
                        "transition {} inhibitor references unknown place {:?}",
                        t.name, p
                    )));
                }
            }
        }
        Ok(Spn {
            place_names: self.place_names,
            initial: Marking::new(self.initial),
            transitions: self.transitions,
            absorbing: self.absorbing,
        })
    }
}

/// An immutable stochastic Petri net.
pub struct Spn {
    place_names: Vec<String>,
    initial: Marking,
    transitions: Vec<Transition>,
    absorbing: Option<GuardFn>,
}

impl Spn {
    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.place_names.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Place name.
    pub fn place_name(&self, p: PlaceId) -> &str {
        &self.place_names[p.0 as usize]
    }

    /// Transition name.
    pub fn transition_name(&self, t: TransitionId) -> &str {
        &self.transitions[t.0 as usize].name
    }

    /// Crate-internal access to the full transition record.
    pub(crate) fn transition_ref(&self, t: TransitionId) -> &Transition {
        &self.transitions[t.0 as usize]
    }

    /// True when `t` carries a custom marking-transform effect.
    pub fn has_effect(&self, t: TransitionId) -> bool {
        self.transitions[t.0 as usize].effect.is_some()
    }

    /// Look up a place id by name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.place_names
            .iter()
            .position(|n| n == name)
            .map(|i| PlaceId(i as u32))
    }

    /// Look up a transition id by name.
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.transitions
            .iter()
            .position(|t| t.name == name)
            .map(|i| TransitionId(i as u32))
    }

    /// All transition ids.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransitionId> {
        (0..self.transitions.len() as u32).map(TransitionId)
    }

    /// The initial marking.
    pub fn initial_marking(&self) -> Marking {
        self.initial.clone()
    }

    /// True when the global absorbing predicate holds in `m`.
    pub fn is_absorbing_marking(&self, m: &Marking) -> bool {
        self.absorbing.as_ref().is_some_and(|p| p(m))
    }

    /// Structural + guard enabledness of `t` in `m` (ignores the global
    /// absorbing predicate — callers check that separately).
    pub fn is_enabled(&self, t: TransitionId, m: &Marking) -> bool {
        let tr = &self.transitions[t.0 as usize];
        for &(p, mult) in &tr.inputs {
            if m.tokens(p) < mult {
                return false;
            }
        }
        for &(p, thresh) in &tr.inhibitors {
            if m.tokens(p) >= thresh {
                return false;
            }
        }
        if let Some(g) = &tr.guard {
            if !g(m) {
                return false;
            }
        }
        true
    }

    /// Rate of timed transition `t` in `m`, or `None` for immediates.
    ///
    /// # Errors
    /// Returns [`SpnError::BadRate`] for negative/non-finite rates.
    pub fn rate(&self, t: TransitionId, m: &Marking) -> Result<Option<f64>, SpnError> {
        let tr = &self.transitions[t.0 as usize];
        match &tr.kind {
            TransitionKind::Timed { rate } => {
                let r = rate(m);
                if !r.is_finite() || r < 0.0 {
                    return Err(SpnError::BadRate {
                        transition: tr.name.clone(),
                        value: r,
                    });
                }
                Ok(Some(r))
            }
            TransitionKind::Immediate { .. } => Ok(None),
        }
    }

    /// Weight and priority of immediate transition `t` in `m`, or `None`
    /// for timed transitions.
    ///
    /// # Errors
    /// Returns [`SpnError::BadRate`] for negative/non-finite weights.
    pub fn immediate_weight(
        &self,
        t: TransitionId,
        m: &Marking,
    ) -> Result<Option<(f64, u8)>, SpnError> {
        let tr = &self.transitions[t.0 as usize];
        match &tr.kind {
            TransitionKind::Immediate { weight, priority } => {
                let w = weight(m);
                if !w.is_finite() || w < 0.0 {
                    return Err(SpnError::BadRate {
                        transition: tr.name.clone(),
                        value: w,
                    });
                }
                Ok(Some((w, *priority)))
            }
            TransitionKind::Timed { .. } => Ok(None),
        }
    }

    /// True when `t` is an immediate transition.
    pub fn is_immediate(&self, t: TransitionId) -> bool {
        matches!(
            self.transitions[t.0 as usize].kind,
            TransitionKind::Immediate { .. }
        )
    }

    /// Fire `t` in `m`, returning the successor marking.
    ///
    /// # Panics
    /// Panics when `t` is not enabled — call [`Spn::is_enabled`] first.
    pub fn fire(&self, t: TransitionId, m: &Marking) -> Marking {
        debug_assert!(self.is_enabled(t, m), "firing disabled transition");
        let tr = &self.transitions[t.0 as usize];
        let mut next = m.clone();
        for &(p, mult) in &tr.inputs {
            next.remove_tokens(p, mult);
        }
        for &(p, mult) in &tr.outputs {
            next.add_tokens(p, mult);
        }
        if let Some(e) = &tr.effect {
            e(&mut next);
        }
        next
    }

    /// Enabled timed transitions with their rates; rate-zero transitions are
    /// filtered out. Returns an empty vector for absorbing markings.
    ///
    /// # Errors
    /// Propagates [`SpnError::BadRate`].
    pub fn enabled_timed(&self, m: &Marking) -> Result<Vec<(TransitionId, f64)>, SpnError> {
        if self.is_absorbing_marking(m) {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        for t in self.transition_ids() {
            if !self.is_enabled(t, m) {
                continue;
            }
            if let Some(r) = self.rate(t, m)? {
                if r > 0.0 {
                    out.push((t, r));
                }
            }
        }
        Ok(out)
    }

    /// Enabled immediate transitions of the **highest enabled priority**
    /// with their weights; weight-zero transitions are filtered. Empty for
    /// absorbing markings.
    ///
    /// # Errors
    /// Propagates [`SpnError::BadRate`].
    pub fn enabled_immediate(&self, m: &Marking) -> Result<Vec<(TransitionId, f64)>, SpnError> {
        if self.is_absorbing_marking(m) {
            return Ok(Vec::new());
        }
        let mut best_priority = 0u8;
        let mut out: Vec<(TransitionId, f64, u8)> = Vec::new();
        for t in self.transition_ids() {
            if !self.is_enabled(t, m) {
                continue;
            }
            if let Some((w, pr)) = self.immediate_weight(t, m)? {
                if w > 0.0 {
                    best_priority = best_priority.max(pr);
                    out.push((t, w, pr));
                }
            }
        }
        Ok(out
            .into_iter()
            .filter(|&(_, _, pr)| pr == best_priority)
            .map(|(t, w, _)| (t, w))
            .collect())
    }
}

impl fmt::Debug for Spn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Spn")
            .field("places", &self.place_names)
            .field(
                "transitions",
                &self.transitions.iter().map(|t| &t.name).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_net() -> (Spn, PlaceId, PlaceId) {
        let mut b = SpnBuilder::new();
        let a = b.add_place("A", 2);
        let c = b.add_place("B", 0);
        b.add_transition(
            TransitionDef::timed_const("move", 1.5)
                .input(a, 1)
                .output(c, 1),
        );
        (b.build().unwrap(), a, c)
    }

    #[test]
    fn build_and_lookup() {
        let (net, a, c) = simple_net();
        assert_eq!(net.place_count(), 2);
        assert_eq!(net.transition_count(), 1);
        assert_eq!(net.place_name(a), "A");
        assert_eq!(net.place_by_name("B"), Some(c));
        assert_eq!(net.place_by_name("Z"), None);
        assert!(net.transition_by_name("move").is_some());
        assert!(net.transition_by_name("nope").is_none());
    }

    #[test]
    fn duplicate_place_names_rejected() {
        let mut b = SpnBuilder::new();
        b.add_place("X", 0);
        b.add_place("X", 0);
        assert!(matches!(b.build(), Err(SpnError::InvalidModel(_))));
    }

    #[test]
    fn duplicate_transition_names_rejected() {
        let mut b = SpnBuilder::new();
        let p = b.add_place("X", 0);
        b.add_transition(TransitionDef::timed_const("t", 1.0).output(p, 1));
        b.add_transition(TransitionDef::timed_const("t", 2.0).output(p, 1));
        assert!(matches!(b.build(), Err(SpnError::InvalidModel(_))));
    }

    #[test]
    fn zero_multiplicity_arc_rejected() {
        let mut b = SpnBuilder::new();
        let p = b.add_place("X", 0);
        b.add_transition(TransitionDef::timed_const("t", 1.0).input(p, 0));
        assert!(matches!(b.build(), Err(SpnError::InvalidModel(_))));
    }

    #[test]
    fn empty_net_rejected() {
        assert!(matches!(
            SpnBuilder::new().build(),
            Err(SpnError::InvalidModel(_))
        ));
    }

    #[test]
    fn enabledness_respects_tokens() {
        let (net, a, _) = simple_net();
        let t = net.transition_by_name("move").unwrap();
        let mut m = net.initial_marking();
        assert!(net.is_enabled(t, &m));
        m.set_tokens(a, 0);
        assert!(!net.is_enabled(t, &m));
    }

    #[test]
    fn firing_moves_tokens() {
        let (net, a, c) = simple_net();
        let t = net.transition_by_name("move").unwrap();
        let m = net.initial_marking();
        let m2 = net.fire(t, &m);
        assert_eq!(m2.tokens(a), 1);
        assert_eq!(m2.tokens(c), 1);
        assert_eq!(m2.total_tokens(), 2);
    }

    #[test]
    fn inhibitor_arc_disables() {
        let mut b = SpnBuilder::new();
        let a = b.add_place("A", 1);
        let block = b.add_place("Block", 1);
        b.add_transition(
            TransitionDef::timed_const("t", 1.0)
                .input(a, 1)
                .inhibitor(block, 1),
        );
        let net = b.build().unwrap();
        let t = net.transition_by_name("t").unwrap();
        let mut m = net.initial_marking();
        assert!(!net.is_enabled(t, &m));
        m.set_tokens(block, 0);
        assert!(net.is_enabled(t, &m));
    }

    #[test]
    fn guard_vetoes() {
        let mut b = SpnBuilder::new();
        let a = b.add_place("A", 5);
        b.add_transition(
            TransitionDef::timed_const("t", 1.0)
                .input(a, 1)
                .guard(move |m| m.tokens(a) > 3),
        );
        let net = b.build().unwrap();
        let t = net.transition_by_name("t").unwrap();
        let mut m = net.initial_marking();
        assert!(net.is_enabled(t, &m));
        m.set_tokens(a, 3);
        assert!(!net.is_enabled(t, &m));
    }

    #[test]
    fn effect_transforms_marking() {
        let mut b = SpnBuilder::new();
        let a = b.add_place("A", 8);
        let g = b.add_place("G", 1);
        // partition: doubles groups, halves A
        b.add_transition(TransitionDef::timed_const("split", 1.0).effect(move |m| {
            let cur = m.tokens(a);
            m.set_tokens(a, cur / 2);
            m.add_tokens(g, 1);
        }));
        let net = b.build().unwrap();
        let t = net.transition_by_name("split").unwrap();
        let m2 = net.fire(t, &net.initial_marking());
        assert_eq!(m2.tokens(a), 4);
        assert_eq!(m2.tokens(g), 2);
    }

    #[test]
    fn marking_dependent_rate() {
        let (net, a, _) = simple_net();
        let mut b = SpnBuilder::new();
        let a2 = b.add_place("A", 7);
        b.add_transition(
            TransitionDef::timed("drain", move |m| 0.5 * m.tokens(a2) as f64).input(a2, 1),
        );
        let net2 = b.build().unwrap();
        let t = net2.transition_by_name("drain").unwrap();
        let m = net2.initial_marking();
        assert_eq!(net2.rate(t, &m).unwrap(), Some(3.5));
        let _ = (net, a);
    }

    #[test]
    fn bad_rate_detected() {
        let mut b = SpnBuilder::new();
        let a = b.add_place("A", 1);
        b.add_transition(TransitionDef::timed("neg", |_| -2.0).input(a, 1));
        let net = b.build().unwrap();
        let t = net.transition_by_name("neg").unwrap();
        assert!(matches!(
            net.rate(t, &net.initial_marking()),
            Err(SpnError::BadRate { .. })
        ));
    }

    #[test]
    fn absorbing_marking_disables_everything() {
        let mut b = SpnBuilder::new();
        let a = b.add_place("A", 3);
        b.add_transition(TransitionDef::timed_const("t", 1.0).input(a, 1));
        b.absorbing_when(move |m| m.tokens(a) <= 1);
        let net = b.build().unwrap();
        let m = net.initial_marking();
        assert!(!net.is_absorbing_marking(&m));
        assert_eq!(net.enabled_timed(&m).unwrap().len(), 1);
        let mut m2 = m.clone();
        m2.set_tokens(a, 1);
        assert!(net.is_absorbing_marking(&m2));
        assert!(net.enabled_timed(&m2).unwrap().is_empty());
    }

    #[test]
    fn immediate_priority_filtering() {
        let mut b = SpnBuilder::new();
        let a = b.add_place("A", 1);
        b.add_transition(TransitionDef::immediate_weighted("lo", |_| 1.0, 0).input(a, 1));
        b.add_transition(TransitionDef::immediate_weighted("hi", |_| 3.0, 2).input(a, 1));
        b.add_transition(TransitionDef::immediate_weighted("hi2", |_| 1.0, 2).input(a, 1));
        let net = b.build().unwrap();
        let en = net.enabled_immediate(&net.initial_marking()).unwrap();
        let names: Vec<&str> = en.iter().map(|&(t, _)| net.transition_name(t)).collect();
        assert_eq!(names, vec!["hi", "hi2"]);
    }

    #[test]
    fn zero_rate_transition_filtered_from_enabled() {
        let mut b = SpnBuilder::new();
        let a = b.add_place("A", 1);
        b.add_transition(TransitionDef::timed_const("zero", 0.0).input(a, 1));
        b.add_transition(TransitionDef::timed_const("live", 2.0).input(a, 1));
        let net = b.build().unwrap();
        let en = net.enabled_timed(&net.initial_marking()).unwrap();
        assert_eq!(en.len(), 1);
        assert_eq!(net.transition_name(en[0].0), "live");
    }

    #[test]
    #[should_panic]
    fn remove_too_many_tokens_panics() {
        let mut m = Marking::new(vec![1]);
        m.remove_tokens(PlaceId(0), 2);
    }
}
