//! Reward structures over SPN markings.
//!
//! A Markov reward model attaches *rate rewards* (earned per unit time while
//! the chain sits in a state) and *impulse rewards* (earned on each firing
//! of a transition). The paper's metrics map directly:
//!
//! * MTTSF — rate reward 1 on every non-failed state, accumulated to
//!   absorption;
//! * Ĉtotal — the six cost components as rate rewards in hop·bits/s (plus
//!   impulse costs for per-event traffic such as rekey messages),
//!   accumulated to absorption and divided by MTTSF.

use crate::model::{Marking, Spn, TransitionId};
use crate::reach::ReachabilityGraph;
use std::sync::Arc;

/// A named marking-dependent rate reward.
#[derive(Clone)]
pub struct RateReward {
    /// Reward name (used in reports).
    pub name: String,
    /// Reward earned per unit time in a marking.
    pub rate: Arc<dyn Fn(&Marking) -> f64 + Send + Sync>,
}

impl RateReward {
    /// Create a rate reward.
    pub fn new(
        name: impl Into<String>,
        rate: impl Fn(&Marking) -> f64 + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            rate: Arc::new(rate),
        }
    }

    /// Evaluate on every state of a reachability graph, producing the dense
    /// per-state vector the CTMC solvers consume.
    pub fn per_state(&self, graph: &ReachabilityGraph) -> Vec<f64> {
        graph.states.iter().map(|m| (self.rate)(m)).collect()
    }
}

impl std::fmt::Debug for RateReward {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RateReward({})", self.name)
    }
}

/// A named impulse reward earned on each firing of a transition. The amount
/// may depend on the marking *before* the firing.
#[derive(Clone)]
pub struct ImpulseReward {
    /// Reward name.
    pub name: String,
    /// Transition that triggers the impulse.
    pub transition: TransitionId,
    /// Impulse amount as a function of the pre-firing marking.
    pub amount: Arc<dyn Fn(&Marking) -> f64 + Send + Sync>,
}

impl ImpulseReward {
    /// Create an impulse reward.
    pub fn new(
        name: impl Into<String>,
        transition: TransitionId,
        amount: impl Fn(&Marking) -> f64 + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            transition,
            amount: Arc::new(amount),
        }
    }

    /// Convert to an equivalent per-state rate-reward vector:
    /// in state `s` the impulse accrues at `rate(t, s) · amount(s)` per unit
    /// time, where `rate(t, s)` sums the CTMC edges (and recorded cost-only
    /// self-loops) of this transition out of `s`.
    pub fn per_state(&self, net: &Spn, graph: &ReachabilityGraph) -> Vec<f64> {
        let mut out = vec![0.0; graph.state_count()];
        for (s, m) in graph.states.iter().enumerate() {
            let mut rate = 0.0;
            for e in &graph.edges[s] {
                if e.transition == self.transition {
                    rate += e.rate;
                }
            }
            for &(t, r) in &graph.self_loop_rates[s] {
                if t == self.transition {
                    rate += r;
                }
            }
            if rate > 0.0 {
                out[s] = rate * (self.amount)(m);
            }
        }
        let _ = net;
        out
    }
}

impl std::fmt::Debug for ImpulseReward {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ImpulseReward({})", self.name)
    }
}

/// A bundle of rewards evaluated together.
#[derive(Debug, Clone, Default)]
pub struct RewardSet {
    /// Rate rewards.
    pub rates: Vec<RateReward>,
    /// Impulse rewards.
    pub impulses: Vec<ImpulseReward>,
}

impl RewardSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rate reward (builder style).
    pub fn with_rate(mut self, r: RateReward) -> Self {
        self.rates.push(r);
        self
    }

    /// Add an impulse reward (builder style).
    pub fn with_impulse(mut self, i: ImpulseReward) -> Self {
        self.impulses.push(i);
        self
    }

    /// Evaluate the *total* per-state reward rate (rate rewards plus
    /// impulse-equivalent rates) for accumulated-reward analysis.
    pub fn total_per_state(&self, net: &Spn, graph: &ReachabilityGraph) -> Vec<f64> {
        let mut total = vec![0.0; graph.state_count()];
        for r in &self.rates {
            for (acc, v) in total.iter_mut().zip(r.per_state(graph)) {
                *acc += v;
            }
        }
        for i in &self.impulses {
            for (acc, v) in total.iter_mut().zip(i.per_state(net, graph)) {
                *acc += v;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SpnBuilder, TransitionDef};
    use crate::reach::{explore, ExploreOptions};

    fn two_state() -> (Spn, ReachabilityGraph) {
        let mut b = SpnBuilder::new();
        let up = b.add_place("up", 1);
        let down = b.add_place("down", 0);
        b.add_transition(
            TransitionDef::timed_const("fail", 2.0)
                .input(up, 1)
                .output(down, 1),
        );
        let net = b.build().unwrap();
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        (net, g)
    }

    #[test]
    fn rate_reward_per_state() {
        let (net, g) = two_state();
        let up = net.place_by_name("up").unwrap();
        let r = RateReward::new("uptime", move |m| m.tokens(up) as f64);
        let v = r.per_state(&g);
        assert_eq!(v.len(), 2);
        // state 0 = initial (up=1), state 1 = failed
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 0.0);
    }

    #[test]
    fn impulse_reward_converts_to_rate() {
        let (net, g) = two_state();
        let t = net.transition_by_name("fail").unwrap();
        let i = ImpulseReward::new("fail_cost", t, |_| 10.0);
        let v = i.per_state(&net, &g);
        // state 0 fires `fail` at rate 2 with impulse 10 → 20/time
        assert_eq!(v[0], 20.0);
        assert_eq!(v[1], 0.0);
    }

    #[test]
    fn impulse_on_self_loop_counts() {
        let mut b = SpnBuilder::new();
        let up = b.add_place("up", 1);
        b.add_transition(TransitionDef::timed_const("noop", 3.0)); // self loop
        b.add_transition(TransitionDef::timed_const("fail", 1.0).input(up, 1));
        let net = b.build().unwrap();
        let g = explore(&net, &ExploreOptions::default()).unwrap();
        let t = net.transition_by_name("noop").unwrap();
        let i = ImpulseReward::new("noop_cost", t, |_| 5.0);
        let v = i.per_state(&net, &g);
        assert_eq!(v[0], 15.0); // rate 3 × impulse 5
    }

    #[test]
    fn reward_set_totals() {
        let (net, g) = two_state();
        let up = net.place_by_name("up").unwrap();
        let t = net.transition_by_name("fail").unwrap();
        let set = RewardSet::new()
            .with_rate(RateReward::new("uptime", move |m| m.tokens(up) as f64))
            .with_impulse(ImpulseReward::new("fail_cost", t, |_| 10.0));
        let v = set.total_per_state(&net, &g);
        assert_eq!(v[0], 21.0);
        assert_eq!(v[1], 0.0);
    }

    #[test]
    fn empty_reward_set_is_zero() {
        let (net, g) = two_state();
        let v = RewardSet::new().total_per_state(&net, &g);
        assert!(v.iter().all(|&x| x == 0.0));
    }
}
