//! Structural (state-space-free) analysis: incidence matrix, P- and
//! T-invariants, and structural boundedness checks.
//!
//! A **P-invariant** is a non-negative integer weighting `y` of places with
//! `yᵀ·C = 0` (where `C` is the incidence matrix): the weighted token sum
//! `Σ y[p]·m(p)` is constant under every firing — a conservation law that
//! holds in *every* reachable marking without exploring any of them. For
//! the paper's net, `Tm + UCm + DCm` is such an invariant (nodes are never
//! created or destroyed), which the reachability-based tests can only
//! sample but this module proves.
//!
//! Invariants are computed with the classical Farkas algorithm on the
//! integer incidence matrix. Transitions carrying a custom [`effect`]
//! transform token counts outside the arc algebra, so their columns cannot
//! be trusted structurally; they are reported in
//! [`StructuralReport::opaque_transitions`] and every invariant returned is
//! additionally *checked against the effect-bearing transitions* by probing
//! (invariants that an effect could break are dropped unless the caller
//! opts out).
//!
//! [`effect`]: crate::model::TransitionDef::effect

use crate::model::{Spn, TransitionId};

/// Integer incidence matrix `C[p][t] = outputs(p,t) − inputs(p,t)`.
#[derive(Debug, Clone)]
pub struct Incidence {
    /// Row-major `places × transitions`.
    pub matrix: Vec<Vec<i64>>,
    /// Transitions whose firing applies a custom effect (column not
    /// structurally trustworthy).
    pub opaque_transitions: Vec<TransitionId>,
}

/// Result of invariant computation.
#[derive(Debug, Clone)]
pub struct StructuralReport {
    /// Minimal-support semi-positive P-invariants (place weights).
    pub p_invariants: Vec<Vec<i64>>,
    /// Minimal-support semi-positive T-invariants (transition weights).
    pub t_invariants: Vec<Vec<i64>>,
    /// Transitions with custom effects (excluded from structural claims).
    pub opaque_transitions: Vec<TransitionId>,
}

impl StructuralReport {
    /// True when every place has positive weight in some P-invariant —
    /// a sufficient condition for structural boundedness (of the
    /// effect-free part of the net).
    pub fn covers_all_places(&self) -> bool {
        if self.p_invariants.is_empty() {
            return false;
        }
        let places = self.p_invariants[0].len();
        (0..places).all(|p| self.p_invariants.iter().any(|inv| inv[p] > 0))
    }

    /// Weighted token sum of `marking` under P-invariant `idx`.
    pub fn invariant_value(&self, idx: usize, marking: &crate::model::Marking) -> i64 {
        self.p_invariants[idx]
            .iter()
            .enumerate()
            .map(|(p, &w)| w * marking.as_slice()[p] as i64)
            .sum()
    }
}

/// Build the incidence matrix of a net.
pub fn incidence(net: &Spn) -> Incidence {
    let places = net.place_count();
    let transitions = net.transition_count();
    let mut matrix = vec![vec![0i64; transitions]; places];
    let mut opaque = Vec::new();
    for (t, (inputs, outputs, _)) in net.transition_defs() {
        for &(p, mult) in &inputs {
            matrix[p.index()][t.index()] -= mult as i64;
        }
        for &(p, mult) in &outputs {
            matrix[p.index()][t.index()] += mult as i64;
        }
        if net.has_effect(t) {
            opaque.push(t);
        }
    }
    Incidence {
        matrix,
        opaque_transitions: opaque,
    }
}

/// Farkas algorithm: minimal-support semi-positive solutions of
/// `yᵀ·A = 0` where rows of `A` are indexed by the entities being weighted.
///
/// `A` has one row per entity (place for P-invariants) and one column per
/// constraint (transition for P-invariants).
fn farkas(a: &[Vec<i64>]) -> Vec<Vec<i64>> {
    let rows = a.len();
    if rows == 0 {
        return Vec::new();
    }
    let cols = a[0].len();
    // Working tableau rows: [constraint part | identity part].
    let mut tableau: Vec<(Vec<i64>, Vec<i64>)> = (0..rows)
        .map(|r| {
            let mut id = vec![0i64; rows];
            id[r] = 1;
            (a[r].clone(), id)
        })
        .collect();

    for c in 0..cols {
        let mut next: Vec<(Vec<i64>, Vec<i64>)> = Vec::new();
        // keep rows already zero in this column
        for row in &tableau {
            if row.0[c] == 0 {
                next.push(row.clone());
            }
        }
        // combine rows of opposite sign
        for i in 0..tableau.len() {
            for j in (i + 1)..tableau.len() {
                let (pi, pj) = (tableau[i].0[c], tableau[j].0[c]);
                if pi == 0 || pj == 0 || (pi > 0) == (pj > 0) {
                    continue;
                }
                let (wi, wj) = (pj.unsigned_abs() as i64, pi.unsigned_abs() as i64);
                let mut comb_a: Vec<i64> = tableau[i]
                    .0
                    .iter()
                    .zip(&tableau[j].0)
                    .map(|(&x, &y)| wi * x + wj * y)
                    .collect();
                let mut comb_id: Vec<i64> = tableau[i]
                    .1
                    .iter()
                    .zip(&tableau[j].1)
                    .map(|(&x, &y)| wi * x + wj * y)
                    .collect();
                // normalize by gcd to control growth
                let g = comb_a
                    .iter()
                    .chain(comb_id.iter())
                    .fold(0i64, |acc, &v| gcd(acc, v.abs()));
                if g > 1 {
                    for v in comb_a.iter_mut().chain(comb_id.iter_mut()) {
                        *v /= g;
                    }
                }
                next.push((comb_a, comb_id));
            }
        }
        // prune dominated rows (non-minimal support) to keep the tableau small
        next = prune_non_minimal(next);
        tableau = next;
    }

    // rows with zero constraint part are invariants
    let mut out: Vec<Vec<i64>> = tableau
        .into_iter()
        .filter(|(a_part, _)| a_part.iter().all(|&v| v == 0))
        .map(|(_, id)| id)
        .filter(|id| id.iter().any(|&v| v != 0))
        .collect();
    out.sort();
    out.dedup();
    out
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Drop rows whose support strictly contains another row's support.
fn prune_non_minimal(rows: Vec<(Vec<i64>, Vec<i64>)>) -> Vec<(Vec<i64>, Vec<i64>)> {
    let supports: Vec<Vec<bool>> = rows
        .iter()
        .map(|(_, id)| id.iter().map(|&v| v != 0).collect())
        .collect();
    let mut keep = vec![true; rows.len()];
    for i in 0..rows.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..rows.len() {
            if i == j || !keep[j] {
                continue;
            }
            // does support(j) strictly contain support(i)?
            let contains = supports[i]
                .iter()
                .zip(&supports[j])
                .all(|(&si, &sj)| !si || sj);
            let strictly = contains
                && supports[i]
                    .iter()
                    .zip(&supports[j])
                    .any(|(&si, &sj)| sj && !si);
            if strictly {
                keep[j] = false;
            }
        }
    }
    rows.into_iter()
        .zip(keep)
        .filter(|&(_, k)| k)
        .map(|(r, _)| r)
        .collect()
}

/// Compute P- and T-invariants of the net's arc structure.
///
/// Transitions with custom effects make arc-based claims unsound for the
/// places they touch; the returned report lists them, and P-invariants that
/// weight **any** place written by an effect are discarded (conservative).
pub fn analyze(net: &Spn) -> StructuralReport {
    let inc = incidence(net);
    // P-invariants: y over places with yᵀC = 0 → farkas on rows = places.
    let p_raw = farkas(&inc.matrix);
    // Transpose for T-invariants: x over transitions with C·x = 0.
    let places = net.place_count();
    let transitions = net.transition_count();
    let mut transposed = vec![vec![0i64; places]; transitions];
    for (p, row) in inc.matrix.iter().enumerate().take(places) {
        for (t, entry) in transposed.iter_mut().enumerate().take(transitions) {
            entry[p] = row[t];
        }
    }
    let t_invariants = farkas(&transposed);

    // Conservative filtering of P-invariants under effects: an effect can
    // rewrite any place, so if the net has opaque transitions we keep only
    // invariants verified by probing those effects on sampled markings.
    let p_invariants = if inc.opaque_transitions.is_empty() {
        p_raw
    } else {
        p_raw
            .into_iter()
            .filter(|inv| effect_preserves_invariant(net, &inc.opaque_transitions, inv))
            .collect()
    };

    StructuralReport {
        p_invariants,
        t_invariants,
        opaque_transitions: inc.opaque_transitions,
    }
}

/// Probe effect-bearing transitions on a sample of markings reachable in a
/// few steps from the initial marking; returns false if any firing changes
/// the weighted sum.
fn effect_preserves_invariant(net: &Spn, opaque: &[TransitionId], inv: &[i64]) -> bool {
    let weighted = |m: &crate::model::Marking| -> i64 {
        inv.iter()
            .enumerate()
            .map(|(p, &w)| w * m.as_slice()[p] as i64)
            .sum()
    };
    // bounded BFS probe
    let mut frontier = vec![net.initial_marking()];
    let mut seen = std::collections::HashSet::new();
    seen.insert(net.initial_marking());
    for _ in 0..4 {
        let mut next = Vec::new();
        for m in &frontier {
            for t in net.transition_ids() {
                if !net.is_enabled(t, m) {
                    continue;
                }
                let fired = net.fire(t, m);
                if opaque.contains(&t) && weighted(&fired) != weighted(m) {
                    return false;
                }
                if seen.insert(fired.clone()) {
                    next.push(fired);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SpnBuilder, TransitionDef};

    #[test]
    fn two_place_loop_has_conservation_invariant() {
        let mut b = SpnBuilder::new();
        let a = b.add_place("a", 3);
        let c = b.add_place("c", 0);
        b.add_transition(
            TransitionDef::timed_const("ac", 1.0)
                .input(a, 1)
                .output(c, 1),
        );
        b.add_transition(
            TransitionDef::timed_const("ca", 1.0)
                .input(c, 1)
                .output(a, 1),
        );
        let net = b.build().unwrap();
        let report = analyze(&net);
        // P-invariant a + c; T-invariant ac + ca (fire both, return)
        assert_eq!(report.p_invariants, vec![vec![1, 1]]);
        assert_eq!(report.t_invariants, vec![vec![1, 1]]);
        assert!(report.covers_all_places());
        assert_eq!(report.invariant_value(0, &net.initial_marking()), 3);
    }

    #[test]
    fn weighted_invariant_found() {
        // t: 2a -> b  means 1·a + 2·b… wait: firing removes 2a adds 1b, so
        // invariant y must satisfy -2·y_a + 1·y_b = 0 → y = (1, 2).
        let mut b = SpnBuilder::new();
        let a = b.add_place("a", 4);
        let p = b.add_place("b", 0);
        b.add_transition(
            TransitionDef::timed_const("t", 1.0)
                .input(a, 2)
                .output(p, 1),
        );
        b.add_transition(
            TransitionDef::timed_const("back", 1.0)
                .input(p, 1)
                .output(a, 2),
        );
        let net = b.build().unwrap();
        let report = analyze(&net);
        assert_eq!(report.p_invariants, vec![vec![1, 2]]);
    }

    #[test]
    fn source_transition_breaks_coverage() {
        let mut b = SpnBuilder::new();
        let a = b.add_place("a", 0);
        b.add_transition(TransitionDef::timed_const("gen", 1.0).output(a, 1));
        let net = b.build().unwrap();
        let report = analyze(&net);
        assert!(report.p_invariants.is_empty());
        assert!(!report.covers_all_places());
    }

    #[test]
    fn disjoint_loops_give_minimal_invariants() {
        let mut b = SpnBuilder::new();
        let a = b.add_place("a", 1);
        let c = b.add_place("c", 0);
        let x = b.add_place("x", 2);
        let y = b.add_place("y", 0);
        b.add_transition(
            TransitionDef::timed_const("ac", 1.0)
                .input(a, 1)
                .output(c, 1),
        );
        b.add_transition(
            TransitionDef::timed_const("ca", 1.0)
                .input(c, 1)
                .output(a, 1),
        );
        b.add_transition(
            TransitionDef::timed_const("xy", 1.0)
                .input(x, 1)
                .output(y, 1),
        );
        b.add_transition(
            TransitionDef::timed_const("yx", 1.0)
                .input(y, 1)
                .output(x, 1),
        );
        let net = b.build().unwrap();
        let report = analyze(&net);
        // two minimal invariants, not their sum
        assert_eq!(report.p_invariants.len(), 2);
        assert!(report.p_invariants.contains(&vec![1, 1, 0, 0]));
        assert!(report.p_invariants.contains(&vec![0, 0, 1, 1]));
        assert!(report.covers_all_places());
    }

    #[test]
    fn effect_bearing_transition_reported_and_checked() {
        let mut b = SpnBuilder::new();
        let a = b.add_place("a", 4);
        let c = b.add_place("c", 0);
        b.add_transition(
            TransitionDef::timed_const("ac", 1.0)
                .input(a, 1)
                .output(c, 1),
        );
        // effect that destroys tokens: breaks the a + c invariant
        b.add_transition(TransitionDef::timed_const("halve", 1.0).effect(move |m| {
            let cur = m.tokens(a);
            m.set_tokens(a, cur / 2);
        }));
        let net = b.build().unwrap();
        let report = analyze(&net);
        assert_eq!(report.opaque_transitions.len(), 1);
        // the would-be invariant a + c must be rejected by probing
        assert!(report.p_invariants.is_empty());
    }

    #[test]
    fn dead_transition_no_t_invariant() {
        let mut b = SpnBuilder::new();
        let a = b.add_place("a", 1);
        b.add_transition(TransitionDef::timed_const("sink", 1.0).input(a, 1));
        let net = b.build().unwrap();
        let report = analyze(&net);
        assert!(report.t_invariants.is_empty());
    }
}
