//! Regenerate Figure 1: the SPN model itself, exported as Graphviz DOT
//! (places Tm/UCm/DCm/GF/NG and transitions T_CP, T_IDS, T_FA, T_DRQ,
//! T_PAR, T_MER, T_RK), plus the structural invariant report.

use gcsids::config::SystemConfig;
use gcsids::model::build_model;

fn main() {
    let cfg = SystemConfig::paper_default();
    let model = build_model(&cfg);
    let dot = spn::dot::net_to_dot(&model.net);
    let dir =
        std::path::PathBuf::from(std::env::var("RESULTS_DIR").unwrap_or_else(|_| "results".into()));
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("fig1_spn_model.dot");
    std::fs::write(&path, &dot).expect("write dot");
    println!("{dot}");
    eprintln!("dot written: {} (render with `dot -Tpdf`)", path.display());

    let report = spn::structural::analyze(&model.net);
    eprintln!("structural P-invariants (Tm, UCm, DCm, GF, NG):");
    for inv in &report.p_invariants {
        eprintln!("  {inv:?}");
    }
}
