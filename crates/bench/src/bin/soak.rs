//! Scenario-evaluation service soak harness: generates a spool of specs
//! spanning several structural families, drains it through
//! [`engine::service::serve`], and gates on the cross-request template
//! cache's hit rate. The CI smoke configuration runs a short version of
//! the same loop the `service_soak` integration test exercises.
//!
//! Run with: `cargo run --release -p bench-harness --bin soak`
//!
//! Flags:
//! - `--specs N`: submissions to generate (default 120).
//! - `--families K`: structural families to spread them across, as node
//!   counts 10, 11, … (default 3).
//! - `--workers N`: service worker threads (default 2).
//! - `--min-hit-rate F`: exit non-zero if the template-cache hit rate
//!   lands below this after the drain (default 0.9).
//! - `--dir PATH`: working directory for spool/results (default: a
//!   per-process directory under the system temp dir, removed on success).
//!
//! Exits 0 on success, 1 when any spec failed or the hit rate missed the
//! gate, 2 on a fatal service error.

use engine::service::{serve, ServiceConfig};
use engine::{BackendKind, ScenarioSpec};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    specs: usize,
    families: u32,
    workers: usize,
    min_hit_rate: f64,
    dir: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut out = Args {
        specs: 120,
        families: 3,
        workers: 2,
        min_hit_rate: 0.9,
        dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--specs" => out.specs = value("--specs").parse().expect("--specs"),
            "--families" => out.families = value("--families").parse().expect("--families"),
            "--workers" => out.workers = value("--workers").parse().expect("--workers"),
            "--min-hit-rate" => {
                out.min_hit_rate = value("--min-hit-rate").parse().expect("--min-hit-rate")
            }
            "--dir" => out.dir = Some(PathBuf::from(value("--dir"))),
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(out.specs > 0 && out.families > 0, "need specs and families");
    out
}

/// The soak workload: flat exact specs round-robined across `families`
/// structural families (node counts 10, 11, …), each submission a distinct
/// rate-only variant (per-index detection interval) of its family.
fn soak_spec(i: usize, families: u32) -> ScenarioSpec {
    let mut spec = ScenarioSpec::paper_default(BackendKind::Exact);
    spec.name = format!("soak-{i:04}");
    spec.system.node_count = 10 + (i as u32 % families);
    spec.system.vote_participants = 3;
    spec.system = spec
        .system
        .with_tids(60.0 + (i as u32 / families) as f64 * 15.0);
    spec
}

fn main() -> ExitCode {
    let args = parse_args();
    let root = args.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("gcsids-soak-{}", std::process::id()))
    });
    let spool = root.join("spool");
    let results = root.join("results");
    std::fs::create_dir_all(&spool).expect("create spool");

    for i in 0..args.specs {
        let spec = soak_spec(i, args.families);
        // tmp + rename, as the spool protocol requires
        let tmp = spool.join(format!("{}.tmp", spec.name));
        std::fs::write(&tmp, spec.to_json()).expect("write spec");
        std::fs::rename(&tmp, spool.join(format!("{}.json", spec.name))).expect("publish spec");
    }

    let mut cfg = ServiceConfig::new(&spool, &results);
    cfg.workers = args.workers;
    cfg.drain = true;
    let t0 = Instant::now();
    let summary = match serve(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("soak: service failed: {e}");
            return ExitCode::from(2);
        }
    };
    let wall = t0.elapsed().as_secs_f64();

    let c = &summary.cache;
    let hit_rate = c.hit_rate().unwrap_or(0.0);
    println!(
        "soak: {} specs / {} families / {} workers in {wall:.3}s ({:.1} specs/s)",
        args.specs,
        args.families,
        args.workers,
        summary.processed as f64 / wall,
    );
    println!(
        "cache: {} hits / {} misses / {} evictions / {} bypasses \
         ({} resident templates, {} states) hit_rate={hit_rate:.4}",
        c.hits, c.misses, c.evictions, c.bypasses, c.entries, c.cached_states
    );

    if summary.failed > 0 {
        eprintln!(
            "soak: {} spec(s) FAILED — see {}",
            summary.failed,
            results.display()
        );
        return ExitCode::FAILURE;
    }
    if summary.processed != args.specs as u64 {
        eprintln!(
            "soak: processed {} of {} submitted specs",
            summary.processed, args.specs
        );
        return ExitCode::FAILURE;
    }
    if hit_rate < args.min_hit_rate {
        eprintln!(
            "soak: hit rate {hit_rate:.4} below the {:.4} gate",
            args.min_hit_rate
        );
        return ExitCode::FAILURE;
    }
    if args.dir.is_none() {
        let _ = std::fs::remove_dir_all(&root);
    }
    ExitCode::SUCCESS
}
