//! Mission-survivability figure (extension beyond the paper's Figures 2–5):
//! exact `P[no security failure by mission time t]` per vote-participant
//! count m, on a grid spanning the planning-relevant band (0.1 × the base
//! MTTSF — uniformization cost grows with the horizon; see
//! `bench_harness::fig_survival`).
//!
//! The paper's §2.1 security requirement — survive "past the minimum
//! mission time" — is a transient statement the MTTSF point metric only
//! summarizes; this figure answers it directly via uniformization.

use bench_harness::{fig_survival, results_dir};
use gcsids::config::SystemConfig;

fn main() {
    let cfg = SystemConfig::paper_default();
    let t = fig_survival(&cfg, 24).expect("survival evaluation");
    println!("{}", t.render());
    // mission time each m sustains at 95% survival, the planner's number
    for (label, ys) in &t.series {
        let t95 =
            t.x.iter()
                .zip(ys)
                .take_while(|&(_, &s)| s >= 0.95)
                .last()
                .map_or(0.0, |(&x, _)| x);
        println!("longest mission at ≥95% survival for {label}: {t95:.0} s");
    }
    let path = results_dir().join("fig_survival.csv");
    t.write_csv(&path).expect("write results");
    println!("\ncsv written: {}", path.display());
}
