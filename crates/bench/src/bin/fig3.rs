//! Regenerate Figure 3: C_total vs TIDS as the number of vote participants
//! m varies (linear attacker, linear detection).
//!
//! Paper reference: each curve has an interior optimal TIDS; larger m costs
//! more.

use bench_harness::{emit, fig3};
use gcsids::config::SystemConfig;

fn main() {
    let cfg = SystemConfig::paper_default();
    let t = fig3(&cfg).expect("figure 3 evaluation");
    emit(&t, "fig3_cost_vs_tids_by_m.csv", false).expect("write results");
}
