//! Regenerate every figure in one run (writes all CSVs under results/).

use bench_harness::{emit, fig2, fig3, fig4, fig5};
use gcsids::config::SystemConfig;

fn main() {
    let cfg = SystemConfig::paper_default();
    let t0 = std::time::Instant::now();
    emit(
        &fig2(&cfg).expect("fig2"),
        "fig2_mttsf_vs_tids_by_m.csv",
        true,
    )
    .expect("write");
    emit(
        &fig3(&cfg).expect("fig3"),
        "fig3_cost_vs_tids_by_m.csv",
        false,
    )
    .expect("write");
    emit(
        &fig4(&cfg).expect("fig4"),
        "fig4_mttsf_vs_tids_by_detection.csv",
        true,
    )
    .expect("write");
    emit(
        &fig5(&cfg).expect("fig5"),
        "fig5_cost_vs_tids_by_detection.csv",
        false,
    )
    .expect("write");
    eprintln!("all figures regenerated in {:?}", t0.elapsed());
}
