//! Mobility calibration: estimate the group partition/merge birth-death
//! rates and hop statistics the SPN consumes (paper section 4.1: "We obtain
//! group merging/partitioning rates by simulation for a sufficiently long
//! period of time").

use manet::{calibrate, CalibrationConfig, MobilityConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let duration: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20_000.0);
    let seeds: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let cfg = CalibrationConfig {
        duration,
        seeds,
        mobility: MobilityConfig::default(),
        ..Default::default()
    };
    eprintln!(
        "calibrating: {} nodes, {:.0} m disc, {:.0} m range, {} x {:.0} s",
        cfg.mobility.node_count, cfg.mobility.area_radius, cfg.radio_range, seeds, duration
    );
    let t0 = std::time::Instant::now();
    let r = calibrate(&cfg, 2009);
    println!("simulated_time_s,{:.0}", r.total_time);
    println!("mean_group_count,{:.4}", r.mean_group_count);
    println!("mean_group_size,{:.2}", r.mean_group_size);
    println!(
        "partition_rate_per_group_hz,{:.6e}",
        r.partition_rate_per_group
    );
    println!("merge_rate_per_group_hz,{:.6e}", r.merge_rate_per_group);
    println!("mean_hops,{:.3}", r.mean_hops);
    for g in 1..=6 {
        if r.time_at.get(g).copied().unwrap_or(0.0) > 0.0 {
            println!(
                "bin,g={g},time_s={:.0},partitions={},merges={}",
                r.time_at[g], r.partitions_at[g], r.merges_at[g]
            );
        }
    }
    eprintln!("elapsed: {:?}", t0.elapsed());
}
