//! Profiling aid: per-stage timings of one exact evaluation (rate
//! re-evaluation, per-state cost rewards, CTMC assembly, absorption solve)
//! at increasing system sizes, plus a head-to-head of the legacy per-point
//! sweep path (graph clone → CSR rebuild → solve) against the rebuild-free
//! template path (in-place re-weight → value-only refresh → solve), plus
//! replication throughput (reps/sec) of the three stochastic backends
//! through the shared replication engine, fixed vs adaptive sampling. Used
//! to attribute sweep time between the explore / re-weight / solve stages
//! when tuning the engine; before/after numbers live in
//! `results/profile_point.md`.
//!
//! Run with: `cargo run --release -p bench-harness --bin profile_point`

use engine::{backend_for, BackendKind, RunBudget, SamplingPlan, ScenarioSpec};
use gcsids::config::SystemConfig;
use gcsids::cost::cost_breakdown;
use gcsids::metrics::ExactTemplate;
use gcsids::model::{build_model, population};
use spn::ctmc::Ctmc;
use std::time::Instant;

/// Replication throughput per stochastic backend on the accelerated
/// 12-node system (the crossval fixtures' regime): a fixed 200-replication
/// plan against an adaptive plan targeting a 15% relative MTTSF CI
/// half-width.
fn replication_throughput() {
    let mut spec = ScenarioSpec::paper_default(BackendKind::Des);
    spec.name = "profile/replication".into();
    spec.system.node_count = 12;
    spec.system.vote_participants = 3;
    spec.system.attacker.base_rate = 1.0 / 600.0;
    spec.system.detection = spec.system.detection.with_interval(120.0);
    spec.stochastic.max_time = 5.0e6;
    spec.mobility.dt = 2.0;
    let budget = RunBudget::default();
    for kind in [
        BackendKind::SpnSim,
        BackendKind::Des,
        BackendKind::MobilityDes,
    ] {
        spec.backend = kind;
        spec.stochastic.sampling = SamplingPlan::Fixed(200);
        let fixed = backend_for(kind).run(&spec, &budget).unwrap();
        spec.stochastic.sampling = SamplingPlan::Adaptive {
            target_rel_halfwidth: 0.15,
            min: 50,
            max: 400,
            batch: 50,
        };
        let adaptive = backend_for(kind).run(&spec, &budget).unwrap();
        let rate = |r: &engine::RunReport| r.replications.unwrap() as f64 / r.wall_seconds;
        println!(
            "throughput {:<12} fixed: {} reps in {:.3}s ({:.1} reps/s) | \
             adaptive(15%): {} reps in {:.3}s ({:.1} reps/s, target_met={})",
            kind.name(),
            fixed.replications.unwrap(),
            fixed.wall_seconds,
            rate(&fixed),
            adaptive.replications.unwrap(),
            adaptive.wall_seconds,
            rate(&adaptive),
            adaptive.target_met.unwrap(),
        );
    }
}

fn main() {
    for n in [50u32, 100] {
        let mut cfg = SystemConfig::paper_default();
        cfg.node_count = n;
        let model = build_model(&cfg);
        let t0 = Instant::now();
        let template = ExactTemplate::new(&cfg).unwrap();
        let t_template = t0.elapsed();
        let graph = template.graph();

        let t0 = Instant::now();
        let mut acc = 0.0;
        for m in &graph.states {
            for (_, r) in model.net.enabled_timed(m).unwrap() {
                acc += r;
            }
        }
        let t_rates = t0.elapsed();

        let t0 = Instant::now();
        for m in &graph.states {
            acc += cost_breakdown(&cfg, &population(&model.places, m)).total();
        }
        let t_cost = t0.elapsed();

        let t0 = Instant::now();
        let ctmc = Ctmc::from_graph(graph).unwrap();
        let t_build = t0.elapsed();
        let t0 = Instant::now();
        let a = ctmc.mean_time_to_absorption().unwrap();
        let t_solve = t0.elapsed();

        // Head-to-head on a rate-only variant (a different detection
        // interval — one point of a fig2 sweep).
        let hot = cfg.with_tids(60.0);
        let hot_model = build_model(&hot);

        // Legacy per-point path: clone + re-weight the whole graph, rebuild
        // the CSR from triplets, solve.
        let t0 = Instant::now();
        let legacy = {
            let g = graph.reweighted(&hot_model.net).unwrap();
            Ctmc::from_graph(&g)
                .unwrap()
                .mean_time_to_absorption()
                .unwrap()
        };
        let t_legacy_point = t0.elapsed();

        // Rebuild-free path: pooled scratch, in-place re-weight, value-only
        // refresh, solve. First call warms the scratch pool; time the
        // steady-state second call.
        template.evaluate(&hot).unwrap();
        let t0 = Instant::now();
        let e = template.evaluate(&hot).unwrap();
        let t_template_point = t0.elapsed();
        assert!((legacy.mtta - e.mttsf_seconds).abs() <= 1e-9 * legacy.mtta);

        // Transient cost scales with q·t_max: time the mission-survival
        // sweep at a day-scale horizon (the regime the crossval harness
        // and fig_survival run in).
        let t0 = Instant::now();
        let horizon = 0.05 * a.mtta;
        let grid: Vec<f64> = (1..=5).map(|i| horizon * i as f64 / 5.0).collect();
        let s = ctmc.survival_curve(&grid, &spn::ctmc::TransientOptions::default());
        let t_survival = t0.elapsed();
        println!(
            "N={n}: explore+pattern={t_template:?} rates={t_rates:?} cost={t_cost:?} \
             ctmc_build={t_build:?} solve={t_solve:?} \
             legacy_point={t_legacy_point:?} template_point={t_template_point:?} \
             survival5pt@0.05mtta={t_survival:?} (mtta={:.3e}, S(end)={:.4}, acc={acc:.1})",
            a.mtta, s[4]
        );
    }
    replication_throughput();
}
