//! Profiling aid: per-stage timings of one exact evaluation (rate
//! re-evaluation, per-state cost rewards, CTMC assembly, absorption solve)
//! at increasing system sizes. Used to attribute sweep time between the
//! explore / re-weight / solve stages when tuning the engine.
//!
//! Run with: `cargo run --release -p bench-harness --bin profile_point`

use gcsids::config::SystemConfig;
use gcsids::cost::cost_breakdown;
use gcsids::metrics::ExactTemplate;
use gcsids::model::{build_model, population};
use spn::ctmc::Ctmc;
use std::time::Instant;

fn main() {
    for n in [50u32, 100] {
        let mut cfg = SystemConfig::paper_default();
        cfg.node_count = n;
        let model = build_model(&cfg);
        let template = ExactTemplate::new(&cfg).unwrap();
        let graph = template.graph();

        let t0 = Instant::now();
        let mut acc = 0.0;
        for m in &graph.states {
            for (_, r) in model.net.enabled_timed(m).unwrap() {
                acc += r;
            }
        }
        let t_rates = t0.elapsed();

        let t0 = Instant::now();
        for m in &graph.states {
            acc += cost_breakdown(&cfg, &population(&model.places, m)).total();
        }
        let t_cost = t0.elapsed();

        let t0 = Instant::now();
        let ctmc = Ctmc::from_graph(graph).unwrap();
        let t_build = t0.elapsed();
        let t0 = Instant::now();
        let a = ctmc.mean_time_to_absorption().unwrap();
        let t_solve = t0.elapsed();
        println!("N={n}: rates={t_rates:?} cost={t_cost:?} ctmc_build={t_build:?} solve={t_solve:?} (mtta={:.3e}, acc={acc:.1})", a.mtta);
    }
}
