//! Profiling aid: per-stage timings of one exact evaluation (rate
//! re-evaluation, per-state cost rewards, CTMC assembly, absorption solve)
//! at increasing system sizes, a head-to-head of the legacy per-point
//! sweep path against the rebuild-free template path, a lumped-vs-unlumped
//! head-to-head on clustered deployments (plus the 120-node lumped-only
//! point the unlumped path cannot reach), and replication throughput
//! (reps/sec) of the three stochastic backends through the shared
//! replication engine, and the scenario subsystem: structural counts of
//! each attacker/response net plus one CRN-paired comparison with its
//! zero-delta self-check. Before/after numbers live in
//! `results/profile_point.md`.
//!
//! Run with: `cargo run --release -p bench-harness --bin profile_point`
//!
//! Flags:
//! - `--out PATH`: also write the profile as canonical JSON (the
//!   machine-readable twin of the text output).
//! - `--check PATH`: diff this run against a previously written JSON
//!   snapshot. Structural counts (`states`, `edges`, replication counts)
//!   must match exactly; any `*_seconds` stage may not regress by more
//!   than the tolerance (plus a small absolute slack for sub-millisecond
//!   stages). Exits non-zero on any violation — the CI bench-trajectory
//!   gate.
//! - `--tolerance F`: fractional per-stage slowdown allowed by `--check`
//!   (default 0.25).

use engine::json::Value;
use engine::{backend_for, BackendKind, RunBudget, SamplingPlan, ScenarioSpec};
use gcsids::clustered::{
    evaluate_clustered_graph, evaluate_clustered_with_survival, ClusteredPath,
};
use gcsids::config::{ClusterTopology, SystemConfig};
use gcsids::cost::cost_breakdown;
use gcsids::metrics::ExactTemplate;
use gcsids::model::{build_clustered_model, build_model, population};
use spn::ctmc::Ctmc;
use spn::reach::{explore, ExploreOptions};
use std::process::ExitCode;
use std::time::Instant;

/// The accelerated 12-node system from the crossval fixtures: fails within
/// ~1e5 s, so every backend finishes quickly at full replication counts.
fn hot_system() -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.node_count = 12;
    cfg.vote_participants = 3;
    cfg.attacker.base_rate = 1.0 / 600.0;
    cfg.detection = cfg.detection.with_interval(120.0);
    cfg
}

/// Per-stage timings of the exact pipeline at paper-default N.
fn exact_profile() -> Vec<Value> {
    let mut points = Vec::new();
    for n in [50u32, 100] {
        let mut cfg = SystemConfig::paper_default();
        cfg.node_count = n;
        let model = build_model(&cfg);
        let t0 = Instant::now();
        let template = ExactTemplate::new(&cfg).unwrap();
        let t_template = t0.elapsed();
        let graph = template.graph();

        let t0 = Instant::now();
        let mut acc = 0.0;
        for m in &graph.states {
            for (_, r) in model.net.enabled_timed(m).unwrap() {
                acc += r;
            }
        }
        let t_rates = t0.elapsed();

        let t0 = Instant::now();
        for m in &graph.states {
            acc += cost_breakdown(&cfg, &population(&model.places, m)).total();
        }
        let t_cost = t0.elapsed();

        let t0 = Instant::now();
        let ctmc = Ctmc::from_graph(graph).unwrap();
        let t_build = t0.elapsed();
        let t0 = Instant::now();
        let a = ctmc.mean_time_to_absorption().unwrap();
        let t_solve = t0.elapsed();

        // Head-to-head on a rate-only variant (a different detection
        // interval — one point of a fig2 sweep).
        let hot = cfg.with_tids(60.0);
        let hot_model = build_model(&hot);

        // Legacy per-point path: clone + re-weight the whole graph, rebuild
        // the CSR from triplets, solve.
        let t0 = Instant::now();
        let legacy = {
            let g = graph.reweighted(&hot_model.net).unwrap();
            Ctmc::from_graph(&g)
                .unwrap()
                .mean_time_to_absorption()
                .unwrap()
        };
        let t_legacy_point = t0.elapsed();

        // Rebuild-free path: pooled scratch, in-place re-weight, value-only
        // refresh, solve. First call warms the scratch pool; time the
        // steady-state second call.
        template.evaluate(&hot).unwrap();
        let t0 = Instant::now();
        let e = template.evaluate(&hot).unwrap();
        let t_template_point = t0.elapsed();
        assert!((legacy.mtta - e.mttsf_seconds).abs() <= 1e-9 * legacy.mtta);

        // Transient cost scales with q·t_max: time the mission-survival
        // sweep at a day-scale horizon (the regime the crossval harness
        // and fig_survival run in).
        let t0 = Instant::now();
        let horizon = 0.05 * a.mtta;
        let grid: Vec<f64> = (1..=5).map(|i| horizon * i as f64 / 5.0).collect();
        let (s, tstats) =
            ctmc.survival_curve_with_stats(&grid, &spn::ctmc::TransientOptions::default());
        let t_survival = t0.elapsed();
        println!(
            "N={n}: explore+pattern={t_template:?} rates={t_rates:?} cost={t_cost:?} \
             ctmc_build={t_build:?} solve={t_solve:?} \
             legacy_point={t_legacy_point:?} template_point={t_template_point:?} \
             survival5pt@0.05mtta={t_survival:?} (mtta={:.3e}, S(end)={:.4}, acc={acc:.1}, \
             matvecs={}, nt={}, na={}, detect={:?}, early_exit={})",
            a.mtta,
            s[4],
            tstats.matvecs,
            tstats.transient_states,
            tstats.absorbing_states,
            tstats.detection_step,
            tstats.early_exit,
        );
        points.push(Value::obj([
            ("n", Value::Num(f64::from(n))),
            ("states", Value::Num(graph.state_count() as f64)),
            ("edges", Value::Num(graph.edge_count() as f64)),
            (
                "stages",
                Value::obj([
                    (
                        "explore_pattern_seconds",
                        Value::Num(t_template.as_secs_f64()),
                    ),
                    ("rates_seconds", Value::Num(t_rates.as_secs_f64())),
                    ("cost_seconds", Value::Num(t_cost.as_secs_f64())),
                    ("ctmc_build_seconds", Value::Num(t_build.as_secs_f64())),
                    ("solve_seconds", Value::Num(t_solve.as_secs_f64())),
                    (
                        "legacy_point_seconds",
                        Value::Num(t_legacy_point.as_secs_f64()),
                    ),
                    (
                        "template_point_seconds",
                        Value::Num(t_template_point.as_secs_f64()),
                    ),
                    ("survival_seconds", Value::Num(t_survival.as_secs_f64())),
                ]),
            ),
            // Transient-engine telemetry for the survival sweep above.
            // Fully deterministic (the matvec count is fixed by the Fox–Glynn
            // windows of the grid), so the snapshot gate pins every field
            // exactly — any drift is an algorithm change, not noise.
            (
                "transient",
                Value::obj([
                    ("matvecs", Value::Num(tstats.matvecs as f64)),
                    (
                        "detection_step",
                        tstats
                            .detection_step
                            .map_or(Value::Null, |s| Value::Num(s as f64)),
                    ),
                    (
                        "early_exit",
                        Value::Num(f64::from(u8::from(tstats.early_exit))),
                    ),
                    (
                        "transient_states",
                        Value::Num(f64::from(tstats.transient_states)),
                    ),
                    (
                        "absorbing_states",
                        Value::Num(f64::from(tstats.absorbing_states)),
                    ),
                ]),
            ),
        ]));
    }
    points
}

/// Symmetry lumping head-to-head on clustered deployments. The unlumped
/// flat product space grows as d^C, so the head-to-head uses three 5-node
/// clusters (still explorable unlumped); at the crossval fixture's scale —
/// ten 12-node clusters, 120 nodes — only the lumped quotient fits and
/// the unlumped cost is reported as the estimated state count.
fn clustered_profile() -> Value {
    let mut cfg = hot_system();
    cfg.node_count = 5;
    let opts = ExploreOptions::default();

    let topo3 = ClusterTopology {
        clusters: 3,
        failure_threshold: 2,
    };
    let t0 = Instant::now();
    let model = build_clustered_model(&cfg, &topo3);
    let flat_graph = explore(&model.net, &opts).unwrap();
    let (unlumped, _) = evaluate_clustered_graph(&model, &flat_graph, &[]).unwrap();
    let t_unlumped = t0.elapsed();

    let t0 = Instant::now();
    let lumped3 = evaluate_clustered_with_survival(&cfg, &topo3, &[], &opts).unwrap();
    let t_lumped3 = t0.elapsed();
    assert_eq!(lumped3.stats.path, ClusteredPath::FlatLumped);
    let rel =
        (lumped3.evaluation.mttsf_seconds - unlumped.mttsf_seconds).abs() / unlumped.mttsf_seconds;
    assert!(rel < 1e-8, "lumped/unlumped MTTSF disagree: rel={rel:.3e}");

    let topo10 = ClusterTopology {
        clusters: 10,
        failure_threshold: 3,
    };
    let fixture = hot_system();
    let t0 = Instant::now();
    let lumped10 = evaluate_clustered_with_survival(&fixture, &topo10, &[], &opts).unwrap();
    let t_lumped10 = t0.elapsed();

    println!(
        "clustered C=3 K=2 (15 nodes): unlumped {} states in {t_unlumped:?} | \
         lumped {} states in {t_lumped3:?} (reduction {:.1}x, mttsf rel diff {rel:.1e})",
        unlumped.state_count, lumped3.stats.states, lumped3.stats.reduction,
    );
    println!(
        "clustered C=10 K=3 (120 nodes): lumped {} states in {t_lumped10:?} \
         (unlumped estimate {:.3e} states, reduction {:.1}x, path {:?})",
        lumped10.stats.states,
        lumped10.stats.unlumped_state_estimate,
        lumped10.stats.reduction,
        lumped10.stats.path,
    );

    // Lumped-only scaling points: 50- and 100-node systems of the same
    // 5-node clusters. Unlumped these are d^10 and d^20 flat product
    // spaces (d ≈ 48) — far beyond any budget — so only the lumped /
    // composed exact path produces numbers here.
    let mut scaling = Vec::new();
    for (label, clusters, threshold) in [("n50", 10u32, 3u32), ("n100", 20, 5)] {
        let topo = ClusterTopology {
            clusters,
            failure_threshold: threshold,
        };
        let t0 = Instant::now();
        let l = evaluate_clustered_with_survival(&cfg, &topo, &[], &opts).unwrap();
        let dt = t0.elapsed();
        println!(
            "clustered C={clusters} K={threshold} ({} nodes): lumped {} states in {dt:?} \
             (unlumped estimate {:.3e} states, path {:?})",
            5 * clusters,
            l.stats.states,
            l.stats.unlumped_state_estimate,
            l.stats.path,
        );
        scaling.push((
            label,
            Value::obj([
                ("states", Value::Num(l.stats.states as f64)),
                ("edges", Value::Num(l.stats.edges as f64)),
                ("lumped_seconds", Value::Num(dt.as_secs_f64())),
                ("reduction", Value::Num(l.stats.reduction)),
                (
                    "unlumped_state_estimate",
                    Value::Num(l.stats.unlumped_state_estimate),
                ),
                ("mttsf", Value::Num(l.evaluation.mttsf_seconds)),
            ]),
        ));
    }

    let mut entries = vec![
        (
            "c3",
            Value::obj([
                ("unlumped_states", Value::Num(unlumped.state_count as f64)),
                ("unlumped_seconds", Value::Num(t_unlumped.as_secs_f64())),
                ("states", Value::Num(lumped3.stats.states as f64)),
                ("edges", Value::Num(lumped3.stats.edges as f64)),
                ("lumped_seconds", Value::Num(t_lumped3.as_secs_f64())),
                ("reduction", Value::Num(lumped3.stats.reduction)),
            ]),
        ),
        (
            "c10",
            Value::obj([
                ("states", Value::Num(lumped10.stats.states as f64)),
                ("edges", Value::Num(lumped10.stats.edges as f64)),
                ("lumped_seconds", Value::Num(t_lumped10.as_secs_f64())),
                ("reduction", Value::Num(lumped10.stats.reduction)),
                (
                    "unlumped_state_estimate",
                    Value::Num(lumped10.stats.unlumped_state_estimate),
                ),
            ]),
        ),
    ];
    entries.extend(scaling);
    Value::obj(entries)
}

/// Replication throughput per stochastic backend on the accelerated
/// 12-node system (the crossval fixtures' regime): a fixed 200-replication
/// plan against an adaptive plan targeting a 15% relative MTTSF CI
/// half-width.
fn replication_throughput() -> Vec<Value> {
    let mut spec = ScenarioSpec::paper_default(BackendKind::Des);
    spec.name = "profile/replication".into();
    spec.system = hot_system();
    spec.stochastic.max_time = 5.0e6;
    spec.mobility.dt = 2.0;
    let budget = RunBudget::default();
    let mut rows = Vec::new();
    for kind in [
        BackendKind::SpnSim,
        BackendKind::Des,
        BackendKind::MobilityDes,
    ] {
        spec.backend = kind;
        spec.stochastic.sampling = SamplingPlan::Fixed(200);
        let fixed = backend_for(kind).run(&spec, &budget).unwrap();
        spec.stochastic.sampling = SamplingPlan::Adaptive {
            target_rel_halfwidth: 0.15,
            min: 50,
            max: 400,
            batch: 50,
        };
        let adaptive = backend_for(kind).run(&spec, &budget).unwrap();
        let rate = |r: &engine::RunReport| r.replications.unwrap() as f64 / r.wall_seconds;
        println!(
            "throughput {:<12} fixed: {} reps in {:.3}s ({:.1} reps/s) | \
             adaptive(15%): {} reps in {:.3}s ({:.1} reps/s, target_met={})",
            kind.name(),
            fixed.replications.unwrap(),
            fixed.wall_seconds,
            rate(&fixed),
            adaptive.replications.unwrap(),
            adaptive.wall_seconds,
            rate(&adaptive),
            adaptive.target_met.unwrap(),
        );
        rows.push(Value::obj([
            ("backend", Value::Str(kind.name().to_string())),
            ("fixed_reps", Value::Num(fixed.replications.unwrap() as f64)),
            ("fixed_seconds", Value::Num(fixed.wall_seconds)),
            ("fixed_reps_per_sec", Value::Num(rate(&fixed))),
            (
                "adaptive_reps",
                Value::Num(adaptive.replications.unwrap() as f64),
            ),
            ("adaptive_seconds", Value::Num(adaptive.wall_seconds)),
            ("adaptive_reps_per_sec", Value::Num(rate(&adaptive))),
        ]));
    }
    rows
}

/// Cross-request template cache through the scenario-evaluation service's
/// runner path: 30 flat exact specs round-robined over 3 structural
/// families, evaluated on one cache-carrying [`engine::Runner`]. The
/// counters are fully deterministic (3 cold builds, 27 warm replays), so
/// the snapshot gate pins them exactly; the cold/warm stage timings ride
/// the usual tolerance.
fn service_profile() -> Value {
    let runner = engine::Runner::new();
    let spec_at = |i: u32| {
        let mut spec = ScenarioSpec::paper_default(BackendKind::Exact);
        spec.name = format!("profile/service-{i:02}");
        spec.system = hot_system();
        spec.system.node_count = 10 + i % 3;
        spec.system = spec.system.with_tids(60.0 + (i / 3) as f64 * 15.0);
        spec
    };

    let t0 = Instant::now();
    for i in 0..3 {
        runner.run_cached(&spec_at(i)).unwrap();
    }
    let t_cold = t0.elapsed();
    let t0 = Instant::now();
    for i in 3..30 {
        runner.run_cached(&spec_at(i)).unwrap();
    }
    let t_warm = t0.elapsed();

    let stats = runner.cache().stats();
    let hit_rate = stats.hit_rate().unwrap();
    println!(
        "service cache: 3 cold builds in {t_cold:?}, 27 warm replays in {t_warm:?} \
         ({} hits / {} misses, hit_rate={hit_rate:.2})",
        stats.hits, stats.misses
    );
    Value::obj([
        ("cache_hits", Value::Num(stats.hits as f64)),
        ("cache_misses", Value::Num(stats.misses as f64)),
        ("cache_hit_rate", Value::Num(hit_rate)),
        ("cold_seconds", Value::Num(t_cold.as_secs_f64())),
        ("warm_seconds", Value::Num(t_warm.as_secs_f64())),
    ])
}

/// Scenario subsystem profile: structural counts (states/edges — exact,
/// pinned) and solve timing of each attacker-strategy / response-policy
/// net on the hot system, plus one CRN-paired comparison with its
/// paired-vs-unpaired half-widths and the self-comparison zero-delta
/// invariant (pinned exactly at 0.0).
fn scenario_profile() -> Value {
    use engine::{AttackerStrategy, ResponsePolicy, ScenarioConfig};
    let cfg = hot_system();
    let axes: [(&str, ScenarioConfig); 6] = [
        ("baseline", ScenarioConfig::baseline()),
        (
            "burst",
            ScenarioConfig {
                attacker: AttackerStrategy::Burst {
                    on_rate: 1.0 / 5_000.0,
                    off_rate: 1.0 / 5_000.0,
                    multiplier: 6.0,
                },
                response: ResponsePolicy::Evict,
            },
        ),
        (
            "stealth",
            ScenarioConfig {
                attacker: AttackerStrategy::Stealth {
                    rate_factor: 0.5,
                    evasion: 0.3,
                },
                response: ResponsePolicy::Evict,
            },
        ),
        (
            "targeted",
            ScenarioConfig {
                attacker: AttackerStrategy::Targeted { focus: 0.8 },
                response: ResponsePolicy::Evict,
            },
        ),
        (
            "quarantine",
            ScenarioConfig {
                attacker: AttackerStrategy::Baseline,
                response: ResponsePolicy::QuarantineRejoin {
                    release_rate: 1.0 / 2_000.0,
                    false_release_prob: 0.1,
                },
            },
        ),
        (
            "throttle",
            ScenarioConfig {
                attacker: AttackerStrategy::Baseline,
                response: ResponsePolicy::RekeyThrottle {
                    max_rate: 1.0 / 1_000.0,
                },
            },
        ),
    ];
    let mut entries: Vec<(String, Value)> = Vec::new();
    for (name, sc) in axes {
        let t0 = Instant::now();
        let model = gcsids::build_scenario_model(&cfg, &sc);
        let graph = explore(&model.net, &ExploreOptions::default()).unwrap();
        let (e, _, totals) = gcsids::evaluate_scenario_graph(&model, &graph, &[]).unwrap();
        let dt = t0.elapsed();
        println!(
            "scenario {name:<10} {} states / {} edges, MTTSF {:.4e} s, \
             E[detections] {:.3} in {dt:?}",
            graph.state_count(),
            graph.edge_count(),
            e.mttsf_seconds,
            totals.detections
        );
        entries.push((
            name.to_string(),
            Value::obj([
                ("states", Value::Num(graph.state_count() as f64)),
                ("edges", Value::Num(graph.edge_count() as f64)),
                ("mttsf", Value::Num(e.mttsf_seconds)),
                ("solve_seconds", Value::Num(dt.as_secs_f64())),
            ]),
        ));
    }

    // Paired comparison: burst variant vs baseline on the protocol DES,
    // plus the self-comparison that must difference to bitwise zero.
    let mut base = ScenarioSpec::paper_default(BackendKind::Des);
    base.name = "profile/ab-base".into();
    base.system = cfg;
    base.stochastic.sampling = SamplingPlan::Fixed(60);
    base.stochastic.max_time = 1.0e6;
    let mut variant = base.clone();
    variant.name = "profile/ab-burst".into();
    variant.scenario = Some(axes[1].1);
    let budget = RunBudget::default();
    let t0 = Instant::now();
    let ab = engine::compare(&base, &variant, &budget).unwrap();
    let t_compare = t0.elapsed();
    let self_ab = engine::compare(&base, &base, &budget).unwrap();
    println!(
        "paired compare: {} pairs in {t_compare:?}, ΔMTTSF ±{:.3e} paired \
         vs ±{:.3e} unpaired; self-compare max|Δt| = {}",
        ab.replications,
        ab.delta_mttsf.paired_halfwidth,
        ab.delta_mttsf.unpaired_halfwidth,
        self_ab.max_abs_delta_time
    );
    entries.push((
        "paired".to_string(),
        Value::obj([
            ("pairs", Value::Num(ab.replications as f64)),
            (
                "paired_halfwidth",
                Value::Num(ab.delta_mttsf.paired_halfwidth),
            ),
            (
                "unpaired_halfwidth",
                Value::Num(ab.delta_mttsf.unpaired_halfwidth),
            ),
            ("compare_seconds", Value::Num(t_compare.as_secs_f64())),
            (
                "self_max_abs_delta_time",
                Value::Num(self_ab.max_abs_delta_time),
            ),
            (
                "self_max_abs_delta_cost",
                Value::Num(self_ab.max_abs_delta_cost),
            ),
        ]),
    ));
    Value::Obj(entries.into_iter().collect())
}

/// Per-rule detlint suppression counts, so the allow-list cannot grow
/// without a visible snapshot diff. Active counts are pinned too (the
/// `--deny-all` CI gate keeps them at zero; the snapshot double-books
/// that). `files_scanned` stays informational — new files are expected.
fn detlint_profile() -> Value {
    let cwd = std::env::current_dir().unwrap();
    let root = analysis::find_workspace_root(&cwd);
    let report = analysis::scan_workspace(&root).unwrap();
    let mut entries: Vec<(String, Value)> = Vec::new();
    for (id, c) in report.counts() {
        let id = id.to_ascii_lowercase();
        entries.push((format!("active_{id}"), Value::Num(c.active as f64)));
        entries.push((format!("suppressed_{id}"), Value::Num(c.suppressed as f64)));
    }
    entries.push((
        "malformed_allows".to_string(),
        Value::Num(report.malformed_allows.len() as f64),
    ));
    entries.push((
        "stale_allows".to_string(),
        Value::Num(report.stale_allows.len() as f64),
    ));
    entries.push((
        "files_scanned".to_string(),
        Value::Num(report.files_scanned as f64),
    ));
    let suppressed: usize = report.counts().values().map(|c| c.suppressed).sum();
    println!(
        "detlint: {} files, {} suppressions, {} active",
        report.files_scanned,
        suppressed,
        report.active().count()
    );
    Value::Obj(entries.into_iter().collect())
}

/// `true` for fields that must match a snapshot exactly: structural counts
/// are deterministic, so any drift is a behavior change, not noise.
fn is_exact_key(key: &str) -> bool {
    if key.starts_with("suppressed_") || key.starts_with("active_") {
        return true;
    }
    matches!(
        key,
        "stale_allows"
            | "malformed_allows"
            | "n"
            | "states"
            | "edges"
            | "unlumped_states"
            | "unlumped_state_estimate"
            | "reduction"
            | "fixed_reps"
            | "adaptive_reps"
            | "cache_hits"
            | "cache_misses"
            | "cache_hit_rate"
            | "matvecs"
            | "detection_step"
            | "early_exit"
            | "transient_states"
            | "absorbing_states"
            | "pairs"
            | "self_max_abs_delta_time"
            | "self_max_abs_delta_cost"
    )
}

/// Absolute slack added to the timing gate so sub-millisecond stages are
/// not failed on scheduler jitter alone.
const TIMING_SLACK_SECONDS: f64 = 0.02;

/// Recursively diff a fresh profile against a snapshot. Timing leaves
/// (`*_seconds`) may not exceed `snap * (1 + tol) + slack`; exact leaves
/// must match bit-for-bit; other leaves are informational.
fn diff(fresh: &Value, snap: &Value, tol: f64, path: &str, failures: &mut Vec<String>) {
    match (fresh, snap) {
        (Value::Obj(f), Value::Obj(s)) => {
            for (key, sv) in s {
                let sub = format!("{path}/{key}");
                match f.get(key) {
                    Some(fv) => diff(fv, sv, tol, &sub, failures),
                    None => failures.push(format!("{sub}: missing from fresh profile")),
                }
            }
        }
        (Value::Arr(f), Value::Arr(s)) => {
            if f.len() != s.len() {
                failures.push(format!(
                    "{path}: length {} vs snapshot {}",
                    f.len(),
                    s.len()
                ));
                return;
            }
            for (i, (fv, sv)) in f.iter().zip(s).enumerate() {
                diff(fv, sv, tol, &format!("{path}[{i}]"), failures);
            }
        }
        (Value::Num(f), Value::Num(s)) => {
            let key = path.rsplit('/').next().unwrap_or(path);
            let key = key.split('[').next().unwrap_or(key);
            if is_exact_key(key) {
                if f != s {
                    failures.push(format!("{path}: count {f} != snapshot {s}"));
                }
            } else if key.ends_with("_seconds") && *f > s * (1.0 + tol) + TIMING_SLACK_SECONDS {
                failures.push(format!(
                    "{path}: {f:.4}s regressed past {s:.4}s (+{:.0}%)",
                    (f / s - 1.0) * 100.0
                ));
            }
        }
        _ => {
            if std::mem::discriminant(fresh) != std::mem::discriminant(snap) {
                failures.push(format!("{path}: shape changed"));
            }
        }
    }
}

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.25;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--out" => out_path = Some(value("--out")),
            "--check" => check_path = Some(value("--check")),
            "--tolerance" => tolerance = value("--tolerance").parse().expect("--tolerance"),
            other => panic!("unknown argument {other}"),
        }
    }

    let profile = Value::obj([
        ("exact", Value::Arr(exact_profile())),
        ("clustered", clustered_profile()),
        ("throughput", Value::Arr(replication_throughput())),
        ("service", service_profile()),
        ("scenario", scenario_profile()),
        ("detlint", detlint_profile()),
    ]);

    if let Some(path) = out_path {
        std::fs::write(&path, profile.encode() + "\n").unwrap();
        println!("profile written to {path}");
    }
    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path).unwrap();
        let snapshot = Value::parse(text.trim_end()).unwrap();
        let mut failures = Vec::new();
        diff(&profile, &snapshot, tolerance, "", &mut failures);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("bench check FAILED {f}");
            }
            return ExitCode::FAILURE;
        }
        println!(
            "bench check passed against {path} (tolerance {:.0}%)",
            tolerance * 100.0
        );
    }
    ExitCode::SUCCESS
}
