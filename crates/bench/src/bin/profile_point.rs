//! Profiling aid: per-stage timings of one exact evaluation (rate
//! re-evaluation, per-state cost rewards, CTMC assembly, absorption solve)
//! at increasing system sizes. Used to attribute sweep time between the
//! explore / re-weight / solve stages when tuning the engine.
//!
//! Run with: `cargo run --release -p bench-harness --bin profile_point`

use gcsids::config::SystemConfig;
use gcsids::cost::cost_breakdown;
use gcsids::metrics::ExactTemplate;
use gcsids::model::{build_model, population};
use spn::ctmc::Ctmc;
use std::time::Instant;

fn main() {
    for n in [50u32, 100] {
        let mut cfg = SystemConfig::paper_default();
        cfg.node_count = n;
        let model = build_model(&cfg);
        let template = ExactTemplate::new(&cfg).unwrap();
        let graph = template.graph();

        let t0 = Instant::now();
        let mut acc = 0.0;
        for m in &graph.states {
            for (_, r) in model.net.enabled_timed(m).unwrap() {
                acc += r;
            }
        }
        let t_rates = t0.elapsed();

        let t0 = Instant::now();
        for m in &graph.states {
            acc += cost_breakdown(&cfg, &population(&model.places, m)).total();
        }
        let t_cost = t0.elapsed();

        let t0 = Instant::now();
        let ctmc = Ctmc::from_graph(graph).unwrap();
        let t_build = t0.elapsed();
        let t0 = Instant::now();
        let a = ctmc.mean_time_to_absorption().unwrap();
        let t_solve = t0.elapsed();

        // Transient cost scales with q·t_max: time the mission-survival
        // sweep at a day-scale horizon (the regime the crossval harness
        // and fig_survival run in).
        let t0 = Instant::now();
        let horizon = 0.05 * a.mtta;
        let grid: Vec<f64> = (1..=5).map(|i| horizon * i as f64 / 5.0).collect();
        let s = ctmc.survival_curve(&grid, &spn::ctmc::TransientOptions::default());
        let t_survival = t0.elapsed();
        println!(
            "N={n}: rates={t_rates:?} cost={t_cost:?} ctmc_build={t_build:?} solve={t_solve:?} \
             survival5pt@0.05mtta={t_survival:?} (mtta={:.3e}, S(end)={:.4}, acc={acc:.1})",
            a.mtta, s[4]
        );
    }
}
