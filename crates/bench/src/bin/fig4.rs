//! Regenerate Figure 4: MTTSF vs TIDS for logarithmic / linear / polynomial
//! detection under a linear attacker with m = 5.
//!
//! Paper reference: linear detection peaks near TIDS = 120 s; polynomial
//! detection does comparatively well at large TIDS (> 240 s); logarithmic
//! does comparatively well at small TIDS (< 15 s).

use bench_harness::{emit, fig4};
use gcsids::config::SystemConfig;

fn main() {
    let cfg = SystemConfig::paper_default();
    let t = fig4(&cfg).expect("figure 4 evaluation");
    emit(&t, "fig4_mttsf_vs_tids_by_detection.csv", true).expect("write results");
}
