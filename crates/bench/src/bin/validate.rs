//! Cross-validate the analytic SPN model against (a) the SPN Monte-Carlo
//! token game and (b) the protocol-level discrete-event simulation.
//!
//! An accelerated parameterization (faster attacker) keeps wall-clock time
//! reasonable while exercising exactly the same code paths; pass a first
//! argument `paper` to run the (slow) paper-scale validation instead.

use gcsids::config::SystemConfig;
use gcsids::des::{run_des_replications, DesConfig};
use gcsids::metrics::evaluate;
use gcsids::model::build_model;
use spn::reward::RewardSet;
use spn::sim::{SimOptions, Simulator};

fn main() {
    let paper_scale = std::env::args().nth(1).as_deref() == Some("paper");
    let mut cfg = SystemConfig::paper_default();
    let replications: u64 = if paper_scale {
        200
    } else {
        cfg.node_count = 30;
        cfg.attacker.base_rate = 1.0 / 1800.0; // one base compromise per 30 min
        cfg.detection = cfg.detection.with_interval(60.0);
        2_000
    };

    let analytic = evaluate(&cfg).expect("analytic evaluation");
    println!(
        "analytic : MTTSF = {:.4e} s, C_total = {:.4e} hop·bits/s",
        analytic.mttsf_seconds, analytic.c_total_hop_bits_per_sec
    );
    println!(
        "analytic : P[C1] = {:.3}, P[C2] = {:.3}, states = {}",
        analytic.p_failure_c1, analytic.p_failure_c2, analytic.state_count
    );

    // (a) SPN token-game simulation — same abstraction, independent solver.
    let model = build_model(&cfg);
    let rewards = RewardSet::new();
    let sim = Simulator::new(&model.net, &rewards, SimOptions::default());
    let stats = sim.run_replications(replications, 42).expect("token game");
    let ci = stats.mtta_ci(0.95);
    println!(
        "token game: MTTSF = {:.4e} s ± {:.2e} (95% CI, n = {}) → analytic inside: {}",
        ci.mean,
        ci.half_width,
        replications,
        ci.contains(analytic.mttsf_seconds)
    );

    // (b) protocol-level DES — actual votes, actual rekey accounting.
    let des = DesConfig::new(cfg.clone());
    let d = run_des_replications(&des, replications, 43);
    let dci = d.mttsf.confidence_interval(0.95);
    println!(
        "protocol  : MTTSF = {:.4e} s ± {:.2e} (95% CI), C1/C2 = {}/{}, cost rate = {:.4e}",
        dci.mean,
        dci.half_width,
        d.c1_failures,
        d.c2_failures,
        d.cost_rate.mean()
    );
    let rel = (dci.mean - analytic.mttsf_seconds).abs() / analytic.mttsf_seconds;
    println!(
        "protocol  : relative MTTSF deviation from analytic = {:.1}%",
        rel * 100.0
    );
}
