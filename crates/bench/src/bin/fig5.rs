//! Regenerate Figure 5: C_total vs TIDS for the three detection functions
//! under a linear attacker with m = 5.
//!
//! Paper reference: linear detection is cheapest near TIDS = 240 s;
//! polynomial is the most expensive at small TIDS; logarithmic becomes the
//! expensive one at large TIDS.

use bench_harness::{emit, fig5};
use gcsids::config::SystemConfig;

fn main() {
    let cfg = SystemConfig::paper_default();
    let t = fig5(&cfg).expect("figure 5 evaluation");
    emit(&t, "fig5_cost_vs_tids_by_detection.csv", false).expect("write results");
}
