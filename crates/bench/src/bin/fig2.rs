//! Regenerate Figure 2: MTTSF vs TIDS as the number of vote participants m
//! varies (linear attacker, linear detection).
//!
//! Paper reference points: optimal TIDS = 480, 60, 15, 5 s for
//! m = 3, 5, 7, 9, with MTTSF increasing in m.

use bench_harness::{emit, fig2};
use gcsids::config::SystemConfig;

fn main() {
    let cfg = SystemConfig::paper_default();
    let t = fig2(&cfg).expect("figure 2 evaluation");
    emit(&t, "fig2_mttsf_vs_tids_by_m.csv", true).expect("write results");
}
