//! Shared machinery for the figure-regeneration harnesses.
//!
//! Each of the paper's evaluation figures (2–5) has a runner here that
//! produces a [`FigureTable`]: the same x-grid and series the paper plots.
//! The `fig2 … fig5` binaries print the table and write a CSV under
//! `results/`; the Criterion benches time representative points of the
//! same computations.
//!
//! All figure runners are thin adapters over [`engine::Runner`]: they
//! expand a [`engine::ScenarioGrid`] over the paper's axes, run the batch
//! (one state-space exploration for the whole figure — explore once, solve
//! many), and reshape the [`engine::RunReport`]s into table rows.

use engine::{BackendKind, EngineError, RunReport, Runner, ScenarioGrid, ScenarioSpec};
use gcsids::config::SystemConfig;
use ids::functions::RateShape;
use std::io::Write;
use std::path::Path;

/// A figure reproduced as rows of numbers.
#[derive(Debug, Clone)]
pub struct FigureTable {
    /// Figure title.
    pub title: String,
    /// Meaning of the x values.
    pub x_label: String,
    /// Meaning of the y values.
    pub y_label: String,
    /// The x grid (TIDS values).
    pub x: Vec<f64>,
    /// Labelled series, each aligned with `x`.
    pub series: Vec<(String, Vec<f64>)>,
}

impl FigureTable {
    /// Render as an aligned text table (the shape the paper reports).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&format!("# y: {}\n", self.y_label));
        out.push_str(&format!("{:>12}", self.x_label));
        for (label, _) in &self.series {
            out.push_str(&format!("{label:>16}"));
        }
        out.push('\n');
        for (i, x) in self.x.iter().enumerate() {
            out.push_str(&format!("{x:>12.0}"));
            for (_, ys) in &self.series {
                out.push_str(&format!("{:>16.4e}", ys[i]));
            }
            out.push('\n');
        }
        out
    }

    /// Write a CSV (`x,series1,series2,…`).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        write!(f, "{}", self.x_label)?;
        for (label, _) in &self.series {
            write!(f, ",{label}")?;
        }
        writeln!(f)?;
        for (i, x) in self.x.iter().enumerate() {
            write!(f, "{x}")?;
            for (_, ys) in &self.series {
                write!(f, ",{}", ys[i])?;
            }
            writeln!(f)?;
        }
        f.flush()
    }

    /// Per-series x achieving the maximum y.
    pub fn argmax_per_series(&self) -> Vec<(String, f64)> {
        self.extremum_per_series(true)
    }

    /// Per-series x achieving the minimum y.
    pub fn argmin_per_series(&self) -> Vec<(String, f64)> {
        self.extremum_per_series(false)
    }

    fn extremum_per_series(&self, max: bool) -> Vec<(String, f64)> {
        self.series
            .iter()
            .map(|(label, ys)| {
                let idx = ys
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        let (x, y) = (*a.1, *b.1);
                        let ord = x.partial_cmp(&y).expect("no NaN in figures");
                        if max {
                            ord
                        } else {
                            ord.reverse()
                        }
                    })
                    .expect("non-empty series")
                    .0;
                (label.clone(), self.x[idx])
            })
            .collect()
    }
}

/// Which report metric a figure plots.
#[derive(Debug, Clone, Copy)]
enum Metric {
    Mttsf,
    CostRate,
}

impl Metric {
    fn extract(self, r: &RunReport) -> f64 {
        match self {
            Metric::Mttsf => r.mttsf.value,
            Metric::CostRate => r.c_total.value,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Metric::Mttsf => "MTTSF (s)",
            Metric::CostRate => "C_total (hop·bits/s)",
        }
    }
}

/// Run a `series × TIDS` grid through the engine and reshape the reports
/// into a table: the outer axis produces one labelled series each, the
/// inner axis is the shared TIDS grid. The whole figure shares a single
/// state-space exploration inside [`Runner::run_batch`].
fn figure_via_engine(
    title: &str,
    cfg: &SystemConfig,
    grid: &[f64],
    metric: Metric,
    series_axis: impl Fn(ScenarioGrid) -> ScenarioGrid,
    series_labels: Vec<String>,
) -> Result<FigureTable, EngineError> {
    let mut base = ScenarioSpec::paper_default(BackendKind::Exact);
    base.name = "fig".into();
    base.system = cfg.clone();
    let specs = series_axis(ScenarioGrid::new(base)).tids(grid).expand();
    debug_assert_eq!(specs.len(), series_labels.len() * grid.len());
    let reports = Runner::new().run_batch(&specs)?;
    let series = series_labels
        .into_iter()
        .enumerate()
        .map(|(i, label)| {
            let ys = reports[i * grid.len()..(i + 1) * grid.len()]
                .iter()
                .map(|r| metric.extract(r))
                .collect();
            (label, ys)
        })
        .collect();
    Ok(FigureTable {
        title: title.into(),
        x_label: "TIDS_s".into(),
        y_label: metric.label().into(),
        x: grid.to_vec(),
        series,
    })
}

fn by_m(
    title: &str,
    cfg: &SystemConfig,
    grid: &[f64],
    metric: Metric,
) -> Result<FigureTable, EngineError> {
    let ms = SystemConfig::paper_m_grid();
    figure_via_engine(
        title,
        cfg,
        grid,
        metric,
        |g| g.vote_participants(ms),
        ms.iter().map(|m| format!("m={m}")).collect(),
    )
}

fn by_shape(
    title: &str,
    cfg: &SystemConfig,
    grid: &[f64],
    metric: Metric,
) -> Result<FigureTable, EngineError> {
    figure_via_engine(
        title,
        cfg,
        grid,
        metric,
        |g| g.detection_shapes(&RateShape::all()),
        RateShape::all()
            .iter()
            .map(|s| format!("{} detection", s.name()))
            .collect(),
    )
}

/// Figure 2: MTTSF vs TIDS for m ∈ {3, 5, 7, 9} (linear attacker/detection).
///
/// # Errors
/// Propagates evaluation failures.
pub fn fig2(cfg: &SystemConfig) -> Result<FigureTable, EngineError> {
    by_m(
        "Figure 2: effect of m on MTTSF and optimal TIDS",
        cfg,
        SystemConfig::paper_tids_grid(),
        Metric::Mttsf,
    )
}

/// Figure 3: Ĉtotal vs TIDS for m ∈ {3, 5, 7, 9} (the paper's Fig. 3 x-axis
/// starts at 30 s).
///
/// # Errors
/// Propagates evaluation failures.
pub fn fig3(cfg: &SystemConfig) -> Result<FigureTable, EngineError> {
    by_m(
        "Figure 3: effect of m on C_total and optimal TIDS",
        cfg,
        &SystemConfig::paper_tids_grid()[2..], // 30 … 1200 s
        Metric::CostRate,
    )
}

/// Figure 4: MTTSF vs TIDS for the three detection shapes (linear attacker,
/// m = 5).
///
/// # Errors
/// Propagates evaluation failures.
pub fn fig4(cfg: &SystemConfig) -> Result<FigureTable, EngineError> {
    by_shape(
        "Figure 4: effect of TIDS on MTTSF per detection function (linear attacker, m=5)",
        cfg,
        SystemConfig::paper_tids_grid(),
        Metric::Mttsf,
    )
}

/// Figure 5: Ĉtotal vs TIDS for the three detection shapes (the paper's
/// Fig. 5 x-axis starts at 15 s).
///
/// # Errors
/// Propagates evaluation failures.
pub fn fig5(cfg: &SystemConfig) -> Result<FigureTable, EngineError> {
    by_shape(
        "Figure 5: effect of TIDS on C_total per detection function (linear attacker, m=5)",
        cfg,
        &SystemConfig::paper_tids_grid()[1..], // 15 … 1200 s
        Metric::CostRate,
    )
}

/// Mission-survivability figure: exact `P[no security failure by t]` per
/// vote-participant count `m`, on a mission grid scaled to the base
/// configuration's MTTSF (so the curves always span the planning-relevant
/// band regardless of parameterization). One state-space exploration
/// serves all `m` series via the batched runner, and each curve is one
/// uniformization sweep.
///
/// The horizon is 0.1 × MTTSF — the hours-to-days regime where mission
/// planning happens, and where uniformization (cost ∝ q·t_max) stays
/// cheap at paper scale; push the factor up only with profiling
/// (`profile_point` times the sweep).
///
/// # Errors
/// Propagates evaluation failures.
pub fn fig_survival(cfg: &SystemConfig, points: usize) -> Result<FigureTable, EngineError> {
    // One template serves both the MTTSF probe (which scales the grid) and
    // every m series: the vote-participant count is rate-only, so all
    // evaluations share this single state-space exploration.
    let template = gcsids::metrics::ExactTemplate::new(cfg)?;
    let probe = template.evaluate(cfg)?;
    let horizon = 0.1 * probe.mttsf_seconds;
    let times: Vec<f64> = (0..=points)
        .map(|i| horizon * i as f64 / points as f64)
        .collect();

    let ms = SystemConfig::paper_m_grid();
    let series = ms
        .iter()
        .map(|&m| {
            let (_, survival) =
                template.evaluate_with_survival(&cfg.with_vote_participants(m), &times)?;
            Ok((format!("m={m}"), survival.expect("mission grid requested")))
        })
        .collect::<Result<Vec<(String, Vec<f64>)>, EngineError>>()?;
    Ok(FigureTable {
        title: "Mission survivability: P[survive t] by vote participants m".into(),
        x_label: "t (s)".into(),
        y_label: "P[no security failure by t] (exact, uniformization)".into(),
        x: times,
        series,
    })
}

/// Default output directory for CSVs.
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(std::env::var("RESULTS_DIR").unwrap_or_else(|_| "results".into()))
}

/// Print a table, write its CSV, and report per-series optima.
///
/// # Errors
/// Propagates I/O failures (evaluation failures abort earlier).
pub fn emit(table: &FigureTable, csv_name: &str, maximize: bool) -> std::io::Result<()> {
    println!("{}", table.render());
    let optima = if maximize {
        table.argmax_per_series()
    } else {
        table.argmin_per_series()
    };
    let goal = if maximize { "max MTTSF" } else { "min C_total" };
    for (label, t) in optima {
        println!("optimal TIDS ({goal}) for {label}: {t:.0} s");
    }
    let path = results_dir().join(csv_name);
    table.write_csv(&path)?;
    println!("\ncsv written: {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SystemConfig {
        let mut c = SystemConfig::paper_default();
        c.node_count = 10;
        c.vote_participants = 3;
        c
    }

    #[test]
    fn table_render_and_extrema() {
        let t = FigureTable {
            title: "T".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            x: vec![1.0, 2.0, 3.0],
            series: vec![
                ("a".into(), vec![5.0, 9.0, 7.0]),
                ("b".into(), vec![3.0, 2.0, 4.0]),
            ],
        };
        let s = t.render();
        assert!(s.contains("# T"));
        assert!(s.contains('a') && s.contains('b'));
        assert_eq!(
            t.argmax_per_series(),
            vec![("a".into(), 2.0), ("b".into(), 3.0)]
        );
        assert_eq!(
            t.argmin_per_series(),
            vec![("a".into(), 1.0), ("b".into(), 2.0)]
        );
    }

    #[test]
    fn csv_roundtrip() {
        let t = FigureTable {
            title: "T".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            x: vec![1.0, 2.0],
            series: vec![("a".into(), vec![5.0, 9.0])],
        };
        let dir = std::env::temp_dir().join("gcsids_bench_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.starts_with("x,a"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fig_runners_produce_full_tables() {
        // tiny system so this stays fast; full scale is exercised by bins
        let t2 = fig2(&tiny_cfg()).unwrap();
        assert_eq!(t2.series.len(), 4);
        assert_eq!(t2.x.len(), 9);
        let t4 = fig4(&tiny_cfg()).unwrap();
        assert_eq!(t4.series.len(), 3);
        let t3 = fig3(&tiny_cfg()).unwrap();
        assert_eq!(t3.x[0], 30.0);
        let t5 = fig5(&tiny_cfg()).unwrap();
        assert_eq!(t5.x[0], 15.0);
        assert!(t5.series.iter().all(|(_, ys)| ys.iter().all(|&y| y > 0.0)));
    }

    #[test]
    fn fig_survival_produces_proper_curves() {
        let t = fig_survival(&tiny_cfg(), 8).unwrap();
        assert_eq!(t.series.len(), 4);
        assert_eq!(t.x.len(), 9);
        assert_eq!(t.x[0], 0.0);
        for (label, ys) in &t.series {
            assert!((ys[0] - 1.0).abs() < 1e-9, "{label}: S(0) = {}", ys[0]);
            for w in ys.windows(2) {
                assert!(w[1] <= w[0] + 1e-9, "{label}: not monotone {ys:?}");
            }
        }
    }
}
