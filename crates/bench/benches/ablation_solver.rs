//! Ablation: stationary-solver choice for the MTTSF linear system
//! (Gauss–Seidel vs Jacobi vs SOR vs dense LU) on the paper-scale model —
//! the design choice called out in DESIGN.md §6.

use criterion::{criterion_group, criterion_main, Criterion};
use gcsids::config::SystemConfig;
use gcsids::model::build_model;
use numerics::linsolve::{dense_lu_solve, gauss_seidel, jacobi, sor, IterConfig};
use numerics::sparse::Triplets;
use spn::reach::{explore, ExploreOptions};
use std::hint::black_box;

/// Build the transient-system matrix of a mid-sized instance once.
fn build_system(n: u32) -> (numerics::sparse::Csr, Vec<f64>) {
    let mut cfg = SystemConfig::paper_default();
    cfg.node_count = n;
    cfg.vote_participants = 3;
    let model = build_model(&cfg);
    let graph = explore(&model.net, &ExploreOptions::default()).unwrap();
    // Assemble (Q_TT)^T exactly the way the CTMC solver does.
    let n_states = graph.state_count();
    let transient: Vec<usize> = (0..n_states).filter(|&i| !graph.absorbing[i]).collect();
    let mut local = vec![usize::MAX; n_states];
    for (li, &gi) in transient.iter().enumerate() {
        local[gi] = li;
    }
    let nt = transient.len();
    let mut t = Triplets::new(nt, nt);
    for (li, &gi) in transient.iter().enumerate() {
        let exit: f64 = graph.edges[gi].iter().map(|e| e.rate).sum();
        t.push(li, li, -exit);
        for e in &graph.edges[gi] {
            if local[e.target as usize] != usize::MAX {
                t.push(local[e.target as usize], li, e.rate);
            }
        }
    }
    let mut b = vec![0.0; nt];
    b[0] = -1.0;
    (t.build(), b)
}

fn bench_solvers(c: &mut Criterion) {
    let (a, b) = build_system(30);
    let cfg = IterConfig {
        tolerance: 1e-12,
        max_iterations: 200_000,
        omega: 1.2,
    };
    let mut g = c.benchmark_group("mtta_solver");
    g.sample_size(10);
    g.bench_function("gauss_seidel", |bch| {
        bch.iter(|| gauss_seidel(black_box(&a), black_box(&b), &cfg).0[0])
    });
    g.bench_function("jacobi", |bch| {
        bch.iter(|| jacobi(black_box(&a), black_box(&b), &cfg).0[0])
    });
    g.bench_function("sor_1.2", |bch| {
        bch.iter(|| sor(black_box(&a), black_box(&b), &cfg).0[0])
    });
    if a.rows() <= 3000 {
        let dense = a.to_dense();
        g.bench_function("dense_lu", |bch| {
            bch.iter(|| dense_lu_solve(black_box(&dense), black_box(&b)).unwrap()[0])
        });
    }
    g.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
