//! Ablation: modelling a probabilistic branch with immediate transitions
//! (vanishing markings eliminated during reachability) versus flattening
//! the branch into pre-multiplied timed rates (DESIGN.md §6).
//!
//! The two nets are stochastically identical; the benchmark quantifies the
//! exploration overhead of vanishing-marking elimination.

use criterion::{criterion_group, criterion_main, Criterion};
use spn::ctmc::Ctmc;
use spn::model::{Spn, SpnBuilder, TransitionDef};
use spn::reach::{explore, ExploreOptions};
use std::hint::black_box;

const N: u32 = 60;
const DETECT_RATE: f64 = 0.05;
const P_CATCH: f64 = 0.8;

/// Detection fires, then an immediate coin flip decides caught vs missed.
fn with_immediates() -> Spn {
    let mut b = SpnBuilder::new();
    let up = b.add_place("up", N);
    let pending = b.add_place("pending", 0);
    let caught = b.add_place("caught", 0);
    let missed = b.add_place("missed", 0);
    b.add_transition(
        TransitionDef::timed("detect", move |m| DETECT_RATE * m.tokens(up) as f64)
            .input(up, 1)
            .output(pending, 1),
    );
    b.add_transition(
        TransitionDef::immediate_weighted("hit", |_| P_CATCH, 0)
            .input(pending, 1)
            .output(caught, 1),
    );
    b.add_transition(
        TransitionDef::immediate_weighted("miss", |_| 1.0 - P_CATCH, 0)
            .input(pending, 1)
            .output(missed, 1),
    );
    b.build().unwrap()
}

/// The same chain with the branch pre-multiplied into two timed rates.
fn flattened() -> Spn {
    let mut b = SpnBuilder::new();
    let up = b.add_place("up", N);
    let caught = b.add_place("caught", 0);
    let missed = b.add_place("missed", 0);
    b.add_transition(
        TransitionDef::timed("hit", move |m| DETECT_RATE * P_CATCH * m.tokens(up) as f64)
            .input(up, 1)
            .output(caught, 1),
    );
    b.add_transition(
        TransitionDef::timed("miss", move |m| {
            DETECT_RATE * (1.0 - P_CATCH) * m.tokens(up) as f64
        })
        .input(up, 1)
        .output(missed, 1),
    );
    b.build().unwrap()
}

fn bench_vanishing(c: &mut Criterion) {
    let imm = with_immediates();
    let flat = flattened();
    // sanity: both yield the same MTTA
    let mtta = |net: &Spn| {
        let g = explore(net, &ExploreOptions::default()).unwrap();
        Ctmc::from_graph(&g)
            .unwrap()
            .mean_time_to_absorption()
            .unwrap()
            .mtta
    };
    let (a, b2) = (mtta(&imm), mtta(&flat));
    assert!(
        (a - b2).abs() < 1e-6 * a,
        "ablation nets disagree: {a} vs {b2}"
    );

    let mut g = c.benchmark_group("vanishing_elimination");
    g.sample_size(20);
    g.bench_function("immediate_branch", |b| {
        b.iter(|| {
            explore(black_box(&imm), &ExploreOptions::default())
                .unwrap()
                .state_count()
        })
    });
    g.bench_function("flattened_rates", |b| {
        b.iter(|| {
            explore(black_box(&flat), &ExploreOptions::default())
                .unwrap()
                .state_count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_vanishing);
criterion_main!(benches);
