//! Engine microbenchmarks: reachability generation, CTMC absorption solve,
//! uniformization transient, GDH key agreement, mobility/connectivity step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcsids::config::SystemConfig;
use gcsids::model::build_model;
use manet::{ConnectivityGraph, MobilityConfig, RandomWaypoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spn::ctmc::{Ctmc, TransientOptions};
use spn::reach::{explore, ExploreOptions};
use std::hint::black_box;

fn bench_reachability(c: &mut Criterion) {
    let mut g = c.benchmark_group("spn_reachability");
    g.sample_size(10);
    for &n in &[25u32, 50, 100] {
        g.bench_with_input(BenchmarkId::new("N", n), &n, |b, &n| {
            let mut cfg = SystemConfig::paper_default();
            cfg.node_count = n;
            cfg.vote_participants = 3;
            let model = build_model(&cfg);
            b.iter(|| {
                explore(black_box(&model.net), &ExploreOptions::default())
                    .unwrap()
                    .state_count()
            })
        });
    }
    g.finish();
}

fn bench_absorption(c: &mut Criterion) {
    let mut g = c.benchmark_group("ctmc_absorption");
    g.sample_size(10);
    for &n in &[25u32, 50, 100] {
        let mut cfg = SystemConfig::paper_default();
        cfg.node_count = n;
        cfg.vote_participants = 3;
        let model = build_model(&cfg);
        let graph = explore(&model.net, &ExploreOptions::default()).unwrap();
        let ctmc = Ctmc::from_graph(&graph).unwrap();
        g.bench_with_input(BenchmarkId::new("N", n), &n, |b, _| {
            b.iter(|| black_box(&ctmc).mean_time_to_absorption().unwrap().mtta)
        });
    }
    g.finish();
}

fn bench_transient(c: &mut Criterion) {
    let mut cfg = SystemConfig::paper_default();
    cfg.node_count = 25;
    cfg.vote_participants = 3;
    let model = build_model(&cfg);
    let graph = explore(&model.net, &ExploreOptions::default()).unwrap();
    let ctmc = Ctmc::from_graph(&graph).unwrap();
    let mut g = c.benchmark_group("ctmc_transient");
    g.sample_size(10);
    g.bench_function("occupancy_t1e4", |b| {
        b.iter(|| ctmc.expected_occupancy(black_box(1.0e4), &TransientOptions::default()))
    });
    g.finish();
}

fn bench_gdh(c: &mut Criterion) {
    let mut g = c.benchmark_group("gdh_family");
    for &n in &[8usize, 32, 100] {
        g.bench_with_input(BenchmarkId::new("gdh2_members", n), &n, |b, &n| {
            let ids: Vec<u32> = (0..n as u32).collect();
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut s = gcs::gdh::GdhSession::new(&ids, &mut rng);
                s.run()
            })
        });
        g.bench_with_input(BenchmarkId::new("gdh3_members", n), &n, |b, &n| {
            let ids: Vec<u32> = (0..n as u32).collect();
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut s = gcs::gdh3::Gdh3Session::new(&ids, &mut rng);
                s.run()
            })
        });
    }
    g.finish();
}

fn bench_mobility(c: &mut Criterion) {
    let mut g = c.benchmark_group("mobility_step_and_connectivity");
    for &n in &[100usize, 400] {
        g.bench_with_input(BenchmarkId::new("nodes", n), &n, |b, &n| {
            let cfg = MobilityConfig {
                node_count: n,
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(5);
            let mut m = RandomWaypoint::new(cfg, &mut rng);
            b.iter(|| {
                m.step(1.0, &mut rng);
                let pos = m.positions();
                ConnectivityGraph::build(black_box(&pos), 250.0).component_count()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_reachability,
    bench_absorption,
    bench_transient,
    bench_gdh,
    bench_mobility
);
criterion_main!(benches);
