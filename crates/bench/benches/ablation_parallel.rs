//! Ablation: serial vs rayon-parallel Monte-Carlo replications and figure
//! sweeps (DESIGN.md §6).

use criterion::{criterion_group, criterion_main, Criterion};
use gcsids::config::SystemConfig;
use gcsids::des::{run_des, run_des_replications, DesConfig};
use numerics::rng::child_seed;
use std::hint::black_box;

fn hot_cfg() -> DesConfig {
    let mut c = SystemConfig::paper_default();
    c.node_count = 20;
    c.vote_participants = 3;
    c.attacker.base_rate = 1.0 / 600.0;
    DesConfig::new(c)
}

fn bench_replications(c: &mut Criterion) {
    let cfg = hot_cfg();
    let mut g = c.benchmark_group("des_replications_x64");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..64u64 {
                acc += run_des(black_box(&cfg), child_seed(7, i)).time;
            }
            acc
        })
    });
    g.bench_function("rayon", |b| {
        b.iter(|| run_des_replications(black_box(&cfg), 64, 7).mttsf.mean())
    });
    g.finish();
}

criterion_group!(benches, bench_replications);
criterion_main!(benches);
