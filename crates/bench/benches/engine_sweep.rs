//! Measures the tentpole claim: explore-once-solve-many rate-only sweeps
//! via graph re-weighting vs. per-point re-exploration, on the Figure-2
//! grid (TIDS × m at a fixed structural family).
//!
//! Three benchmarks per system size:
//!
//! * `per_point_explore` — the legacy orchestration: every grid point
//!   builds its model and re-explores the state space before solving.
//! * `explore_once_reweight` — the engine path: one exploration, each grid
//!   point re-weights the cached graph and solves.
//! * `engine_batch` — the full `Runner::run_batch`, including spec
//!   validation and report assembly, for the end-to-end number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{BackendKind, Runner, ScenarioGrid, ScenarioSpec};
use gcsids::config::SystemConfig;
use gcsids::metrics::{evaluate, ExactTemplate};
use std::hint::black_box;

/// Figure-2 axes: the paper's TIDS grid crossed with the m grid.
fn fig2_points(cfg: &SystemConfig) -> Vec<SystemConfig> {
    let mut out = Vec::new();
    for &m in SystemConfig::paper_m_grid() {
        for &t in SystemConfig::paper_tids_grid() {
            if m < cfg.node_count {
                out.push(cfg.with_vote_participants(m).with_tids(t));
            }
        }
    }
    out
}

fn sized(n: u32) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.node_count = n;
    cfg
}

fn bench_sweep_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_grid_sweep");
    g.sample_size(10);
    for &n in &[25u32, 50, 100] {
        let cfg = sized(n);
        let points = fig2_points(&cfg);

        g.bench_with_input(BenchmarkId::new("per_point_explore", n), &n, |b, _| {
            b.iter(|| {
                let total: f64 = points
                    .iter()
                    .map(|p| evaluate(black_box(p)).unwrap().mttsf_seconds)
                    .sum();
                total
            })
        });

        g.bench_with_input(BenchmarkId::new("explore_once_reweight", n), &n, |b, _| {
            b.iter(|| {
                let template = ExactTemplate::new(black_box(&cfg)).unwrap();
                let total: f64 = points
                    .iter()
                    .map(|p| template.evaluate(p).unwrap().mttsf_seconds)
                    .sum();
                total
            })
        });

        let mut base = ScenarioSpec::paper_default(BackendKind::Exact);
        base.system = cfg.clone();
        let specs = ScenarioGrid::new(base)
            .vote_participants(SystemConfig::paper_m_grid())
            .tids(SystemConfig::paper_tids_grid())
            .expand();
        g.bench_with_input(BenchmarkId::new("engine_batch", n), &n, |b, _| {
            let runner = Runner::new();
            b.iter(|| {
                let reports = runner.run_batch(black_box(&specs)).unwrap();
                reports.iter().map(|r| r.mttsf.value).sum::<f64>()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sweep_strategies);
criterion_main!(benches);
