//! Criterion benchmark of the Figure-4 computation: MTTSF evaluation per
//! detection shape at paper scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcsids::config::SystemConfig;
use gcsids::metrics::evaluate;
use ids::functions::RateShape;
use std::hint::black_box;

fn bench_fig4_points(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let mut g = c.benchmark_group("fig4_mttsf_by_detection");
    g.sample_size(10);
    for shape in RateShape::all() {
        g.bench_with_input(
            BenchmarkId::new("shape", shape.name()),
            &shape,
            |b, &shape| {
                let cfg = cfg.with_detection_shape(shape).with_tids(120.0);
                b.iter(|| evaluate(black_box(&cfg)).unwrap().mttsf_seconds);
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig4_points);
criterion_main!(benches);
