//! Criterion benchmark of the mission-survivability path: the exact
//! uniformization survival sweep at paper scale (N = 100), alone and as the
//! marginal cost on top of a steady MTTSF solve — plus the single-segment
//! vs whole-grid comparison that justifies the sequential propagation.

use criterion::{criterion_group, criterion_main, Criterion};
use engine::{backend_for, BackendKind, RunBudget, ScenarioSpec};
use gcsids::model::build_model;
use spn::ctmc::{Ctmc, TransientOptions};
use spn::reach::{explore, ExploreOptions};
use std::hint::black_box;

fn mission_grid(points: usize, horizon: f64) -> Vec<f64> {
    (0..=points)
        .map(|i| horizon * i as f64 / points as f64)
        .collect()
}

fn bench_survival_sweep(c: &mut Criterion) {
    // N = 50 and a 0.05·MTTSF horizon keep one sweep sub-second
    // (uniformization cost ∝ q·t_max; profile_point reports the N = 100
    // numbers) while preserving the sweep-vs-per-point comparison.
    let mut spec = ScenarioSpec::paper_default(BackendKind::Exact);
    spec.system.node_count = 50;
    let model = build_model(&spec.system);
    let graph = explore(&model.net, &ExploreOptions::default()).unwrap();
    let ctmc = Ctmc::from_graph(&graph).unwrap();
    let horizon = 0.05 * ctmc.mean_time_to_absorption().unwrap().mtta;
    let opts = TransientOptions::default();

    let mut g = c.benchmark_group("fig_survival");
    g.sample_size(10);
    g.bench_function("uniformization_sweep_24pt", |b| {
        let grid = mission_grid(24, horizon);
        b.iter(|| ctmc.survival_curve(black_box(&grid), &opts));
    });
    g.bench_function("per_point_transients_24pt", |b| {
        // the naive alternative the sequential sweep replaces
        let grid = mission_grid(24, horizon);
        b.iter(|| {
            grid.iter()
                .map(|&t| ctmc.transient_distribution(t, &opts))
                .map(|pi| {
                    pi.iter()
                        .zip(ctmc.absorbing())
                        .filter_map(|(&x, &a)| (!a).then_some(x))
                        .sum::<f64>()
                })
                .collect::<Vec<f64>>()
        });
    });
    g.bench_function("engine_exact_with_mission_grid", |b| {
        let mut s = spec.clone();
        s.mission_times = mission_grid(24, horizon);
        let backend = backend_for(BackendKind::Exact);
        b.iter(|| backend.run(black_box(&s), &RunBudget::default()).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_survival_sweep);
criterion_main!(benches);
