//! Criterion benchmark of the Figure-2 computation: one full MTTSF
//! evaluation per (m, TIDS) representative point at paper scale (N = 100).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcsids::config::SystemConfig;
use gcsids::metrics::evaluate;
use std::hint::black_box;

fn bench_fig2_points(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let mut g = c.benchmark_group("fig2_mttsf_point");
    g.sample_size(10);
    for &m in SystemConfig::paper_m_grid() {
        g.bench_with_input(BenchmarkId::new("m", m), &m, |b, &m| {
            let cfg = cfg.with_vote_participants(m).with_tids(120.0);
            b.iter(|| evaluate(black_box(&cfg)).unwrap().mttsf_seconds);
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig2_points);
criterion_main!(benches);
