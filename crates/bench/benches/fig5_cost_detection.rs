//! Criterion benchmark of the Figure-5 computation: C_total evaluation per
//! detection shape, plus the voting-probability kernel the rates call.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcsids::config::SystemConfig;
use gcsids::metrics::evaluate;
use ids::functions::RateShape;
use ids::voting::{p_false_negative, p_false_positive};
use std::hint::black_box;

fn bench_fig5_points(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let mut g = c.benchmark_group("fig5_cost_by_detection");
    g.sample_size(10);
    for shape in RateShape::all() {
        g.bench_with_input(
            BenchmarkId::new("shape", shape.name()),
            &shape,
            |b, &shape| {
                let cfg = cfg.with_detection_shape(shape).with_tids(240.0);
                b.iter(|| evaluate(black_box(&cfg)).unwrap().c_total_hop_bits_per_sec);
            },
        );
    }
    g.finish();
}

fn bench_voting_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("voting_probabilities");
    for &m in SystemConfig::paper_m_grid() {
        g.bench_with_input(criterion::BenchmarkId::new("pfp_pfn_m", m), &m, |b, &m| {
            b.iter(|| {
                let fp = p_false_positive(black_box(70), black_box(20), m, 0.01);
                let fnn = p_false_negative(black_box(70), black_box(20), m, 0.01);
                fp + fnn
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig5_points, bench_voting_kernel);
criterion_main!(benches);
