//! Criterion benchmark of the Figure-3 computation: C_total evaluation per
//! representative (m, TIDS) point, plus the per-state cost-model kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcsids::config::SystemConfig;
use gcsids::cost::cost_breakdown;
use gcsids::metrics::evaluate;
use gcsids::model::Population;
use std::hint::black_box;

fn bench_fig3_points(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    let mut g = c.benchmark_group("fig3_cost_point");
    g.sample_size(10);
    for &m in &[3u32, 9] {
        g.bench_with_input(BenchmarkId::new("m", m), &m, |b, &m| {
            let cfg = cfg.with_vote_participants(m).with_tids(240.0);
            b.iter(|| evaluate(black_box(&cfg)).unwrap().c_total_hop_bits_per_sec);
        });
    }
    g.finish();
}

fn bench_cost_kernel(c: &mut Criterion) {
    let cfg = SystemConfig::paper_default();
    c.bench_function("cost_breakdown_kernel", |b| {
        let pop = Population {
            trusted: 80,
            undetected: 10,
            groups: 2,
        };
        b.iter(|| cost_breakdown(black_box(&cfg), black_box(&pop)).total());
    });
}

criterion_group!(benches, bench_fig3_points, bench_cost_kernel);
criterion_main!(benches);
