//! Regression tests pinning the engine's exact backend to the legacy
//! `gcsids::metrics::evaluate` path: same numbers, same failure split, same
//! state space — whether run singly or through the batched
//! explore-once-solve-many runner.

use engine::{BackendKind, Runner, ScenarioGrid, ScenarioSpec};
use gcsids::config::SystemConfig;
use gcsids::metrics::evaluate;

fn assert_close(a: f64, b: f64, what: &str) {
    let rel = (a - b).abs() / b.abs().max(1e-300);
    assert!(rel < 1e-9, "{what}: {a} vs {b} (rel {rel:.3e})");
}

/// The acceptance-criterion pin: engine output == legacy `evaluate()` on the
/// paper's §5 defaults across a TIDS grid, through the batched runner.
#[test]
fn exact_backend_matches_legacy_evaluate_on_paper_defaults() {
    let tids_grid = [30.0, 120.0, 600.0];
    let base = ScenarioSpec::paper_default(BackendKind::Exact);
    let specs = ScenarioGrid::new(base).tids(&tids_grid).expand();
    let reports = Runner::new().run_batch(&specs).unwrap();

    for (&t, report) in tids_grid.iter().zip(&reports) {
        let legacy = evaluate(&SystemConfig::paper_default().with_tids(t)).unwrap();
        assert_close(report.mttsf.value, legacy.mttsf_seconds, "MTTSF");
        assert_close(
            report.c_total.value,
            legacy.c_total_hop_bits_per_sec,
            "C_total",
        );
        assert_close(report.failure.p_c1, legacy.p_failure_c1, "P[C1]");
        assert_close(report.failure.p_c2, legacy.p_failure_c2, "P[C2]");
        assert_eq!(report.state_count, Some(legacy.state_count));
        assert_eq!(report.edge_count, Some(legacy.edge_count));
        let comp = report
            .cost_components
            .expect("exact backend reports components");
        assert_close(
            comp.total(),
            legacy.cost_components.total(),
            "component total",
        );
    }
}

/// Same pin on a small system across the full (m × TIDS × shape) rate-only
/// product — the family the explore-once path accelerates.
#[test]
fn exact_backend_matches_legacy_on_rate_only_product() {
    let mut base = ScenarioSpec::paper_default(BackendKind::Exact);
    base.system.node_count = 12;
    base.system.vote_participants = 3;
    let specs = ScenarioGrid::new(base.clone())
        .tids(&[5.0, 60.0, 480.0])
        .vote_participants(&[3, 5])
        .detection_shapes(&ids::functions::RateShape::all())
        .expand();
    assert_eq!(specs.len(), 18);
    let reports = Runner::new().run_batch(&specs).unwrap();
    for (spec, report) in specs.iter().zip(&reports) {
        let legacy = evaluate(&spec.system).unwrap();
        assert_close(report.mttsf.value, legacy.mttsf_seconds, &spec.name);
        assert_close(
            report.c_total.value,
            legacy.c_total_hop_bits_per_sec,
            &spec.name,
        );
    }
}
