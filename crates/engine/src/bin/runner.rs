//! Cross-backend validation harness over on-disk scenario specs.
//!
//! ```text
//! runner --specs <dir> [--out <file>] [--confidence 0.99] [--mttsf-rel-tol 0.2]
//!        [--survival-abs-tol 0.05] [--survival-sup-tol X] [--max-replications N]
//!        [--max-states N] [--mobility] [--quiet]
//! ```
//!
//! Every `*.json` [`engine::ScenarioSpec`] in `--specs` runs on the exact
//! backend and on each applicable stochastic backend; the exact value must
//! lie inside the stochastic confidence interval (or within the explicit
//! modeling tolerance) metric-by-metric and mission-grid-point-by-point.
//! A machine-readable agreement report is written to `--out` (or printed),
//! a human summary goes to stderr, and the exit code is non-zero on any
//! disagreement — ready for CI.

use engine::{cross_validate_dir, CrossValOptions, CrossValReport};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    specs: PathBuf,
    out: Option<PathBuf>,
    opts: CrossValOptions,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: runner --specs <dir> [--out <file>] [--confidence <c>] \
         [--mttsf-rel-tol <x>] [--survival-abs-tol <x>] [--survival-sup-tol <x>] \
         [--max-replications <n>] [--max-states <n>] [--mobility] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut specs: Option<PathBuf> = None;
    let mut out = None;
    let mut opts = CrossValOptions::default();
    let mut quiet = false;
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage()
        })
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--specs" => specs = Some(PathBuf::from(value(&mut args, "--specs"))),
            "--out" => out = Some(PathBuf::from(value(&mut args, "--out"))),
            "--confidence" => {
                opts.confidence = parse_num(&value(&mut args, "--confidence"), "--confidence")
            }
            "--mttsf-rel-tol" => {
                opts.mttsf_rel_tol =
                    parse_num(&value(&mut args, "--mttsf-rel-tol"), "--mttsf-rel-tol")
            }
            "--survival-abs-tol" => {
                opts.survival_abs_tol = parse_num(
                    &value(&mut args, "--survival-abs-tol"),
                    "--survival-abs-tol",
                )
            }
            // The tighter sup_t |ΔS| acceptance bound (reported always,
            // enforced only when this flag is given).
            "--survival-sup-tol" => {
                opts.survival_sup_tol = Some(parse_num(
                    &value(&mut args, "--survival-sup-tol"),
                    "--survival-sup-tol",
                ))
            }
            "--max-replications" => {
                opts.budget.max_replications = Some(parse_count(
                    &value(&mut args, "--max-replications"),
                    "--max-replications",
                ))
            }
            "--max-states" => {
                opts.budget.max_states =
                    parse_count(&value(&mut args, "--max-states"), "--max-states") as usize
            }
            "--mobility" => opts.include_mobility = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    let Some(specs) = specs else {
        eprintln!("--specs is required");
        usage()
    };
    Args {
        specs,
        out,
        opts,
        quiet,
    }
}

fn parse_num(text: &str, flag: &str) -> f64 {
    text.parse().unwrap_or_else(|_| {
        eprintln!("bad value `{text}` for {flag}");
        usage()
    })
}

/// Strictly positive integer (a zero budget would make every comparison
/// vacuous).
fn parse_count(text: &str, flag: &str) -> u64 {
    match text.parse::<u64>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} needs a positive integer, got `{text}`");
            usage()
        }
    }
}

fn summarize(report: &CrossValReport) {
    for s in &report.specs {
        eprintln!(
            "{} [{}]  exact MTTSF {:.4e} s",
            s.name,
            if s.agrees { "ok" } else { "DISAGREES" },
            s.exact.mttsf.value
        );
        for c in &s.comparisons {
            let verdict = if c.agrees { "ok" } else { "DISAGREES" };
            eprintln!(
                "  vs {:<12} {:>10}  ({} checks, {} skipped)",
                c.backend.name(),
                verdict,
                c.checks.len(),
                c.skipped.len()
            );
            for ch in c.checks.iter().filter(|ch| !ch.agrees) {
                eprintln!(
                    "    {}: exact {:.4e} vs {:.4e} (CI {:?}), discrepancy {:.3}",
                    ch.metric, ch.exact, ch.estimate.value, ch.estimate.ci, ch.discrepancy
                );
            }
        }
    }
    if let Some((name, backend, ch)) = report.worst_offender() {
        eprintln!(
            "worst offender: {name} vs {} on {} (discrepancy {:.4})",
            backend.name(),
            ch.metric,
            ch.discrepancy
        );
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let report = match cross_validate_dir(&args.specs, &args.opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("runner: {e}");
            return ExitCode::from(2);
        }
    };
    if !args.quiet {
        summarize(&report);
    }
    let json = report.to_json();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("runner: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!("agreement report written to {}", path.display());
        }
        None => println!("{json}"),
    }
    if report.agrees() {
        eprintln!("cross-backend validation: all specs agree");
        ExitCode::SUCCESS
    } else {
        eprintln!("cross-backend validation: DISAGREEMENT detected");
        ExitCode::FAILURE
    }
}
