//! Cross-backend validation harness and scenario-evaluation service over
//! on-disk scenario specs.
//!
//! ```text
//! runner --specs <dir> [--out <file>] [--confidence 0.99] [--mttsf-rel-tol 0.2]
//!        [--survival-abs-tol 0.05] [--survival-sup-tol X] [--max-replications N]
//!        [--max-states N] [--mobility] [--quiet]
//!
//! runner serve --spool <dir> --results <dir> [--workers N] [--queue-limit N]
//!        [--poll-ms N] [--max-states N] [--max-replications N]
//!        [--cache-templates N] [--cache-states N] [--drain]
//!
//! runner compare --baseline <spec.json> --variant <spec.json> [--out <file>]
//!        [--backend <kind>] [--max-replications N] [--max-states N]
//! ```
//!
//! **Cross-validation mode** (the default): every `*.json`
//! [`engine::ScenarioSpec`] in `--specs` runs on the exact backend and on
//! each applicable stochastic backend; the exact value must lie inside the
//! stochastic confidence interval (or within the explicit modeling
//! tolerance) metric-by-metric and mission-grid-point-by-point. A
//! machine-readable agreement report is written to `--out` (or printed), a
//! human summary goes to stderr, and the exit code is non-zero on any
//! disagreement **or any per-spec failure** (failures are isolated and
//! named in the report, never aborting the rest of the directory) — ready
//! for CI.
//!
//! **Compare mode**: a CRN-paired A/B comparison (see [`engine::paired`])
//! of two stochastic specs sharing a master seed and replication grid.
//! The [`engine::ComparisonReport`] JSON — per-replication-differenced
//! ΔMTTSF, Δcost, and Δsurvival with paired *and* unpaired interval
//! half-widths — goes to `--out` (or stdout), a summary to stderr.
//!
//! **Serve mode**: a persistent daemon watching `--spool` for spec files
//! and streaming reports (plus adaptive-sampling progress) into
//! `--results`, with a cross-request template cache — see
//! [`engine::service`] for the spool protocol and eviction policy. Exits
//! zero when every processed spec succeeded, 1 otherwise.

use engine::service::{serve, ServiceConfig};
use engine::{cross_validate_dir, CrossValOptions, CrossValReport, ScenarioSpec};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    specs: PathBuf,
    out: Option<PathBuf>,
    opts: CrossValOptions,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: runner --specs <dir> [--out <file>] [--confidence <c>] \
         [--mttsf-rel-tol <x>] [--survival-abs-tol <x>] [--survival-sup-tol <x>] \
         [--max-replications <n>] [--max-states <n>] [--mobility] [--quiet]\n\
         \n\
         runner serve --spool <dir> --results <dir> [--workers <n>] \
         [--queue-limit <n>] [--poll-ms <n>] [--max-states <n>] \
         [--max-replications <n>] [--cache-templates <n>] [--cache-states <n>] \
         [--drain]\n\
         \n\
         runner compare --baseline <spec.json> --variant <spec.json> \
         [--out <file>] [--backend <kind>] [--max-replications <n>] \
         [--max-states <n>]"
    );
    std::process::exit(2);
}

fn next_value(args: &mut dyn Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("missing value for {flag}");
        usage()
    })
}

fn parse_args(args: &mut dyn Iterator<Item = String>) -> Args {
    let mut specs: Option<PathBuf> = None;
    let mut out = None;
    let mut opts = CrossValOptions::default();
    let mut quiet = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--specs" => specs = Some(PathBuf::from(next_value(args, "--specs"))),
            "--out" => out = Some(PathBuf::from(next_value(args, "--out"))),
            "--confidence" => {
                opts.confidence = parse_num(&next_value(args, "--confidence"), "--confidence")
            }
            "--mttsf-rel-tol" => {
                opts.mttsf_rel_tol =
                    parse_num(&next_value(args, "--mttsf-rel-tol"), "--mttsf-rel-tol")
            }
            "--survival-abs-tol" => {
                opts.survival_abs_tol = parse_num(
                    &next_value(args, "--survival-abs-tol"),
                    "--survival-abs-tol",
                )
            }
            // The tighter sup_t |ΔS| acceptance bound (reported always,
            // enforced only when this flag is given).
            "--survival-sup-tol" => {
                opts.survival_sup_tol = Some(parse_num(
                    &next_value(args, "--survival-sup-tol"),
                    "--survival-sup-tol",
                ))
            }
            "--max-replications" => {
                opts.budget.max_replications = Some(parse_count(
                    &next_value(args, "--max-replications"),
                    "--max-replications",
                ))
            }
            "--max-states" => {
                opts.budget.max_states =
                    parse_count(&next_value(args, "--max-states"), "--max-states") as usize
            }
            "--mobility" => opts.include_mobility = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    let Some(specs) = specs else {
        eprintln!("--specs is required");
        usage()
    };
    Args {
        specs,
        out,
        opts,
        quiet,
    }
}

fn parse_serve_args(args: &mut dyn Iterator<Item = String>) -> ServiceConfig {
    let mut spool: Option<PathBuf> = None;
    let mut results: Option<PathBuf> = None;
    let mut cfg = ServiceConfig::new("", "");
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--spool" => spool = Some(PathBuf::from(next_value(args, "--spool"))),
            "--results" => results = Some(PathBuf::from(next_value(args, "--results"))),
            "--workers" => {
                cfg.workers = parse_count(&next_value(args, "--workers"), "--workers") as usize
            }
            "--queue-limit" => {
                cfg.queue_limit =
                    parse_count(&next_value(args, "--queue-limit"), "--queue-limit") as usize
            }
            "--poll-ms" => {
                cfg.poll_interval =
                    Duration::from_millis(parse_count(&next_value(args, "--poll-ms"), "--poll-ms"))
            }
            "--max-states" => {
                cfg.budget.max_states =
                    parse_count(&next_value(args, "--max-states"), "--max-states") as usize
            }
            "--max-replications" => {
                cfg.budget.max_replications = Some(parse_count(
                    &next_value(args, "--max-replications"),
                    "--max-replications",
                ))
            }
            "--cache-templates" => {
                cfg.cache_budget.max_templates =
                    parse_count(&next_value(args, "--cache-templates"), "--cache-templates")
                        as usize
            }
            "--cache-states" => {
                cfg.cache_budget.max_cached_states =
                    parse_count(&next_value(args, "--cache-states"), "--cache-states") as usize
            }
            "--drain" => cfg.drain = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    let (Some(spool), Some(results)) = (spool, results) else {
        eprintln!("serve requires --spool and --results");
        usage()
    };
    cfg.spool = spool;
    cfg.results = results;
    cfg
}

fn parse_num(text: &str, flag: &str) -> f64 {
    text.parse().unwrap_or_else(|_| {
        eprintln!("bad value `{text}` for {flag}");
        usage()
    })
}

/// Strictly positive integer (a zero budget would make every comparison
/// vacuous).
fn parse_count(text: &str, flag: &str) -> u64 {
    match text.parse::<u64>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} needs a positive integer, got `{text}`");
            usage()
        }
    }
}

fn summarize(report: &CrossValReport) {
    for s in &report.specs {
        eprintln!(
            "{} [{}]  exact MTTSF {:.4e} s",
            s.name,
            if s.agrees { "ok" } else { "DISAGREES" },
            s.exact.mttsf.value
        );
        for c in &s.comparisons {
            let verdict = if c.agrees { "ok" } else { "DISAGREES" };
            eprintln!(
                "  vs {:<12} {:>10}  ({} checks, {} skipped)",
                c.backend.name(),
                verdict,
                c.checks.len(),
                c.skipped.len()
            );
            for ch in c.checks.iter().filter(|ch| !ch.agrees) {
                eprintln!(
                    "    {}: exact {:.4e} vs {:.4e} (CI {:?}), discrepancy {:.3}",
                    ch.metric, ch.exact, ch.estimate.value, ch.estimate.ci, ch.discrepancy
                );
            }
        }
    }
    for f in &report.failures {
        eprintln!("{} [FAILED]  {}", f.spec, f.error);
    }
    if let Some((name, backend, ch)) = report.worst_offender() {
        eprintln!(
            "worst offender: {name} vs {} on {} (discrepancy {:.4})",
            backend.name(),
            ch.metric,
            ch.discrepancy
        );
    }
}

fn serve_main(args: &mut dyn Iterator<Item = String>) -> ExitCode {
    let cfg = parse_serve_args(args);
    let summary = match serve(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("runner serve: {e}");
            return ExitCode::from(2);
        }
    };
    let c = summary.cache;
    eprintln!(
        "service: {} processed, {} failed | cache: {} hits / {} misses / {} evictions / {} bypasses ({} resident, {} states)",
        summary.processed,
        summary.failed,
        c.hits,
        c.misses,
        c.evictions,
        c.bypasses,
        c.entries,
        c.cached_states
    );
    if summary.failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn compare_main(args: &mut dyn Iterator<Item = String>) -> ExitCode {
    let mut baseline: Option<PathBuf> = None;
    let mut variant: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut backend: Option<engine::BackendKind> = None;
    let mut budget = engine::RunBudget::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(next_value(args, "--baseline"))),
            "--variant" => variant = Some(PathBuf::from(next_value(args, "--variant"))),
            "--out" => out = Some(PathBuf::from(next_value(args, "--out"))),
            // pairing needs replications, but committed specs often carry
            // the exact backend — let the caller re-target both arms
            "--backend" => {
                let name = next_value(args, "--backend");
                match engine::BackendKind::from_name(&name) {
                    Ok(k) => backend = Some(k),
                    Err(e) => {
                        eprintln!("--backend: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--max-replications" => {
                budget.max_replications = Some(parse_count(
                    &next_value(args, "--max-replications"),
                    "--max-replications",
                ))
            }
            "--max-states" => {
                budget.max_states =
                    parse_count(&next_value(args, "--max-states"), "--max-states") as usize
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    let (Some(baseline), Some(variant)) = (baseline, variant) else {
        eprintln!("compare requires --baseline and --variant");
        usage()
    };
    let load = |path: &PathBuf| -> Result<ScenarioSpec, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let mut spec =
            ScenarioSpec::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if let Some(kind) = backend {
            spec.backend = kind;
        }
        Ok(spec)
    };
    let report = load(&baseline)
        .and_then(|b| Ok((b, load(&variant)?)))
        .and_then(|(b, v)| {
            engine::compare(&b, &v, &budget).map_err(|e| format!("comparison failed: {e}"))
        });
    let report = match report {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("runner compare: {msg}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "{} vs {} [{}], {} pairs: ΔMTTSF {:.4e} (paired ±{:.3e}, unpaired ±{:.3e}), Δcost {:.4e}",
        report.variant,
        report.baseline,
        report.backend.name(),
        report.replications,
        report.delta_mttsf.delta.value,
        report.delta_mttsf.paired_halfwidth,
        report.delta_mttsf.unpaired_halfwidth,
        report.delta_cost.delta.value,
    );
    let json = report.to_json();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("runner compare: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!("comparison report written to {}", path.display());
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("serve") {
        raw.next();
        return serve_main(&mut raw);
    }
    if raw.peek().map(String::as_str) == Some("compare") {
        raw.next();
        return compare_main(&mut raw);
    }
    let args = parse_args(&mut raw);
    let report = match cross_validate_dir(&args.specs, &args.opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("runner: {e}");
            return ExitCode::from(2);
        }
    };
    if !args.quiet {
        summarize(&report);
    }
    let json = report.to_json();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("runner: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!("agreement report written to {}", path.display());
        }
        None => println!("{json}"),
    }
    if !report.clean() {
        eprintln!(
            "cross-backend validation: {} spec(s) FAILED to load or evaluate",
            report.failures.len()
        );
        return ExitCode::FAILURE;
    }
    if report.agrees() {
        eprintln!("cross-backend validation: all specs agree");
        ExitCode::SUCCESS
    } else {
        eprintln!("cross-backend validation: DISAGREEMENT detected");
        ExitCode::FAILURE
    }
}
