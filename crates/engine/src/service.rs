//! Scenario-evaluation service: a persistent, file-system-driven daemon
//! around [`crate::Runner`] with a **cross-request template cache**.
//!
//! Networking stays off-limits in this repository, so the service speaks
//! a spool-directory protocol instead of sockets:
//!
//! 1. Clients drop `ScenarioSpec` JSON files into the spool directory as
//!    `<name>.json` (write to a temporary name, then rename — renames are
//!    atomic on the same filesystem, so the scanner never reads a
//!    half-written spec).
//! 2. The scanner claims a spec by renaming it to `<name>.claimed` and
//!    feeds it through a bounded in-memory queue to a worker pool; a full
//!    queue blocks the scanner (backpressure) instead of growing without
//!    bound.
//! 3. Workers evaluate each spec through [`crate::Runner::run_cached`]
//!    and stream results into the results directory:
//!    `<name>.report.json` (the [`RunReport`], written atomically) on
//!    success, `<name>.error.json` on failure, plus
//!    `<name>.progress.jsonl` with one line per adaptive-sampling round
//!    (`{"precision":…,"replications":…}`) while a stochastic evaluation
//!    is in flight.
//! 4. Dropping a file named `stop` into the spool shuts the service down
//!    after the queue drains; a summary lands in
//!    `results/service.summary.json`. [`ServiceConfig::drain`] instead
//!    exits as soon as one scan finds the spool empty (batch mode).
//!
//! The cross-request unlock is [`TemplateCache`]: exact specs are keyed
//! by structural family ([`FamilyKey`]) and their [`ExactTemplate`]
//! (pristine reachability graph + CTMC sparsity pattern) is memoized
//! across submissions, so repeat-family requests skip exploration and
//! pattern building entirely — the dominant per-family cost. Eviction is
//! LRU under a dual budget (entry count and total cached tangible
//! states); hit/miss/eviction counters are surfaced in every report's
//! `template_cache` field and in the bench snapshot.
//!
//! **Clustered keying.** [`FamilyKey`] includes the spec's
//! [`ClusterTopology`], so a flat-family entry can never satisfy a
//! clustered spec (and vice versa). Clustered exact specs are still
//! *bypassed* rather than cached: their evaluation lumps or composes a
//! different chain whose template shape ([`ExactTemplate`]) caches only
//! the single-system graph, so there is nothing reusable to store yet.
//! The bypass is sound — the key separation guarantees no stale flat hit
//! — and recorded per-request in the `bypasses` counter.

use crate::backend::RunBudget;
use crate::error::EngineError;
use crate::json::Value;
use crate::report::{CacheOutcome, TemplateCacheInfo};
use crate::runner::Runner;
use crate::spec::{BackendKind, ScenarioSpec};
use gcsids::config::ClusterTopology;
use gcsids::metrics::ExactTemplate;
use spn::reach::ExploreOptions;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

/// Structural family of a scenario spec — the unit of template reuse.
///
/// Two exact specs with equal keys share their reachability graph and
/// CTMC sparsity pattern; only rates and rewards differ, which the
/// template re-weights in place. The key deliberately includes the
/// cluster topology (satellite-2 regression: a clustered spec must never
/// be served from a flat-family entry, even though both share
/// `node_count`/`max_groups`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FamilyKey {
    /// Nodes in the (sub)system.
    pub node_count: u32,
    /// Maximum concurrent groups.
    pub max_groups: u32,
    /// Clustered deployment topology, `None` for flat systems.
    pub clustered: Option<ClusterTopology>,
}

impl FamilyKey {
    /// The structural family of `spec`.
    pub fn of(spec: &ScenarioSpec) -> Self {
        Self {
            node_count: spec.system.node_count,
            max_groups: spec.system.max_groups,
            clustered: spec.clustered,
        }
    }
}

/// Eviction budget of a [`TemplateCache`]: both limits hold at all times
/// (except that a single template larger than `max_cached_states` is
/// allowed to reside alone — evicting it would make the family
/// permanently uncacheable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheBudget {
    /// Maximum resident templates.
    pub max_templates: usize,
    /// Maximum total tangible CTMC states across resident templates — the
    /// size proxy (state count dominates a template's memory footprint).
    pub max_cached_states: usize,
}

impl Default for CacheBudget {
    fn default() -> Self {
        Self {
            max_templates: 32,
            max_cached_states: 4_000_000,
        }
    }
}

/// Lifetime counters of a [`TemplateCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a resident template.
    pub hits: u64,
    /// Lookups that built and inserted a template.
    pub misses: u64,
    /// Templates evicted under the budget.
    pub evictions: u64,
    /// Non-cacheable lookups (stochastic backends, clustered exact specs).
    pub bypasses: u64,
    /// Templates currently resident.
    pub entries: u64,
    /// Total tangible states across resident templates.
    pub cached_states: u64,
}

impl CacheStats {
    /// Hits over cacheable lookups (hits + misses); `None` before the
    /// first cacheable lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

struct CacheEntry {
    template: Arc<ExactTemplate>,
    states: usize,
    /// Logical LRU timestamp (monotone lookup counter).
    last_used: u64,
}

#[derive(Default)]
struct CacheState {
    // BTreeMap: `cached_states` sums and eviction scans iterate this map,
    // and the summary report exposes the results — key order must not
    // depend on hasher state. Ties on `last_used` now evict the smallest
    // key instead of an arbitrary one.
    entries: BTreeMap<FamilyKey, CacheEntry>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    bypasses: u64,
}

impl CacheState {
    fn cached_states(&self) -> usize {
        self.entries.values().map(|e| e.states).sum()
    }
}

/// Result of one [`TemplateCache::lookup`]: the resolved template (`None`
/// on a bypass) and how the cache classified the request.
pub type CacheLookup = (Option<Arc<ExactTemplate>>, CacheOutcome);

/// Cross-request memoization of [`ExactTemplate`]s by [`FamilyKey`] with
/// LRU eviction under a [`CacheBudget`] — the service's reason to exist:
/// repeat-family submissions skip state-space exploration and CTMC
/// pattern building.
///
/// Only flat exact specs are cacheable; stochastic and clustered-exact
/// lookups return [`CacheOutcome::Bypass`] (see the module docs for why
/// the clustered bypass is sound). A miss builds the template **inside**
/// the cache lock: concurrent same-family requests then cost one
/// exploration instead of racing to duplicate it, and the counters stay
/// deterministic under any worker count — the trade-off is that
/// different-family misses serialize their builds.
pub struct TemplateCache {
    budget: CacheBudget,
    state: Mutex<CacheState>,
}

impl fmt::Debug for TemplateCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TemplateCache")
            .field("budget", &self.budget)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for TemplateCache {
    fn default() -> Self {
        Self::new(CacheBudget::default())
    }
}

impl TemplateCache {
    /// Empty cache under `budget`.
    pub fn new(budget: CacheBudget) -> Self {
        Self {
            budget,
            state: Mutex::new(CacheState::default()),
        }
    }

    /// The eviction budget.
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    /// Current lifetime counters.
    pub fn stats(&self) -> CacheStats {
        // Poison recovery: a panicking template build must not take the
        // whole daemon down with it. The guarded state has no multi-step
        // invariants that a mid-section panic could leave half-applied.
        let s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        CacheStats {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            bypasses: s.bypasses,
            entries: s.entries.len() as u64,
            cached_states: s.cached_states() as u64,
        }
    }

    /// Per-report telemetry for a lookup that resolved to `outcome`.
    pub fn info(&self, outcome: CacheOutcome) -> TemplateCacheInfo {
        let s = self.stats();
        TemplateCacheInfo {
            outcome,
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            bypasses: s.bypasses,
            entries: s.entries,
            cached_states: s.cached_states,
        }
    }

    /// Resolve `spec`'s structural family: a resident template (hit), a
    /// freshly built and inserted one (miss), or `None` for non-cacheable
    /// specs (bypass).
    ///
    /// # Errors
    /// Propagates template construction failures (e.g. a state budget
    /// exceeded during exploration); nothing is inserted in that case.
    pub fn lookup(
        &self,
        spec: &ScenarioSpec,
        opts: &ExploreOptions,
    ) -> Result<CacheLookup, EngineError> {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        // Scenario specs bypass too: a scenario net has extra places and
        // transitions, so the cached single-system graph does not apply.
        if spec.backend != BackendKind::Exact || spec.clustered.is_some() || spec.scenario.is_some()
        {
            s.bypasses += 1;
            return Ok((None, CacheOutcome::Bypass));
        }
        let key = FamilyKey::of(spec);
        s.clock += 1;
        let now = s.clock;
        if let Some(entry) = s.entries.get_mut(&key) {
            entry.last_used = now;
            let template = Arc::clone(&entry.template);
            s.hits += 1;
            return Ok((Some(template), CacheOutcome::Hit));
        }
        let template = Arc::new(ExactTemplate::with_options(&spec.system, opts)?);
        s.misses += 1;
        s.entries.insert(
            key,
            CacheEntry {
                states: template.state_count(),
                template: Arc::clone(&template),
                last_used: now,
            },
        );
        while s.entries.len() > self.budget.max_templates
            || s.cached_states() > self.budget.max_cached_states
        {
            // Never evict the entry just inserted: a single oversized
            // template may reside alone rather than thrash forever.
            let victim = s
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    s.entries.remove(&k);
                    s.evictions += 1;
                }
                None => break,
            }
        }
        Ok((Some(template), CacheOutcome::Miss))
    }
}

/// Configuration of one [`serve`] loop.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Directory watched for incoming `<name>.json` spec files.
    pub spool: PathBuf,
    /// Directory receiving reports, errors, progress streams, and the
    /// shutdown summary.
    pub results: PathBuf,
    /// Sleep between spool scans that found nothing.
    pub poll_interval: Duration,
    /// Bound on specs queued but not yet evaluated; a full queue blocks
    /// the scanner (backpressure).
    pub queue_limit: usize,
    /// Worker threads evaluating specs.
    pub workers: usize,
    /// Budget applied to every evaluation.
    pub budget: RunBudget,
    /// Template-cache eviction budget.
    pub cache_budget: CacheBudget,
    /// Exit as soon as a scan finds the spool empty (batch mode) instead
    /// of polling until a `stop` sentinel arrives.
    pub drain: bool,
}

impl ServiceConfig {
    /// Defaults for the given directories: 25 ms polling, a 64-deep
    /// queue, two workers, default budgets, daemon (non-drain) mode.
    pub fn new(spool: impl Into<PathBuf>, results: impl Into<PathBuf>) -> Self {
        Self {
            spool: spool.into(),
            results: results.into(),
            poll_interval: Duration::from_millis(25),
            queue_limit: 64,
            workers: 2,
            budget: RunBudget::default(),
            cache_budget: CacheBudget::default(),
            drain: false,
        }
    }
}

/// What one [`serve`] loop did before shutting down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceSummary {
    /// Specs evaluated to a report.
    pub processed: u64,
    /// Specs that failed (unreadable, unparseable, or evaluation error);
    /// each left an `<name>.error.json` behind.
    pub failed: u64,
    /// Final template-cache counters.
    pub cache: CacheStats,
}

impl ServiceSummary {
    /// Encode as the `service.summary.json` document.
    pub fn to_json(&self) -> String {
        let c = self.cache;
        Value::obj([
            ("processed", Value::Num(self.processed as f64)),
            ("failed", Value::Num(self.failed as f64)),
            (
                "cache",
                Value::obj([
                    ("hits", Value::Num(c.hits as f64)),
                    ("misses", Value::Num(c.misses as f64)),
                    ("evictions", Value::Num(c.evictions as f64)),
                    ("bypasses", Value::Num(c.bypasses as f64)),
                    ("entries", Value::Num(c.entries as f64)),
                    ("cached_states", Value::Num(c.cached_states as f64)),
                    ("hit_rate", c.hit_rate().map_or(Value::Null, Value::Num)),
                ]),
            ),
        ])
        .encode()
    }
}

fn io_err(context: &str, e: &std::io::Error) -> EngineError {
    EngineError::InvalidSpec(format!("service i/o: {context}: {e}"))
}

/// One claimed submission travelling from the scanner to a worker.
struct Job {
    /// Submission name (`<name>.json` minus the extension).
    stem: String,
    /// The claimed spool file (deleted after processing).
    claimed: PathBuf,
}

/// Atomic write: temporary file in the target directory, then rename.
fn write_atomic(path: &Path, contents: &str) -> Result<(), EngineError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents).map_err(|e| io_err("write", &e))?;
    fs::rename(&tmp, path).map_err(|e| io_err("rename", &e))
}

/// Evaluate one claimed submission and leave its artifacts in `results`.
/// Returns whether the evaluation succeeded.
fn process_job(job: &Job, runner: &Runner, results: &Path) -> bool {
    let progress_path = results.join(format!("{}.progress.jsonl", job.stem));
    let outcome = fs::read_to_string(&job.claimed)
        .map_err(|e| io_err("read spec", &e))
        .and_then(|text| ScenarioSpec::from_json(&text))
        .and_then(|spec| {
            // Progress is appended per adaptive round as it happens — the
            // "streaming" half of the protocol. Best-effort throughout: a
            // progress stream that cannot be created (read-only results
            // dir, quota) or written must not fail the evaluation, so
            // creation failure is remembered (`Some(None)`) and rounds
            // simply skip the write instead of panicking the worker.
            let mut progress_file: Option<Option<fs::File>> = None;
            runner.run_cached_observed(&spec, &mut |p| {
                let slot =
                    progress_file.get_or_insert_with(|| fs::File::create(&progress_path).ok());
                let Some(file) = slot.as_mut() else {
                    return;
                };
                let line = Value::obj([
                    ("precision", p.precision.map_or(Value::Null, Value::Num)),
                    ("replications", Value::Num(p.replications as f64)),
                ])
                .encode();
                let _ = writeln!(file, "{line}");
            })
        });
    let ok = outcome.is_ok();
    let artifact = match outcome {
        Ok(report) => (
            results.join(format!("{}.report.json", job.stem)),
            report.to_json(),
        ),
        Err(e) => (
            results.join(format!("{}.error.json", job.stem)),
            Value::obj([
                ("spec", Value::Str(job.stem.clone())),
                ("error", Value::Str(e.to_string())),
            ])
            .encode(),
        ),
    };
    if write_atomic(&artifact.0, &artifact.1).is_err() {
        return false;
    }
    let _ = fs::remove_file(&job.claimed);
    ok
}

/// Scan the spool once, claim every ready spec (oldest name first), and
/// enqueue the claims. Returns the number of specs claimed, or `None`
/// when the `stop` sentinel was consumed.
fn scan_spool(spool: &Path, tx: &mpsc::SyncSender<Job>) -> Result<Option<usize>, EngineError> {
    let stop = spool.join("stop");
    if stop.exists() {
        let _ = fs::remove_file(&stop);
        return Ok(None);
    }
    let mut ready: Vec<PathBuf> = fs::read_dir(spool)
        .map_err(|e| io_err("scan spool", &e))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    ready.sort();
    let mut claimed = 0;
    for path in ready {
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        let claim = path.with_extension("claimed");
        // A failed rename means another scanner instance (or a client
        // retraction) won the race — skip, never error.
        if fs::rename(&path, &claim).is_err() {
            continue;
        }
        claimed += 1;
        let job = Job {
            stem: stem.to_string(),
            claimed: claim,
        };
        // Blocking send against the bounded queue is the backpressure:
        // the scanner (and therefore claiming) stalls until a worker
        // frees a slot.
        if tx.send(job).is_err() {
            break;
        }
    }
    Ok(Some(claimed))
}

/// Run the scenario-evaluation service until shutdown (the `stop`
/// sentinel, or an empty spool in [`ServiceConfig::drain`] mode), then
/// write `service.summary.json` into the results directory.
///
/// # Errors
/// Returns spool/results I/O failures. Per-spec failures do **not**
/// abort the loop — they are isolated into `<name>.error.json` artifacts
/// and counted in [`ServiceSummary::failed`] (satellite-1 semantics).
pub fn serve(cfg: &ServiceConfig) -> Result<ServiceSummary, EngineError> {
    fs::create_dir_all(&cfg.spool).map_err(|e| io_err("create spool", &e))?;
    fs::create_dir_all(&cfg.results).map_err(|e| io_err("create results", &e))?;
    let cache = Arc::new(TemplateCache::new(cfg.cache_budget));
    let runner = Runner::with_cache(cfg.budget, Arc::clone(&cache));
    let processed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_limit.max(1));
    let rx = Mutex::new(rx);
    let scan_result: Result<(), EngineError> = std::thread::scope(|scope| {
        for _ in 0..cfg.workers.max(1) {
            scope.spawn(|| loop {
                // Poison recovery: if a sibling worker panicked while
                // holding the queue lock, the receiver itself is still
                // sound — keep draining rather than cascading the panic.
                let job = match rx.lock().unwrap_or_else(PoisonError::into_inner).recv() {
                    Ok(job) => job,
                    Err(_) => break, // scanner hung up and the queue drained
                };
                if process_job(&job, &runner, &cfg.results) {
                    processed.fetch_add(1, Ordering::Relaxed);
                } else {
                    failed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let run = (|| loop {
            match scan_spool(&cfg.spool, &tx)? {
                None => return Ok(()), // stop sentinel
                Some(0) if cfg.drain => return Ok(()),
                Some(0) => std::thread::sleep(cfg.poll_interval),
                Some(_) => {}
            }
        })();
        drop(tx); // workers exit once the queue drains
        run
    });
    scan_result?;
    let summary = ServiceSummary {
        processed: processed.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        cache: cache.stats(),
    };
    write_atomic(
        &cfg.results.join("service.summary.json"),
        &summary.to_json(),
    )?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SamplingPlan;

    fn flat_spec(name: &str, node_count: u32) -> ScenarioSpec {
        let mut spec = ScenarioSpec::paper_default(BackendKind::Exact);
        spec.name = name.into();
        spec.system.node_count = node_count;
        spec.system.vote_participants = 3;
        spec
    }

    #[test]
    fn family_key_separates_clustered_from_flat() {
        let flat = flat_spec("flat", 12);
        let clustered = flat.clone().with_clusters(ClusterTopology {
            clusters: 3,
            failure_threshold: 2,
        });
        assert_ne!(FamilyKey::of(&flat), FamilyKey::of(&clustered));
        // and different topologies are distinct families too
        let other = flat.clone().with_clusters(ClusterTopology {
            clusters: 3,
            failure_threshold: 1,
        });
        assert_ne!(FamilyKey::of(&clustered), FamilyKey::of(&other));
    }

    #[test]
    fn cache_hits_after_first_build_and_counts_outcomes() {
        let cache = TemplateCache::default();
        let opts = ExploreOptions::default();
        let a = flat_spec("a", 12);
        let (t1, o1) = cache.lookup(&a, &opts).unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        let (t2, o2) = cache.lookup(&a, &opts).unwrap();
        assert_eq!(o2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&t1.unwrap(), &t2.unwrap()));
        // a rate-only variant of the same family still hits
        let mut b = flat_spec("b", 12);
        b.system = b.system.with_tids(30.0);
        assert_eq!(cache.lookup(&b, &opts).unwrap().1, CacheOutcome::Hit);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
        assert!(stats.cached_states > 0);
        assert_eq!(stats.hit_rate(), Some(2.0 / 3.0));
    }

    #[test]
    fn stochastic_and_clustered_specs_bypass() {
        let cache = TemplateCache::default();
        let opts = ExploreOptions::default();
        let mut des = flat_spec("des", 12);
        des.backend = BackendKind::Des;
        des.stochastic.sampling = SamplingPlan::Fixed(5);
        let (t, o) = cache.lookup(&des, &opts).unwrap();
        assert!(t.is_none());
        assert_eq!(o, CacheOutcome::Bypass);
        let clustered = flat_spec("c", 12).with_clusters(ClusterTopology {
            clusters: 2,
            failure_threshold: 1,
        });
        assert_eq!(
            cache.lookup(&clustered, &opts).unwrap().1,
            CacheOutcome::Bypass
        );
        let stats = cache.stats();
        assert_eq!((stats.bypasses, stats.entries), (2, 0));
    }

    #[test]
    fn lru_eviction_respects_both_budgets() {
        let cache = TemplateCache::new(CacheBudget {
            max_templates: 2,
            max_cached_states: usize::MAX,
        });
        let opts = ExploreOptions::default();
        cache.lookup(&flat_spec("a", 10), &opts).unwrap();
        cache.lookup(&flat_spec("b", 11), &opts).unwrap();
        // touch family a so b becomes the LRU victim
        cache.lookup(&flat_spec("a2", 10), &opts).unwrap();
        cache.lookup(&flat_spec("c", 12), &opts).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.evictions), (2, 1));
        // family a survived (hit), family b was evicted (miss rebuilds)
        assert_eq!(
            cache.lookup(&flat_spec("a3", 10), &opts).unwrap().1,
            CacheOutcome::Hit
        );
        assert_eq!(
            cache.lookup(&flat_spec("b2", 11), &opts).unwrap().1,
            CacheOutcome::Miss
        );

        // the state budget alone also evicts, but never the sole entry
        let tight = TemplateCache::new(CacheBudget {
            max_templates: 8,
            max_cached_states: 1,
        });
        tight.lookup(&flat_spec("a", 10), &opts).unwrap();
        tight.lookup(&flat_spec("b", 11), &opts).unwrap();
        let stats = tight.stats();
        assert_eq!((stats.entries, stats.evictions), (1, 1));
        assert!(stats.cached_states > 1, "oversized sole entry may reside");
    }

    #[test]
    fn lookup_failure_inserts_nothing() {
        let cache = TemplateCache::default();
        let opts = ExploreOptions {
            max_states: 3,
            ..Default::default()
        };
        assert!(cache.lookup(&flat_spec("a", 12), &opts).is_err());
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.entries), (0, 0));
    }

    #[test]
    fn summary_json_shape() {
        let summary = ServiceSummary {
            processed: 3,
            failed: 1,
            cache: CacheStats {
                hits: 2,
                misses: 1,
                evictions: 0,
                bypasses: 1,
                entries: 1,
                cached_states: 42,
            },
        };
        let text = summary.to_json();
        assert!(text.contains("\"processed\":3.0") || text.contains("\"processed\":3"));
        assert!(text.contains("\"hit_rate\":"));
        assert!(Value::parse(&text).is_ok());
    }
}
