//! Cross-backend validation: make the evaluators check each other.
//!
//! One scenario is run on the exact backend and on every applicable
//! stochastic backend, then compared metric-by-metric: MTTSF (when the
//! stochastic run observed uncensored failures) and every mission-grid
//! survival point. A stochastic estimate *agrees* with the exact value when
//! the exact value lies inside its confidence interval (level configurable
//! via [`CrossValOptions::confidence`] — the "z" knob) or, failing that,
//! when the discrepancy is inside an explicit modeling tolerance (the
//! protocol DES executes real votes rather than the analytic `Pfn`/`Pfp`,
//! so a small systematic gap is expected and documented — see
//! EXPERIMENTS.md).
//!
//! [`cross_validate_dir`] is the batch entry point behind the `runner`
//! binary: it loads every `*.json` [`ScenarioSpec`] in a directory,
//! cross-validates each, and produces one machine-readable
//! [`CrossValReport`] with per-point deltas and the worst offender.

use crate::backend::{backend_for, RunBudget};
use crate::error::EngineError;
use crate::json::Value;
use crate::report::{Estimate, RunReport};
use crate::runner::Runner;
use crate::spec::{BackendKind, ScenarioSpec};
use std::path::{Path, PathBuf};

/// Agreement-check configuration.
#[derive(Debug, Clone)]
pub struct CrossValOptions {
    /// Confidence level for the stochastic intervals used in containment
    /// checks (overrides each spec's own level, so one z applies across
    /// the whole run).
    pub confidence: f64,
    /// Relative modeling tolerance for MTTSF: a stochastic mean within
    /// this fraction of the exact value agrees even when the CI (which
    /// shrinks without bound with replications) excludes it.
    pub mttsf_rel_tol: f64,
    /// Absolute modeling tolerance for survival probabilities.
    pub survival_abs_tol: f64,
    /// Relative modeling tolerance for Ĉtotal. Deliberately loose: cost
    /// accounting differs structurally between the evaluators (event-level
    /// GDH charges and per-group vote floods vs state-averaged rates), so
    /// this guards against gross regressions — same ballpark, not
    /// statistical identity.
    pub cost_rel_tol: f64,
    /// Optional tighter acceptance criterion on the survival curve: the
    /// maximum absolute survival discrepancy over the mission grid,
    /// `sup_t |S_stochastic(t) − S_exact(t)|`, must stay at or below this
    /// bound. Unlike the per-point check (which passes whenever the exact
    /// value sits inside the per-point CI), this bounds the *worst* grid
    /// point with no statistical slack — `None` (the default) reports the
    /// sup without enforcing it.
    pub survival_sup_tol: Option<f64>,
    /// Resource budget applied to every run (cap replications here for
    /// quick CI sweeps).
    pub budget: RunBudget,
    /// Include the mobility-integrated DES. Off by default: it is by far
    /// the slowest backend and its group dynamics come from live
    /// connectivity rather than the calibrated birth–death rates, so it is
    /// only comparable when the spec's rates match its geometry.
    pub include_mobility: bool,
}

impl Default for CrossValOptions {
    fn default() -> Self {
        Self {
            confidence: 0.99,
            mttsf_rel_tol: 0.20,
            survival_abs_tol: 0.05,
            cost_rel_tol: 1.0,
            survival_sup_tol: None,
            budget: RunBudget::default(),
            include_mobility: false,
        }
    }
}

impl CrossValOptions {
    /// The stochastic backends a spec is checked against.
    pub fn applicable_backends(&self) -> Vec<BackendKind> {
        let mut kinds = vec![BackendKind::SpnSim, BackendKind::Des];
        if self.include_mobility {
            kinds.push(BackendKind::MobilityDes);
        }
        kinds
    }
}

/// One exact-vs-stochastic comparison of a single metric.
#[derive(Debug, Clone)]
pub struct MetricCheck {
    /// Metric label (`mttsf` or `survival@<t>`).
    pub metric: String,
    /// The exact backend's value.
    pub exact: f64,
    /// The stochastic backend's estimate (with interval).
    pub estimate: Estimate,
    /// Signed estimate − exact.
    pub delta: f64,
    /// `delta` relative to the exact value (absolute delta for survival
    /// probabilities, whose natural scale is already [0, 1]).
    pub discrepancy: f64,
    /// True when the exact value lies inside the stochastic interval.
    pub inside_ci: bool,
    /// True when the check passes (inside the CI or within the modeling
    /// tolerance).
    pub agrees: bool,
}

impl MetricCheck {
    fn new(metric: String, exact: f64, estimate: Estimate, tol: f64, relative: bool) -> Self {
        let inside_ci = estimate
            .ci
            .is_some_and(|(lo, hi)| lo <= exact && exact <= hi);
        let delta = estimate.value - exact;
        let discrepancy = if relative {
            delta.abs() / exact.abs().max(f64::MIN_POSITIVE)
        } else {
            delta.abs()
        };
        Self {
            metric,
            exact,
            estimate,
            delta,
            discrepancy,
            inside_ci,
            agrees: inside_ci || discrepancy <= tol,
        }
    }

    fn to_value(&self) -> Value {
        let num = crate::report::num;
        // An absent interval encodes as explicit nulls — never a NaN pair
        // that could leak into downstream comparisons.
        let (ci_lo, ci_hi) = match self.estimate.ci {
            Some((lo, hi)) => (num(lo), num(hi)),
            None => (Value::Null, Value::Null),
        };
        Value::obj([
            ("metric", Value::Str(self.metric.clone())),
            ("exact", num(self.exact)),
            ("estimate", num(self.estimate.value)),
            ("ci_lo", ci_lo),
            ("ci_hi", ci_hi),
            ("delta", num(self.delta)),
            ("discrepancy", num(self.discrepancy)),
            ("inside_ci", Value::Bool(self.inside_ci)),
            ("agrees", Value::Bool(self.agrees)),
        ])
    }
}

/// All checks of one stochastic backend against the exact reference.
#[derive(Debug, Clone)]
pub struct BackendComparison {
    /// The stochastic backend under test.
    pub backend: BackendKind,
    /// Its full report (for downstream tooling).
    pub report: RunReport,
    /// Per-metric checks.
    pub checks: Vec<MetricCheck>,
    /// Metrics that could not be compared (not estimable: censored MTTSF,
    /// grid points past the horizon) — reported, never silently dropped.
    pub skipped: Vec<String>,
    /// `sup_t |ΔS|`: the largest absolute survival discrepancy over the
    /// comparable mission-grid points (`None` when no point was
    /// comparable). Always reported; additionally enforced as a check
    /// when [`CrossValOptions::survival_sup_tol`] is set.
    pub survival_sup_delta: Option<f64>,
    /// True when every comparable metric agrees.
    pub agrees: bool,
}

/// Cross-validation verdict for one scenario.
#[derive(Debug, Clone)]
pub struct SpecCrossValidation {
    /// Scenario label.
    pub name: String,
    /// The exact reference report.
    pub exact: RunReport,
    /// One comparison per applicable stochastic backend.
    pub comparisons: Vec<BackendComparison>,
    /// True when every backend agrees.
    pub agrees: bool,
}

/// One spec that could not be loaded or evaluated. Failures are isolated
/// per spec — they never abort the rest of a directory run — and carried
/// in the report so a nonzero exit code can name every offender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecFailure {
    /// The offending spec: its file path (load failures) or scenario
    /// name (evaluation failures).
    pub spec: String,
    /// Human-readable error.
    pub error: String,
}

impl SpecFailure {
    fn to_value(&self) -> Value {
        Value::obj([
            ("spec", Value::Str(self.spec.clone())),
            ("error", Value::Str(self.error.clone())),
        ])
    }
}

/// The aggregate agreement report over a batch of scenarios.
#[derive(Debug, Clone, Default)]
pub struct CrossValReport {
    /// Per-scenario verdicts.
    pub specs: Vec<SpecCrossValidation>,
    /// Specs that failed to load or evaluate (isolated, not aborting).
    pub failures: Vec<SpecFailure>,
}

impl CrossValReport {
    /// True when every scenario agrees on every backend.
    pub fn agrees(&self) -> bool {
        self.specs.iter().all(|s| s.agrees)
    }

    /// True when every spec in the run loaded and evaluated. A run can
    /// [`CrossValReport::agrees`] on the specs it did validate and still
    /// be unclean — callers gating on success must check both.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// The check with the largest discrepancy across the whole run, as
    /// `(scenario, backend, check)` — the first thing to look at when a
    /// sweep disagrees.
    ///
    /// A `NaN` discrepancy (a non-finite exact value or estimate slipping
    /// through to a comparison) ranks **strictly worst**: it signals a
    /// broken comparison, which matters more than any finite gap, and it
    /// must never hide a real offender by sorting as "equal". `total_cmp`
    /// gives exactly that order (`discrepancy` comes from `abs()`, so a
    /// NaN here is always positive and sorts above `+inf`).
    pub fn worst_offender(&self) -> Option<(&str, BackendKind, &MetricCheck)> {
        self.specs
            .iter()
            .flat_map(|s| {
                s.comparisons.iter().flat_map(move |c| {
                    c.checks
                        .iter()
                        .map(move |ch| (s.name.as_str(), c.backend, ch))
                })
            })
            .max_by(|a, b| a.2.discrepancy.total_cmp(&b.2.discrepancy))
    }

    /// Machine-readable JSON for logs and CI artifacts.
    pub fn to_json(&self) -> String {
        let specs = self
            .specs
            .iter()
            .map(|s| {
                let comparisons = s
                    .comparisons
                    .iter()
                    .map(|c| {
                        Value::obj([
                            ("backend", Value::Str(c.backend.name().into())),
                            (
                                "checks",
                                Value::Arr(c.checks.iter().map(MetricCheck::to_value).collect()),
                            ),
                            (
                                "skipped",
                                Value::Arr(
                                    c.skipped.iter().map(|m| Value::Str(m.clone())).collect(),
                                ),
                            ),
                            (
                                "survival_sup_delta",
                                c.survival_sup_delta.map_or(Value::Null, crate::report::num),
                            ),
                            ("agrees", Value::Bool(c.agrees)),
                        ])
                    })
                    .collect();
                Value::obj([
                    ("name", Value::Str(s.name.clone())),
                    ("exact_mttsf", Value::Num(s.exact.mttsf.value)),
                    ("comparisons", Value::Arr(comparisons)),
                    ("agrees", Value::Bool(s.agrees)),
                ])
            })
            .collect();
        let worst = self
            .worst_offender()
            .map_or(Value::Null, |(name, kind, ch)| {
                // A NaN discrepancy encodes as null; name it explicitly so
                // the report stays unambiguous (and valid JSON).
                Value::obj([
                    ("scenario", Value::Str(name.into())),
                    ("backend", Value::Str(kind.name().into())),
                    ("metric", Value::Str(ch.metric.clone())),
                    ("discrepancy", crate::report::num(ch.discrepancy)),
                    ("not_a_number", Value::Bool(ch.discrepancy.is_nan())),
                ])
            });
        Value::obj([
            ("specs", Value::Arr(specs)),
            (
                "failures",
                Value::Arr(self.failures.iter().map(SpecFailure::to_value).collect()),
            ),
            ("worst_offender", worst),
            ("agrees", Value::Bool(self.agrees())),
            ("clean", Value::Bool(self.clean())),
        ])
        .encode()
    }
}

/// Compare a stochastic report against the exact reference.
fn compare(exact: &RunReport, stoch: RunReport, opts: &CrossValOptions) -> BackendComparison {
    let mut checks = Vec::new();
    let mut skipped = Vec::new();

    // MTTSF and the time-averaged cost are only unbiased when nothing was
    // censored: a censored mean is conditional on failing within the
    // horizon, systematically off the exact until-absorption quantities.
    // An estimate without a confidence interval (a single uncensored
    // replication) is likewise skipped-and-reported, not checked: with no
    // interval the containment test is meaningless and the raw one-sample
    // discrepancy would fail sound runs (or, before this guard, degrade
    // into NaN-bound comparisons).
    if stoch.censored.unwrap_or(0) > 0 {
        skipped.push("mttsf (censored replications bias the mean)".into());
        skipped.push("c_total (censored replications bias the rate)".into());
    } else if !stoch.mttsf.value.is_finite() {
        skipped.push("mttsf (not estimable)".into());
        skipped.push("c_total (not estimable)".into());
    } else if stoch.mttsf.ci.is_none() || stoch.c_total.ci.is_none() {
        skipped
            .push("mttsf (no confidence interval: fewer than two uncensored replications)".into());
        skipped.push(
            "c_total (no confidence interval: fewer than two uncensored replications)".into(),
        );
    } else {
        checks.push(MetricCheck::new(
            "mttsf".into(),
            exact.mttsf.value,
            stoch.mttsf,
            opts.mttsf_rel_tol,
            true,
        ));
        checks.push(MetricCheck::new(
            "c_total".into(),
            exact.c_total.value,
            stoch.c_total,
            opts.cost_rel_tol,
            true,
        ));
    }

    let mut survival_sup_delta: Option<f64> = None;
    match (&exact.survival, &stoch.survival) {
        (Some(exact_points), Some(stoch_points)) => {
            for ((t, e), (_, s)) in exact_points.iter().zip(stoch_points) {
                if !s.value.is_finite() {
                    skipped.push(format!(
                        "survival@{t} (not estimable: censoring before this horizon)"
                    ));
                } else if s.ci.is_none() {
                    skipped.push(format!("survival@{t} (no confidence interval)"));
                } else {
                    let check = MetricCheck::new(
                        format!("survival@{t}"),
                        e.value,
                        *s,
                        opts.survival_abs_tol,
                        false,
                    );
                    let sup = survival_sup_delta.get_or_insert(0.0);
                    *sup = sup.max(check.discrepancy);
                    checks.push(check);
                }
            }
        }
        (None, None) => {}
        _ => skipped.push("survival (grid missing on one side)".into()),
    }

    // The ROADMAP's tighter acceptance criterion: bound the worst grid
    // point, with no per-point CI slack. The sup itself is always carried
    // on the comparison; the check only exists when a bound is requested.
    if let (Some(sup), Some(tol)) = (survival_sup_delta, opts.survival_sup_tol) {
        checks.push(MetricCheck {
            metric: "survival_sup_abs_delta".into(),
            exact: 0.0,
            estimate: Estimate {
                value: sup,
                ci: None,
            },
            delta: sup,
            discrepancy: sup,
            inside_ci: false,
            agrees: sup <= tol,
        });
    }

    // An all-skipped comparison validated nothing — that must read as
    // disagreement, not as a vacuous pass (the skipped list says why).
    let agrees = !checks.is_empty() && checks.iter().all(|c| c.agrees);
    BackendComparison {
        backend: stoch.backend,
        report: stoch,
        checks,
        skipped,
        survival_sup_delta,
        agrees,
    }
}

/// The spec as the harness runs it: exact reference backend, one
/// confidence level across the whole run.
fn harness_base(spec: &ScenarioSpec, opts: &CrossValOptions) -> ScenarioSpec {
    let mut base = spec.clone();
    base.backend = BackendKind::Exact;
    base.stochastic.confidence = opts.confidence;
    base
}

/// Run every applicable stochastic backend against an already-computed
/// exact reference.
fn compare_against(
    base: &ScenarioSpec,
    exact: RunReport,
    opts: &CrossValOptions,
) -> Result<SpecCrossValidation, EngineError> {
    let mut comparisons = Vec::new();
    for kind in opts.applicable_backends() {
        let mut s = base.clone();
        s.backend = kind;
        let report = backend_for(kind).run(&s, &opts.budget)?;
        comparisons.push(compare(&exact, report, opts));
    }
    let agrees = comparisons.iter().all(|c| c.agrees);
    Ok(SpecCrossValidation {
        name: base.name.clone(),
        exact,
        comparisons,
        agrees,
    })
}

/// Cross-validate one scenario: exact reference vs every applicable
/// stochastic backend. The spec's own `backend` field is ignored — the
/// harness decides where it runs.
///
/// # Errors
/// Propagates spec validation and backend failures.
pub fn cross_validate(
    spec: &ScenarioSpec,
    opts: &CrossValOptions,
) -> Result<SpecCrossValidation, EngineError> {
    let base = harness_base(spec, opts);
    let exact = backend_for(BackendKind::Exact).run(&base, &opts.budget)?;
    compare_against(&base, exact, opts)
}

/// Load every `*.json` scenario spec in `dir`, sorted by file name.
///
/// # Errors
/// Returns [`EngineError::Json`] for unreadable directories/files and
/// malformed specs (the offending path is named in the message).
pub fn load_spec_dir(dir: &Path) -> Result<Vec<(PathBuf, ScenarioSpec)>, EngineError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| EngineError::Json(format!("cannot read spec dir {}: {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p)
                .map_err(|e| EngineError::Json(format!("cannot read {}: {e}", p.display())))?;
            let spec = ScenarioSpec::from_json(&text)
                .map_err(|e| EngineError::Json(format!("{}: {e}", p.display())))?;
            Ok((p, spec))
        })
        .collect()
}

/// What [`load_spec_dir_lenient`] yields: the specs that parsed (with
/// their source paths) and the per-file failures.
pub type LenientSpecs = (Vec<(PathBuf, ScenarioSpec)>, Vec<SpecFailure>);

/// [`load_spec_dir`] with per-file error isolation: unreadable or
/// malformed files become [`SpecFailure`]s instead of aborting the load.
///
/// # Errors
/// Only an unreadable *directory* is fatal.
pub fn load_spec_dir_lenient(dir: &Path) -> Result<LenientSpecs, EngineError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| EngineError::Json(format!("cannot read spec dir {}: {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    let mut loaded = Vec::new();
    let mut failures = Vec::new();
    for p in paths {
        let outcome = std::fs::read_to_string(&p)
            .map_err(|e| EngineError::Json(format!("cannot read: {e}")))
            .and_then(|text| ScenarioSpec::from_json(&text));
        match outcome {
            Ok(spec) => loaded.push((p, spec)),
            Err(e) => failures.push(SpecFailure {
                spec: p.display().to_string(),
                error: e.to_string(),
            }),
        }
    }
    Ok((loaded, failures))
}

/// Cross-validate every spec file in a directory. The exact references run
/// through the batched [`Runner`], so rate-only spec variants of one
/// structural family share a single state-space exploration.
///
/// Per-spec failures — malformed files, validation errors, evaluation
/// errors — are isolated into [`CrossValReport::failures`] and the rest
/// of the directory still validates; gate on [`CrossValReport::clean`]
/// (the `runner` binary exits nonzero when it is false).
///
/// # Errors
/// An unreadable directory or a directory with no `.json` files at all is
/// an error (a harness that validates nothing should not report success).
pub fn cross_validate_dir(
    dir: &Path,
    opts: &CrossValOptions,
) -> Result<CrossValReport, EngineError> {
    let (loaded, failures) = load_spec_dir_lenient(dir)?;
    if loaded.is_empty() && failures.is_empty() {
        return Err(EngineError::Json(format!(
            "no .json specs found in {}",
            dir.display()
        )));
    }
    let bases: Vec<ScenarioSpec> = loaded
        .iter()
        .map(|(_, spec)| harness_base(spec, opts))
        .collect();
    let exact_results = Runner::with_budget(opts.budget).try_batch(&bases);
    let mut report = CrossValReport {
        specs: Vec::new(),
        failures,
    };
    for ((path, _), (base, exact)) in loaded.iter().zip(bases.iter().zip(exact_results)) {
        match exact.and_then(|e| compare_against(base, e, opts)) {
            Ok(v) => report.specs.push(v),
            Err(e) => report.failures.push(SpecFailure {
                spec: path.display().to_string(),
                error: e.to_string(),
            }),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SamplingPlan;
    use gcsids::config::SystemConfig;

    /// Small, fast-failing system mirroring the backend tests.
    fn hot_spec() -> ScenarioSpec {
        let mut sys = SystemConfig::paper_default();
        sys.node_count = 12;
        sys.vote_participants = 3;
        sys.attacker.base_rate = 1.0 / 600.0;
        sys.detection = sys.detection.with_interval(120.0);
        let mut spec = ScenarioSpec::paper_default(BackendKind::Exact);
        spec.name = "crossval-hot".into();
        spec.system = sys;
        spec.stochastic.sampling = SamplingPlan::Fixed(600);
        spec.stochastic.max_time = 1.0e6;
        spec
    }

    #[test]
    fn spn_sim_agrees_with_exact_on_hot_spec() {
        let mut spec = hot_spec();
        spec.mission_times = vec![0.0, 2.0e4, 8.0e4];
        let opts = CrossValOptions::default();
        let out = cross_validate(&spec, &opts).unwrap();
        assert_eq!(out.comparisons.len(), 2);
        let spn = out
            .comparisons
            .iter()
            .find(|c| c.backend == BackendKind::SpnSim)
            .unwrap();
        // the token game simulates the very SPN the exact solver analyses —
        // it must agree outright
        assert!(spn.agrees, "{:#?}", spn.checks);
        // survival at t=0 is comparable and trivially inside the
        // degenerate CI
        let s0 = spn
            .checks
            .iter()
            .find(|c| c.metric == "survival@0")
            .unwrap();
        assert!(s0.inside_ci);
        assert_eq!(out.agrees, out.comparisons.iter().all(|c| c.agrees));
    }

    #[test]
    fn censored_mttsf_is_skipped_not_failed() {
        let mut spec = hot_spec();
        spec.mission_times = vec![0.0, 2.0e3];
        // horizon far below the typical failure time: replications censor
        spec.stochastic.max_time = 5.0e3;
        spec.stochastic.sampling = SamplingPlan::Fixed(60);
        let out = cross_validate(&spec, &CrossValOptions::default()).unwrap();
        for c in &out.comparisons {
            assert!(
                c.skipped.iter().any(|m| m.starts_with("mttsf")),
                "{:?}: {:?}",
                c.backend,
                c.skipped
            );
            assert!(c.checks.iter().all(|ch| ch.metric.starts_with("survival")));
        }
    }

    #[test]
    fn report_json_names_worst_offender() {
        let mut spec = hot_spec();
        spec.stochastic.sampling = SamplingPlan::Fixed(80);
        let mut report = CrossValReport::default();
        report
            .specs
            .push(cross_validate(&spec, &CrossValOptions::default()).unwrap());
        let text = report.to_json();
        let v = crate::json::Value::parse(&text).unwrap();
        assert!(v.field("agrees").is_ok());
        assert!(v.field("worst_offender").is_ok());
        let worst = report.worst_offender();
        assert!(worst.is_some());
    }

    fn exact_stub() -> RunReport {
        RunReport {
            scenario: "stub".into(),
            backend: BackendKind::Exact,
            mttsf: Estimate::exact(100.0),
            c_total: Estimate::exact(5.0),
            cost_components: None,
            failure: Default::default(),
            state_count: Some(3),
            edge_count: Some(4),
            lumping_reduction: None,
            replications: None,
            censored: None,
            zero_duration: None,
            target_met: None,
            survival: None,
            wall_seconds: 0.0,
            template_cache: None,
            transient: None,
            detection: None,
        }
    }

    fn check_with_discrepancy(metric: &str, discrepancy: f64) -> MetricCheck {
        MetricCheck {
            metric: metric.into(),
            exact: 1.0,
            estimate: Estimate {
                value: 1.0 + discrepancy,
                ci: Some((0.9, 1.1)),
            },
            delta: discrepancy,
            discrepancy,
            inside_ci: false,
            agrees: false,
        }
    }

    /// Regression: a NaN discrepancy must rank strictly worst — under the
    /// old `partial_cmp(..).unwrap_or(Equal)` ordering it sorted as equal
    /// and could hide the real worst pair (or vanish entirely behind an
    /// `is_finite` filter).
    #[test]
    fn nan_discrepancy_ranks_strictly_worst_and_is_named() {
        let mut report = CrossValReport::default();
        report.specs.push(SpecCrossValidation {
            name: "nan-spec".into(),
            exact: exact_stub(),
            comparisons: vec![BackendComparison {
                backend: BackendKind::Des,
                report: exact_stub(),
                checks: vec![
                    check_with_discrepancy("mttsf", 0.7),
                    check_with_discrepancy("survival@5", f64::NAN),
                    check_with_discrepancy("c_total", 0.2),
                ],
                skipped: Vec::new(),
                survival_sup_delta: None,
                agrees: false,
            }],
            agrees: false,
        });
        let (_, _, worst) = report.worst_offender().unwrap();
        assert_eq!(worst.metric, "survival@5");
        assert!(worst.discrepancy.is_nan());
        // the JSON stays parseable and names the NaN explicitly
        let v = crate::json::Value::parse(&report.to_json()).unwrap();
        let w = v.field("worst_offender").unwrap();
        assert_eq!(w.field("metric").unwrap().as_str().unwrap(), "survival@5");
        assert!(matches!(w.field("discrepancy").unwrap(), Value::Null));
        assert_eq!(
            w.field("not_a_number").unwrap(),
            &Value::Bool(true),
            "NaN must be named, not silently nulled"
        );
        // with only finite checks the flag is false and ordering is by size
        report.specs[0].comparisons[0].checks.remove(1);
        let (_, _, worst) = report.worst_offender().unwrap();
        assert_eq!(worst.metric, "mttsf");
    }

    /// Regression: an estimate without a confidence interval (a single
    /// uncensored replication) must be skipped-and-reported like censored
    /// metrics, not silently checked against a meaningless interval.
    #[test]
    fn ci_less_metrics_are_skipped_and_reported() {
        let exact = exact_stub();
        let mut stoch = exact_stub();
        stoch.backend = BackendKind::Des;
        stoch.mttsf = Estimate {
            value: 90.0,
            ci: None,
        };
        stoch.c_total = Estimate {
            value: 5.0,
            ci: None,
        };
        stoch.replications = Some(1);
        stoch.censored = Some(0);
        let out = compare(&exact, stoch, &CrossValOptions::default());
        assert!(out.checks.is_empty());
        assert!(
            out.skipped
                .iter()
                .any(|m| m.starts_with("mttsf") && m.contains("no confidence interval")),
            "{:?}",
            out.skipped
        );
        assert!(out
            .skipped
            .iter()
            .any(|m| m.starts_with("c_total") && m.contains("no confidence interval")));
        // an all-skipped comparison is a non-validation, not a pass
        assert!(!out.agrees);

        // CI-less survival points skip too (value finite, interval absent)
        let mut stoch = exact_stub();
        stoch.backend = BackendKind::Des;
        stoch.mttsf = Estimate {
            value: 90.0,
            ci: Some((80.0, 110.0)),
        };
        stoch.c_total = Estimate {
            value: 5.0,
            ci: Some((4.0, 6.0)),
        };
        stoch.replications = Some(2);
        stoch.censored = Some(0);
        stoch.survival = Some(vec![(
            3.0,
            Estimate {
                value: 0.5,
                ci: None,
            },
        )]);
        let mut exact = exact_stub();
        exact.survival = Some(vec![(3.0, Estimate::exact(0.5))]);
        let out = compare(&exact, stoch, &CrossValOptions::default());
        assert!(out
            .skipped
            .iter()
            .any(|m| m.starts_with("survival@3") && m.contains("no confidence interval")));
        assert!(out.checks.iter().all(|c| !c.metric.starts_with("survival")));
    }

    /// Build a stochastic report whose survival curve deviates from the
    /// exact stub's by the given per-point deltas.
    fn reports_with_survival_deltas(deltas: &[f64]) -> (RunReport, RunReport) {
        let grid: Vec<f64> = (0..deltas.len()).map(|i| i as f64 * 10.0).collect();
        let mut exact = exact_stub();
        exact.survival = Some(grid.iter().map(|&t| (t, Estimate::exact(0.5))).collect());
        let mut stoch = exact_stub();
        stoch.backend = BackendKind::Des;
        stoch.mttsf = Estimate {
            value: 100.0,
            ci: Some((90.0, 110.0)),
        };
        stoch.c_total = Estimate {
            value: 5.0,
            ci: Some((4.0, 6.0)),
        };
        stoch.replications = Some(50);
        stoch.censored = Some(0);
        stoch.survival = Some(
            grid.iter()
                .zip(deltas)
                .map(|(&t, &d)| {
                    (
                        t,
                        Estimate {
                            value: 0.5 + d,
                            // a wide interval so every per-point check
                            // passes via containment — isolating the sup
                            ci: Some((0.0, 1.0)),
                        },
                    )
                })
                .collect(),
        );
        (exact, stoch)
    }

    #[test]
    fn survival_sup_delta_is_always_reported() {
        let (exact, stoch) = reports_with_survival_deltas(&[0.01, -0.04, 0.02]);
        let out = compare(&exact, stoch, &CrossValOptions::default());
        let sup = out.survival_sup_delta.unwrap();
        assert!((sup - 0.04).abs() < 1e-12, "sup = {sup}");
        // no tolerance set: reported, not enforced — no sup check exists
        assert!(out
            .checks
            .iter()
            .all(|c| c.metric != "survival_sup_abs_delta"));
        assert!(out.agrees, "{:#?}", out.checks);
        // and the JSON carries it
        let mut report = CrossValReport::default();
        report.specs.push(SpecCrossValidation {
            name: "sup".into(),
            exact: exact_stub(),
            comparisons: vec![out],
            agrees: true,
        });
        let v = crate::json::Value::parse(&report.to_json()).unwrap();
        let comp = &v.field("specs").unwrap().as_arr().unwrap()[0]
            .field("comparisons")
            .unwrap()
            .as_arr()
            .unwrap()[0];
        let sup = comp.field("survival_sup_delta").unwrap().as_f64().unwrap();
        assert!((sup - 0.04).abs() < 1e-12);
    }

    #[test]
    fn survival_sup_tol_enforces_the_tighter_criterion() {
        // per-point checks pass via CI containment, but the sup bound is
        // tighter and must flip the verdict
        let opts = CrossValOptions {
            survival_sup_tol: Some(0.03),
            ..Default::default()
        };
        let (exact, stoch) = reports_with_survival_deltas(&[0.01, -0.04, 0.02]);
        let out = compare(&exact, stoch, &opts);
        let sup_check = out
            .checks
            .iter()
            .find(|c| c.metric == "survival_sup_abs_delta")
            .expect("tolerance set: the sup check must exist");
        assert!(!sup_check.agrees);
        assert!(!out.agrees);

        // within the bound it passes
        let (exact, stoch) = reports_with_survival_deltas(&[0.01, -0.02, 0.0]);
        let out = compare(&exact, stoch, &opts);
        assert!(out.agrees, "{:#?}", out.checks);

        // no comparable survival points → no sup, no sup check
        let exact = exact_stub();
        let mut stoch = exact_stub();
        stoch.backend = BackendKind::Des;
        stoch.mttsf = Estimate {
            value: 100.0,
            ci: Some((90.0, 110.0)),
        };
        stoch.c_total = Estimate {
            value: 5.0,
            ci: Some((4.0, 6.0)),
        };
        stoch.censored = Some(0);
        let out = compare(&exact, stoch, &opts);
        assert_eq!(out.survival_sup_delta, None);
        assert!(out
            .checks
            .iter()
            .all(|c| c.metric != "survival_sup_abs_delta"));
    }

    #[test]
    fn dir_harness_rejects_empty_dir() {
        let dir = std::env::temp_dir().join("gcsids-crossval-empty-test");
        let _ = std::fs::create_dir_all(&dir);
        assert!(cross_validate_dir(&dir, &CrossValOptions::default()).is_err());
        let _ = std::fs::remove_dir(&dir);
    }

    /// Regression (satellite 1): one malformed or failing spec must not
    /// abort the directory — the rest still validates, and every failure
    /// is named in the report.
    #[test]
    fn dir_harness_isolates_bad_specs() {
        let dir = std::env::temp_dir().join("gcsids-crossval-isolation-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut good = hot_spec();
        good.stochastic.sampling = SamplingPlan::Fixed(30);
        std::fs::write(dir.join("a_good.json"), good.to_json()).unwrap();
        std::fs::write(dir.join("b_malformed.json"), "{not json").unwrap();
        let mut invalid = good.clone();
        invalid.system.node_count = 0;
        invalid.name = "invalid".into();
        std::fs::write(dir.join("c_invalid.json"), invalid.to_json()).unwrap();
        // a scenario block with a missing strategy parameter: the decode
        // error must name the field and must not abort the directory
        let burst = good.clone().with_scenario(crate::ScenarioConfig {
            attacker: crate::AttackerStrategy::Burst {
                on_rate: 2.0e-4,
                off_rate: 2.0e-4,
                multiplier: 6.0,
            },
            response: crate::ResponsePolicy::Evict,
        });
        let bad_scenario = burst.to_json().replace("\"on_rate\":0.0002,", "");
        assert!(bad_scenario.contains("\"strategy\":\"burst\""));
        std::fs::write(dir.join("d_bad_scenario.json"), bad_scenario).unwrap();

        let report = cross_validate_dir(&dir, &CrossValOptions::default()).unwrap();
        assert_eq!(report.specs.len(), 1, "{:?}", report.failures);
        assert_eq!(report.specs[0].name, good.name);
        assert_eq!(report.failures.len(), 3);
        assert!(report
            .failures
            .iter()
            .any(|f| f.spec.contains("b_malformed.json")));
        assert!(report
            .failures
            .iter()
            .any(|f| f.spec.contains("c_invalid.json")));
        let scenario_failure = report
            .failures
            .iter()
            .find(|f| f.spec.contains("d_bad_scenario.json"))
            .expect("scenario decode failure is isolated and named");
        assert!(
            scenario_failure.error.contains("on_rate"),
            "error names the missing field: {}",
            scenario_failure.error
        );
        assert!(!report.clean());
        let v = crate::json::Value::parse(&report.to_json()).unwrap();
        assert_eq!(v.field("failures").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.field("clean").unwrap(), &Value::Bool(false));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
