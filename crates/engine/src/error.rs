//! Error type of the experiment engine.

use spn::error::SpnError;
use std::fmt;

/// Errors produced while validating specs, (de)serializing them, or running
/// backends.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The scenario specification is inconsistent.
    InvalidSpec(String),
    /// A solver/simulator failure bubbled up from the `spn` layer.
    Solver(SpnError),
    /// A JSON document could not be parsed or did not match the schema.
    Json(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidSpec(msg) => write!(f, "invalid scenario spec: {msg}"),
            EngineError::Solver(e) => write!(f, "backend failure: {e}"),
            EngineError::Json(msg) => write!(f, "spec JSON error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpnError> for EngineError {
    fn from(e: SpnError) -> Self {
        EngineError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(EngineError::InvalidSpec("x".into())
            .to_string()
            .contains("x"));
        assert!(EngineError::Json("bad".into()).to_string().contains("bad"));
        let e = EngineError::from(SpnError::InvalidModel("m".into()));
        assert!(e.to_string().contains("m"));
    }
}
