//! The `Backend` abstraction: four evaluators, one contract.
//!
//! Every evaluator in the repository — exact CTMC absorption analysis,
//! SPN token-game simulation, protocol DES, and mobility-integrated DES —
//! implements [`Backend`]: `ScenarioSpec` in, [`RunReport`] out, under a
//! caller-supplied [`RunBudget`]. This is what lets sweeps, Pareto
//! enumeration, and cross-validation treat heterogeneous evaluators
//! uniformly instead of hand-rolling one orchestration per evaluator.

use crate::error::EngineError;
use crate::report::{survival_estimates, Estimate, FailureSplit, RunReport};
use crate::spec::{BackendKind, ScenarioSpec};
use gcsids::des::{run_des, DesConfig, FailureCause};
use gcsids::des_mobility::{run_mobility_des, MobilityDesConfig};
use gcsids::metrics::{eviction_impulses, total_cost_reward, ExactTemplate};
use gcsids::model::build_model;
use numerics::rng::child_seed;
use numerics::stats::Welford;
use rayon::prelude::*;
use spn::reach::ExploreOptions;
use spn::reward::RewardSet;
use spn::sim::{SimOptions, Simulator};
use std::time::Instant;

/// Resource limits applied to a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunBudget {
    /// Cap on tangible states explored by the exact backend.
    pub max_states: usize,
    /// Optional cap on stochastic replication counts (overrides the spec
    /// when smaller).
    pub max_replications: Option<u64>,
}

impl Default for RunBudget {
    fn default() -> Self {
        Self {
            max_states: 2_000_000,
            max_replications: None,
        }
    }
}

impl RunBudget {
    fn replications(&self, spec: &ScenarioSpec) -> u64 {
        let n = spec.stochastic.replications;
        self.max_replications.map_or(n, |cap| n.min(cap))
    }
}

/// A uniform evaluator of scenario specs.
pub trait Backend: Sync {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Evaluate `spec` within `budget`.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidSpec`] for inconsistent specs and
    /// [`EngineError::Solver`] for evaluator failures.
    fn run(&self, spec: &ScenarioSpec, budget: &RunBudget) -> Result<RunReport, EngineError>;
}

/// The backend implementation for a kind.
pub fn backend_for(kind: BackendKind) -> &'static dyn Backend {
    match kind {
        BackendKind::Exact => &ExactBackend,
        BackendKind::SpnSim => &SpnSimBackend,
        BackendKind::Des => &DesBackend,
        BackendKind::MobilityDes => &MobilityDesBackend,
    }
}

/// Exact CTMC absorption analysis (the paper's analytic path).
pub struct ExactBackend;

impl ExactBackend {
    /// Evaluate against an already-explored template (the runner's
    /// explore-once-solve-many path for batched rate-only scenarios).
    ///
    /// # Errors
    /// Propagates evaluation failures.
    pub fn run_with_template(
        template: &ExactTemplate,
        spec: &ScenarioSpec,
    ) -> Result<RunReport, EngineError> {
        spec.validate()?;
        let t0 = Instant::now();
        let (e, survival) = template.evaluate_with_survival(&spec.system, &spec.mission_times)?;
        Ok(Self::report_from_evaluation(
            spec,
            &e,
            survival,
            t0.elapsed().as_secs_f64(),
        ))
    }

    fn report_from_evaluation(
        spec: &ScenarioSpec,
        e: &gcsids::metrics::Evaluation,
        survival: Option<Vec<f64>>,
        wall_seconds: f64,
    ) -> RunReport {
        RunReport {
            scenario: spec.name.clone(),
            backend: BackendKind::Exact,
            mttsf: Estimate::exact(e.mttsf_seconds),
            c_total: Estimate::exact(e.c_total_hop_bits_per_sec),
            cost_components: Some(e.cost_components),
            failure: FailureSplit {
                p_c1: e.p_failure_c1,
                p_c2: e.p_failure_c2,
                p_other: 0.0,
            },
            state_count: Some(e.state_count),
            edge_count: Some(e.edge_count),
            replications: None,
            censored: None,
            survival: survival.map(|s| {
                spec.mission_times
                    .iter()
                    .copied()
                    .zip(s.into_iter().map(Estimate::exact))
                    .collect()
            }),
            wall_seconds,
        }
    }
}

impl Backend for ExactBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Exact
    }

    fn run(&self, spec: &ScenarioSpec, budget: &RunBudget) -> Result<RunReport, EngineError> {
        spec.validate()?;
        let t0 = Instant::now();
        // A standalone run solves on the freshly explored graph directly;
        // the template/re-weight machinery only pays off across a batch.
        let opts = ExploreOptions {
            max_states: budget.max_states,
            ..Default::default()
        };
        let model = build_model(&spec.system);
        let graph = spn::reach::explore(&model.net, &opts)?;
        // One CTMC build serves both the absorption and the survival solve.
        let (e, survival) = gcsids::metrics::evaluate_graph(&model, &graph, &spec.mission_times)?;
        Ok(Self::report_from_evaluation(
            spec,
            &e,
            survival,
            t0.elapsed().as_secs_f64(),
        ))
    }
}

/// Accumulates per-replication outcomes into the common report fields.
struct StochasticAggregate {
    mttsf: Welford,
    cost_rate: Welford,
    c1: u64,
    c2: u64,
    other: u64,
    censored: u64,
    /// Per-replication `(end time, censored)` — the right-censored failure
    /// times behind the Kaplan–Meier-style survival estimates.
    events: Vec<(f64, bool)>,
}

impl StochasticAggregate {
    fn new() -> Self {
        Self {
            mttsf: Welford::new(),
            cost_rate: Welford::new(),
            c1: 0,
            c2: 0,
            other: 0,
            censored: 0,
            events: Vec::new(),
        }
    }

    /// Record one ended replication. `cause = None` means censored.
    fn record(&mut self, time: f64, cost_rate: f64, cause: Option<FailureCause>) {
        self.cost_rate.push(cost_rate);
        let censored = matches!(cause, Some(FailureCause::Censored) | None);
        self.events.push((time, censored));
        match cause {
            Some(FailureCause::DataLeak) => {
                self.c1 += 1;
                self.mttsf.push(time);
            }
            Some(FailureCause::ByzantineCapture) => {
                self.c2 += 1;
                self.mttsf.push(time);
            }
            Some(FailureCause::Attrition) => {
                self.other += 1;
                self.mttsf.push(time);
            }
            Some(FailureCause::Censored) | None => self.censored += 1,
        }
    }

    fn into_report(self, spec: &ScenarioSpec, kind: BackendKind, wall: f64) -> RunReport {
        let ended = (self.c1 + self.c2 + self.other) as f64;
        let failure = if ended > 0.0 {
            FailureSplit {
                p_c1: self.c1 as f64 / ended,
                p_c2: self.c2 as f64 / ended,
                p_other: self.other as f64 / ended,
            }
        } else {
            FailureSplit::default()
        };
        let confidence = spec.stochastic.confidence;
        let survival = if spec.mission_times.is_empty() {
            None
        } else {
            Some(survival_estimates(
                &self.events,
                &spec.mission_times,
                confidence,
            ))
        };
        RunReport {
            scenario: spec.name.clone(),
            backend: kind,
            mttsf: Estimate::from_welford(&self.mttsf, confidence),
            c_total: Estimate::from_welford(&self.cost_rate, confidence),
            cost_components: None,
            failure,
            state_count: None,
            edge_count: None,
            replications: Some(self.c1 + self.c2 + self.other + self.censored),
            censored: Some(self.censored),
            survival,
            wall_seconds: wall,
        }
    }
}

/// Monte-Carlo token-game simulation of the Figure-1 SPN, with the same
/// cost rewards as the exact evaluator.
pub struct SpnSimBackend;

impl Backend for SpnSimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::SpnSim
    }

    fn run(&self, spec: &ScenarioSpec, budget: &RunBudget) -> Result<RunReport, EngineError> {
        spec.validate()?;
        let t0 = Instant::now();
        let model = build_model(&spec.system);
        let mut rewards = RewardSet::new().with_rate(total_cost_reward(&spec.system, &model));
        for imp in eviction_impulses(&model)? {
            rewards = rewards.with_impulse(imp);
        }
        let opts = SimOptions {
            max_time: spec.stochastic.max_time,
            ..Default::default()
        };
        let sim = Simulator::new(&model.net, &rewards, opts);
        let n = budget.replications(spec);
        let seed = spec.stochastic.master_seed;
        let outcomes: Result<Vec<spn::sim::SimOutcome>, spn::error::SpnError> = (0..n)
            .into_par_iter()
            .map(|i| sim.run_one(child_seed(seed, i)))
            .collect();
        let mut agg = StochasticAggregate::new();
        let places = model.places;
        for o in outcomes? {
            let hop_bits: f64 = o.accumulated.iter().sum();
            let rate = if o.time > 0.0 { hop_bits / o.time } else { 0.0 };
            let cause = if !o.absorbed {
                None
            } else if o.final_marking.tokens(places.gf) > 0 {
                Some(FailureCause::DataLeak)
            } else if o.final_marking.tokens(places.tm) + o.final_marking.tokens(places.ucm) == 0 {
                Some(FailureCause::Attrition)
            } else {
                Some(FailureCause::ByzantineCapture)
            };
            agg.record(o.time, rate, cause);
        }
        Ok(agg.into_report(spec, BackendKind::SpnSim, t0.elapsed().as_secs_f64()))
    }
}

/// Protocol-level discrete-event simulation (actual votes, actual rekeys,
/// calibrated birth–death group dynamics).
pub struct DesBackend;

impl Backend for DesBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Des
    }

    fn run(&self, spec: &ScenarioSpec, budget: &RunBudget) -> Result<RunReport, EngineError> {
        spec.validate()?;
        let t0 = Instant::now();
        let mut cfg = DesConfig::new(spec.system.clone());
        cfg.max_time = spec.stochastic.max_time;
        let n = budget.replications(spec);
        let seed = spec.stochastic.master_seed;
        let outcomes: Vec<gcsids::des::DesOutcome> = (0..n)
            .into_par_iter()
            .map(|i| run_des(&cfg, child_seed(seed, i)))
            .collect();
        let mut agg = StochasticAggregate::new();
        for o in outcomes {
            agg.record(o.time, o.mean_cost_rate, Some(o.cause));
        }
        Ok(agg.into_report(spec, BackendKind::Des, t0.elapsed().as_secs_f64()))
    }
}

/// Mobility-integrated DES: groups are live connected components of a
/// random-waypoint network.
pub struct MobilityDesBackend;

impl Backend for MobilityDesBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::MobilityDes
    }

    fn run(&self, spec: &ScenarioSpec, budget: &RunBudget) -> Result<RunReport, EngineError> {
        spec.validate()?;
        let t0 = Instant::now();
        let mut cfg = MobilityDesConfig::new(spec.system.clone());
        cfg.radio_range = spec.mobility.radio_range;
        cfg.dt = spec.mobility.dt;
        cfg.max_time = spec.stochastic.max_time;
        let n = budget.replications(spec);
        let seed = spec.stochastic.master_seed;
        let outcomes: Vec<gcsids::des_mobility::MobilityDesOutcome> = (0..n)
            .into_par_iter()
            .map(|i| run_mobility_des(&cfg, child_seed(seed, i)))
            .collect();
        let mut agg = StochasticAggregate::new();
        for o in outcomes {
            let rate = if o.time > 0.0 {
                o.hop_bits / o.time
            } else {
                0.0
            };
            agg.record(o.time, rate, Some(o.cause));
        }
        Ok(agg.into_report(spec, BackendKind::MobilityDes, t0.elapsed().as_secs_f64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsids::config::SystemConfig;

    /// Small, fast-failing system so the stochastic backends finish quickly.
    fn hot_spec(backend: BackendKind) -> ScenarioSpec {
        let mut sys = SystemConfig::paper_default();
        sys.node_count = 12;
        sys.vote_participants = 3;
        sys.attacker.base_rate = 1.0 / 600.0;
        sys.detection = sys.detection.with_interval(120.0);
        let mut spec = ScenarioSpec::paper_default(backend);
        spec.name = format!("hot/{}", backend.name());
        spec.system = sys;
        spec.stochastic.replications = 40;
        spec.stochastic.max_time = 200_000.0;
        spec.mobility.dt = 2.0;
        spec
    }

    #[test]
    fn every_backend_produces_a_report() {
        for kind in BackendKind::all() {
            let spec = hot_spec(kind);
            let report = backend_for(kind).run(&spec, &RunBudget::default()).unwrap();
            assert_eq!(report.backend, kind);
            assert_eq!(report.scenario, spec.name);
            assert!(report.mttsf.value > 0.0, "{kind:?}: {report:?}");
            assert!(report.c_total.value > 0.0, "{kind:?}");
            let f = report.failure;
            assert!(
                (f.p_c1 + f.p_c2 + f.p_other - 1.0).abs() < 1e-9,
                "{kind:?}: split {f:?}"
            );
            if kind == BackendKind::Exact {
                assert!(report.state_count.unwrap() > 10);
                assert!(report.mttsf.ci.is_none());
            } else {
                assert_eq!(report.replications, Some(40));
                assert!(report.mttsf.ci.is_some(), "{kind:?} should carry a CI");
            }
        }
    }

    #[test]
    fn mission_survival_reported_by_every_backend() {
        for kind in BackendKind::all() {
            let mut spec = hot_spec(kind);
            spec.mission_times = vec![0.0, 20_000.0, 80_000.0];
            let report = backend_for(kind).run(&spec, &RunBudget::default()).unwrap();
            let surv = report.survival.expect("mission grid requested");
            assert_eq!(surv.len(), 3);
            assert_eq!(surv[0].0, 0.0);
            assert!(
                (surv[0].1.value - 1.0).abs() < 1e-9,
                "{kind:?}: S(0) = {}",
                surv[0].1.value
            );
            for w in surv.windows(2) {
                assert!(
                    w[1].1.value <= w[0].1.value + 1e-9,
                    "{kind:?}: survival not monotone: {surv:?}"
                );
            }
            for (t, e) in &surv {
                assert!(
                    (0.0..=1.0).contains(&e.value),
                    "{kind:?} t={t}: {}",
                    e.value
                );
                if kind == BackendKind::Exact {
                    assert!(e.ci.is_none());
                } else {
                    let (lo, hi) = e.ci.expect("stochastic survival carries a CI");
                    assert!(lo <= e.value && e.value <= hi);
                }
            }
        }
    }

    #[test]
    fn no_mission_grid_means_no_survival_field() {
        let spec = hot_spec(BackendKind::Des);
        let report = backend_for(BackendKind::Des)
            .run(&spec, &RunBudget::default())
            .unwrap();
        assert!(report.survival.is_none());
    }

    #[test]
    fn survival_beyond_horizon_is_rejected_up_front() {
        // a grid point past the censoring horizon can only yield a
        // failure-biased or empty estimate — the spec must not validate
        let mut spec = hot_spec(BackendKind::Des);
        spec.stochastic.max_time = 1.0;
        spec.stochastic.replications = 5;
        spec.mission_times = vec![0.5, 10.0];
        let out = backend_for(BackendKind::Des).run(&spec, &RunBudget::default());
        assert!(matches!(out, Err(EngineError::InvalidSpec(_))));
        // at the horizon itself the estimate is fine (censored runs are
        // still at risk there), including the all-censored zero-variance
        // case — finite bounds, no NaN
        spec.mission_times = vec![0.5, 1.0];
        let report = backend_for(BackendKind::Des)
            .run(&spec, &RunBudget::default())
            .unwrap();
        let surv = report.survival.unwrap();
        assert_eq!(surv[0].1.value, 1.0);
        assert_eq!(surv[1].1.value, 1.0);
        let (lo, hi) = surv[1].1.ci.unwrap();
        assert!(!lo.is_nan() && (hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_censored_run_is_not_estimable() {
        // A horizon far below any failure time censors every replication:
        // MTTSF must be NaN ("not estimable"), never 0.0.
        let mut spec = hot_spec(BackendKind::Des);
        spec.stochastic.max_time = 1.0;
        spec.stochastic.replications = 5;
        let report = backend_for(BackendKind::Des)
            .run(&spec, &RunBudget::default())
            .unwrap();
        assert_eq!(report.censored, Some(5));
        assert!(report.mttsf.value.is_nan());
        assert_eq!(
            report.failure.p_c1 + report.failure.p_c2 + report.failure.p_other,
            0.0
        );
        // and the JSON encoding stays parseable (NaN → null)
        assert!(crate::json::Value::parse(&report.to_json()).is_ok());
    }

    #[test]
    fn replication_budget_caps_work() {
        let spec = hot_spec(BackendKind::Des);
        let budget = RunBudget {
            max_replications: Some(5),
            ..Default::default()
        };
        let report = backend_for(BackendKind::Des).run(&spec, &budget).unwrap();
        assert_eq!(report.replications, Some(5));
    }

    #[test]
    fn state_budget_caps_exact_exploration() {
        let spec = hot_spec(BackendKind::Exact);
        let budget = RunBudget {
            max_states: 3,
            ..Default::default()
        };
        let out = backend_for(BackendKind::Exact).run(&spec, &budget);
        assert!(matches!(
            out,
            Err(EngineError::Solver(
                spn::error::SpnError::StateSpaceExceeded { cap: 3 }
            ))
        ));
    }

    #[test]
    fn spn_sim_agrees_with_exact_within_ci() {
        let exact_spec = hot_spec(BackendKind::Exact);
        let exact = backend_for(BackendKind::Exact)
            .run(&exact_spec, &RunBudget::default())
            .unwrap();
        let mut sim_spec = hot_spec(BackendKind::SpnSim);
        sim_spec.stochastic.replications = 3000;
        sim_spec.stochastic.confidence = 0.99;
        let sim = backend_for(BackendKind::SpnSim)
            .run(&sim_spec, &RunBudget::default())
            .unwrap();
        let (lo, hi) = sim.mttsf.ci.unwrap();
        assert!(
            lo <= exact.mttsf.value && exact.mttsf.value <= hi,
            "exact {} outside sim CI [{lo}, {hi}]",
            exact.mttsf.value
        );
    }
}
