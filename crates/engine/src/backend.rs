//! The `Backend` abstraction: four evaluators, one contract.
//!
//! Every evaluator in the repository — exact CTMC absorption analysis,
//! SPN token-game simulation, protocol DES, and mobility-integrated DES —
//! implements [`Backend`]: `ScenarioSpec` in, [`RunReport`] out, under a
//! caller-supplied [`RunBudget`]. This is what lets sweeps, Pareto
//! enumeration, and cross-validation treat heterogeneous evaluators
//! uniformly instead of hand-rolling one orchestration per evaluator.

use crate::error::EngineError;
use crate::report::{
    survival_estimates_streaming, DetectionInfo, Estimate, FailureSplit, RunReport,
};
use crate::spec::{BackendKind, SamplingPlan, ScenarioSpec};
use gcsids::clustered::evaluate_clustered_with_survival;
use gcsids::des::{run_des, DesConfig, FailureCause};
use gcsids::des_mobility::{run_mobility_des, MobilityDesConfig};
use gcsids::metrics::{eviction_impulses, total_cost_reward, ExactTemplate};
use gcsids::model::{build_model, Places};
use gcsids::{
    build_scenario_model, evaluate_scenario_graph, scenario_cost_reward, scenario_impulses,
    DetectionTotals,
};
use numerics::replicate::{run_plan_observed, Completed, OutcomeSink, Replicate};
use numerics::rng::child_seed;
use numerics::stats::{SurvivalAccumulator, Welford};
use spn::error::SpnError;
use spn::model::{Spn, TransitionId};
use spn::reach::ExploreOptions;
use spn::reward::RewardSet;
use spn::sim::{SimOptions, SimOutcome, Simulator};
use std::time::Instant;

/// Resource limits applied to a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunBudget {
    /// Cap on tangible states explored by the exact backend.
    pub max_states: usize,
    /// Optional cap on stochastic replication budgets (clamps a fixed
    /// plan's count and an adaptive plan's `min`/`max` when smaller).
    pub max_replications: Option<u64>,
}

impl Default for RunBudget {
    fn default() -> Self {
        Self {
            max_states: 2_000_000,
            max_replications: None,
        }
    }
}

impl RunBudget {
    fn plan(&self, spec: &ScenarioSpec) -> SamplingPlan {
        let plan = spec.stochastic.sampling;
        self.max_replications.map_or(plan, |cap| plan.capped(cap))
    }
}

/// A sampling-progress event: emitted once per adaptive round (and once
/// at completion for fixed plans) by the stochastic backends when run
/// through [`Backend::run_observed`]. The exact backend emits nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchProgress {
    /// Replications completed so far.
    pub replications: u64,
    /// Relative CI half-width at this point (`None` below two failure
    /// observations).
    pub precision: Option<f64>,
}

/// A uniform evaluator of scenario specs.
pub trait Backend: Sync {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Evaluate `spec` within `budget`.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidSpec`] for inconsistent specs and
    /// [`EngineError::Solver`] for evaluator failures.
    fn run(&self, spec: &ScenarioSpec, budget: &RunBudget) -> Result<RunReport, EngineError>;

    /// [`Backend::run`] with incremental sampling-progress observation.
    /// Observation never changes what runs — reports are bit-identical to
    /// the unobserved path. Backends with no replication loop (the exact
    /// solver) ignore the observer; that is this default.
    ///
    /// # Errors
    /// Same contract as [`Backend::run`].
    fn run_observed(
        &self,
        spec: &ScenarioSpec,
        budget: &RunBudget,
        progress: &mut dyn FnMut(BatchProgress),
    ) -> Result<RunReport, EngineError> {
        let _ = progress;
        self.run(spec, budget)
    }
}

/// The backend implementation for a kind.
pub fn backend_for(kind: BackendKind) -> &'static dyn Backend {
    match kind {
        BackendKind::Exact => &ExactBackend,
        BackendKind::SpnSim => &SpnSimBackend,
        BackendKind::Des => &DesBackend,
        BackendKind::MobilityDes => &MobilityDesBackend,
    }
}

/// Exact CTMC absorption analysis (the paper's analytic path).
pub struct ExactBackend;

impl ExactBackend {
    /// Evaluate against an already-explored template (the runner's
    /// explore-once-solve-many path for batched rate-only scenarios).
    ///
    /// # Errors
    /// Propagates evaluation failures.
    pub fn run_with_template(
        template: &ExactTemplate,
        spec: &ScenarioSpec,
    ) -> Result<RunReport, EngineError> {
        spec.validate()?;
        if spec.clustered.is_some() {
            // A template caches the single-system graph; a clustered spec
            // solves a different (lumped or composed) chain entirely.
            return Err(EngineError::InvalidSpec(
                "clustered specs are not template-batchable — use Backend::run".into(),
            ));
        }
        if spec.scenario.is_some() {
            // A scenario changes the net structure (extra places and
            // transitions), not just rates — the cached graph does not apply.
            return Err(EngineError::InvalidSpec(
                "scenario specs are not template-batchable — use Backend::run".into(),
            ));
        }
        // detlint::allow(D002): feeds the report's explicit wall_seconds timing field only
        let t0 = Instant::now();
        let (e, survival) = template.evaluate_with_survival(&spec.system, &spec.mission_times)?;
        Ok(Self::report_from_evaluation(
            spec,
            &e,
            survival,
            t0.elapsed().as_secs_f64(),
        ))
    }

    fn report_from_evaluation(
        spec: &ScenarioSpec,
        e: &gcsids::metrics::Evaluation,
        survival: Option<Vec<f64>>,
        wall_seconds: f64,
    ) -> RunReport {
        RunReport {
            scenario: spec.name.clone(),
            backend: BackendKind::Exact,
            mttsf: Estimate::exact(e.mttsf_seconds),
            c_total: Estimate::exact(e.c_total_hop_bits_per_sec),
            cost_components: Some(e.cost_components),
            failure: FailureSplit {
                p_c1: e.p_failure_c1,
                p_c2: e.p_failure_c2,
                p_other: 0.0,
            },
            state_count: Some(e.state_count),
            edge_count: Some(e.edge_count),
            lumping_reduction: None,
            replications: None,
            censored: None,
            zero_duration: None,
            target_met: None,
            survival: survival.map(|s| {
                spec.mission_times
                    .iter()
                    .copied()
                    .zip(s.into_iter().map(Estimate::exact))
                    .collect()
            }),
            wall_seconds,
            template_cache: None,
            transient: e.transient.as_ref().map(|s| crate::report::TransientInfo {
                matvecs: s.matvecs,
                detection_step: s.detection_step,
                early_exit: s.early_exit,
                transient_states: u64::from(s.transient_states),
                absorbing_states: u64::from(s.absorbing_states),
            }),
            detection: None,
        }
    }
}

/// `false_alarms / (detections + false_alarms)`; `NaN` ("not estimable")
/// when nothing was ever convicted.
fn fp_rate(detections: f64, false_alarms: f64) -> f64 {
    let convictions = detections + false_alarms;
    if convictions > 0.0 {
        false_alarms / convictions
    } else {
        f64::NAN
    }
}

/// `1 − detections / compromises` clamped at 0; `NaN` when nothing was
/// ever compromised.
fn fn_rate(compromises: f64, detections: f64) -> f64 {
    if compromises > 0.0 {
        (1.0 - detections / compromises).max(0.0)
    } else {
        f64::NAN
    }
}

/// Detection metrics from the exact chain's expected firing totals. Lead
/// time is undefined on the exact backend (no per-replication ordering):
/// `NaN` with zero observations.
fn exact_detection(totals: &DetectionTotals) -> DetectionInfo {
    DetectionInfo {
        compromises: Estimate::exact(totals.compromises),
        detections: Estimate::exact(totals.detections),
        false_alarms: Estimate::exact(totals.false_alarms),
        fp_rate: fp_rate(totals.detections, totals.false_alarms),
        fn_rate: fn_rate(totals.compromises, totals.detections),
        lead_time: Estimate::exact(f64::NAN),
        lead_time_observations: 0,
    }
}

impl Backend for ExactBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Exact
    }

    fn run(&self, spec: &ScenarioSpec, budget: &RunBudget) -> Result<RunReport, EngineError> {
        spec.validate()?;
        // detlint::allow(D002): feeds the report's explicit wall_seconds timing field only
        let t0 = Instant::now();
        // A standalone run solves on the freshly explored graph directly;
        // the template/re-weight machinery only pays off across a batch.
        let opts = ExploreOptions {
            max_states: budget.max_states,
            ..Default::default()
        };
        if let Some(topo) = &spec.clustered {
            let ce =
                evaluate_clustered_with_survival(&spec.system, topo, &spec.mission_times, &opts)?;
            let mut report = Self::report_from_evaluation(
                spec,
                &ce.evaluation,
                ce.survival,
                t0.elapsed().as_secs_f64(),
            );
            report.lumping_reduction = Some(ce.stats.reduction);
            return Ok(report);
        }
        if let Some(sc) = &spec.scenario {
            let model = build_scenario_model(&spec.system, sc);
            let graph = spn::reach::explore(&model.net, &opts)?;
            let (e, survival, totals) =
                evaluate_scenario_graph(&model, &graph, &spec.mission_times)?;
            let mut report =
                Self::report_from_evaluation(spec, &e, survival, t0.elapsed().as_secs_f64());
            report.detection = Some(exact_detection(&totals));
            return Ok(report);
        }
        let model = build_model(&spec.system);
        let graph = spn::reach::explore(&model.net, &opts)?;
        // One CTMC build serves both the absorption and the survival solve.
        let (e, survival) = gcsids::metrics::evaluate_graph(&model, &graph, &spec.mission_times)?;
        Ok(Self::report_from_evaluation(
            spec,
            &e,
            survival,
            t0.elapsed().as_secs_f64(),
        ))
    }
}

/// The per-replication summary every stochastic backend reduces to before
/// aggregation. Also the unit of pairing in [`crate::paired`]: replication
/// `i` always runs under `child_seed(master_seed, i)`, so two specs
/// sharing a master seed yield common-random-number-coupled `Rep` streams.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Rep {
    pub(crate) time: f64,
    pub(crate) cost_rate: f64,
    pub(crate) cause: FailureCause,
    /// Nodes compromised during the observation window.
    pub(crate) compromises: f64,
    /// Convictions of compromised nodes.
    pub(crate) detections: f64,
    /// Convictions of healthy nodes.
    pub(crate) false_alarms: f64,
    /// Time of the first compromise, if one happened.
    pub(crate) first_compromise: Option<f64>,
    /// Time of the first true detection, if one happened.
    pub(crate) first_detection: Option<f64>,
}

impl Rep {
    /// A summary with no detection observables (clustered composition
    /// paths, which never carry a scenario).
    fn basic(time: f64, cost_rate: f64, cause: FailureCause) -> Self {
        Self {
            time,
            cost_rate,
            cause,
            compromises: 0.0,
            detections: 0.0,
            false_alarms: 0.0,
            first_compromise: None,
            first_detection: None,
        }
    }
}

/// Streaming aggregation of stochastic replications into the common
/// report fields — one sink shared by the SPN-sim, DES, and mobility-DES
/// backends via the `numerics::replicate` engine. No outcome or event
/// `Vec` is ever materialized: Welford moments for MTTSF and cost, a
/// [`SurvivalAccumulator`] for the mission grid, and plain counters for
/// the failure split.
#[derive(Clone)]
struct StochasticSink {
    mttsf: Welford,
    cost_rate: Welford,
    c1: u64,
    c2: u64,
    other: u64,
    censored: u64,
    zero_duration: u64,
    survival: SurvivalAccumulator,
    confidence: f64,
    /// Detection observables, aggregated only into the report when the
    /// spec carries a scenario (the counters themselves are always fed —
    /// they cost nothing and keep `record` branch-free).
    compromises: Welford,
    detections: Welford,
    false_alarms: Welford,
    lead_time: Welford,
    /// First per-replication error in index order (aborts the run).
    error: Option<SpnError>,
}

impl StochasticSink {
    fn new(spec: &ScenarioSpec) -> Self {
        Self {
            mttsf: Welford::new(),
            cost_rate: Welford::new(),
            c1: 0,
            c2: 0,
            other: 0,
            censored: 0,
            zero_duration: 0,
            survival: SurvivalAccumulator::new(&spec.mission_times),
            confidence: spec.stochastic.confidence,
            compromises: Welford::new(),
            detections: Welford::new(),
            false_alarms: Welford::new(),
            lead_time: Welford::new(),
            error: None,
        }
    }

    fn into_report(
        self,
        spec: &ScenarioSpec,
        kind: BackendKind,
        replications: u64,
        target_met: Option<bool>,
        wall: f64,
    ) -> RunReport {
        let ended = (self.c1 + self.c2 + self.other) as f64;
        let failure = if ended > 0.0 {
            FailureSplit {
                p_c1: self.c1 as f64 / ended,
                p_c2: self.c2 as f64 / ended,
                p_other: self.other as f64 / ended,
            }
        } else {
            FailureSplit::default()
        };
        let survival = if spec.mission_times.is_empty() {
            None
        } else {
            Some(survival_estimates_streaming(
                &self.survival,
                self.confidence,
            ))
        };
        // Detection metrics are a scenario-mode observable: baseline specs
        // keep their pre-scenario report shape byte-for-byte.
        let detection = spec.scenario.is_some().then(|| DetectionInfo {
            compromises: Estimate::from_welford(&self.compromises, self.confidence),
            detections: Estimate::from_welford(&self.detections, self.confidence),
            false_alarms: Estimate::from_welford(&self.false_alarms, self.confidence),
            fp_rate: fp_rate(self.detections.mean(), self.false_alarms.mean()),
            fn_rate: fn_rate(self.compromises.mean(), self.detections.mean()),
            lead_time: Estimate::from_welford(&self.lead_time, self.confidence),
            lead_time_observations: self.lead_time.count(),
        });
        RunReport {
            scenario: spec.name.clone(),
            backend: kind,
            mttsf: Estimate::from_welford(&self.mttsf, self.confidence),
            c_total: Estimate::from_welford(&self.cost_rate, self.confidence),
            cost_components: None,
            failure,
            state_count: None,
            edge_count: None,
            lumping_reduction: None,
            replications: Some(replications),
            censored: Some(self.censored),
            zero_duration: Some(self.zero_duration),
            target_met,
            survival,
            wall_seconds: wall,
            template_cache: None,
            transient: None,
            detection,
        }
    }
}

impl OutcomeSink<Result<Rep, SpnError>> for StochasticSink {
    fn record(&mut self, outcome: Result<Rep, SpnError>) {
        let rep = match outcome {
            Ok(rep) => rep,
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
                return;
            }
        };
        self.survival
            .push(rep.time, rep.cause == FailureCause::Censored);
        if let (Some(c), Some(d)) = (rep.first_compromise, rep.first_detection) {
            if d >= c {
                self.lead_time.push(d - c);
            }
        }
        if rep.time <= 0.0 {
            // Censored-at-zero: nothing was observed, so the outcome's 0.0
            // cost rate is a placeholder, not a measurement (see
            // `gcsids::des::DesStats::zero_duration`).
            self.zero_duration += 1;
            self.censored += 1;
            return;
        }
        self.cost_rate.push(rep.cost_rate);
        self.compromises.push(rep.compromises);
        self.detections.push(rep.detections);
        self.false_alarms.push(rep.false_alarms);
        match rep.cause {
            FailureCause::DataLeak => {
                self.c1 += 1;
                self.mttsf.push(rep.time);
            }
            FailureCause::ByzantineCapture => {
                self.c2 += 1;
                self.mttsf.push(rep.time);
            }
            FailureCause::Attrition => {
                self.other += 1;
                self.mttsf.push(rep.time);
            }
            FailureCause::Censored => self.censored += 1,
        }
    }

    fn merge(&mut self, other: Self) {
        self.mttsf.merge(&other.mttsf);
        self.cost_rate.merge(&other.cost_rate);
        self.c1 += other.c1;
        self.c2 += other.c2;
        self.other += other.other;
        self.censored += other.censored;
        self.zero_duration += other.zero_duration;
        self.survival.merge(&other.survival);
        self.compromises.merge(&other.compromises);
        self.detections.merge(&other.detections);
        self.false_alarms.merge(&other.false_alarms);
        self.lead_time.merge(&other.lead_time);
        // self covers the earlier index range, so its error stays first
        if self.error.is_none() {
            self.error = other.error;
        }
    }

    fn precision(&self) -> Option<f64> {
        if self.error.is_some() {
            // fatal replication error: stop spawning batches immediately
            return Some(0.0);
        }
        self.mttsf.relative_precision(self.confidence)
    }
}

/// Run a stochastic task under the spec's sampling plan (capped by the
/// budget) and convert the sink into the common report, surfacing the
/// first per-replication error as an engine failure.
fn run_stochastic<R>(
    task: &R,
    spec: &ScenarioSpec,
    budget: &RunBudget,
    kind: BackendKind,
    t0: Instant,
    progress: &mut dyn FnMut(BatchProgress),
) -> Result<RunReport, EngineError>
where
    R: Replicate<Outcome = Result<Rep, SpnError>>,
{
    let plan = budget.plan(spec);
    // The spec's own plan already validated, but a budget cap can
    // degenerate it (max_replications = Some(0) clamps a fixed count to
    // zero) — surface that as an error instead of panicking in run_plan.
    plan.validate().map_err(EngineError::InvalidSpec)?;
    let done: Completed<StochasticSink> = run_plan_observed(
        task,
        &plan,
        spec.stochastic.master_seed,
        || StochasticSink::new(spec),
        &mut |replications, precision| {
            progress(BatchProgress {
                replications,
                precision,
            });
        },
    );
    if let Some(e) = done.sink.error {
        return Err(EngineError::Solver(e));
    }
    Ok(done.sink.into_report(
        spec,
        kind,
        done.replications,
        done.target_met,
        t0.elapsed().as_secs_f64(),
    ))
}

/// Monte-Carlo token-game simulation of the Figure-1 SPN, with the same
/// cost rewards as the exact evaluator.
pub struct SpnSimBackend;

/// Classify how a single-system SPN replication ended from its final
/// marking.
fn spn_cause(places: &Places, o: &SimOutcome) -> FailureCause {
    if !o.absorbed {
        FailureCause::Censored
    } else if o.final_marking.tokens(places.gf) > 0 {
        FailureCause::DataLeak
    } else if o.final_marking.tokens(places.tm) + o.final_marking.tokens(places.ucm) == 0 {
        FailureCause::Attrition
    } else {
        FailureCause::ByzantineCapture
    }
}

/// One SPN-sim replication reduced to the common summary. With `detect`
/// set (scenario mode), detection observables are read off the token
/// game's firing counts and first-firing times of `[T_CP, T_IDS, T_FA]`.
struct SpnSimTask<'a> {
    sim: Simulator<'a>,
    places: Places,
    detect: Option<[TransitionId; 3]>,
}

impl Replicate for SpnSimTask<'_> {
    type Outcome = Result<Rep, SpnError>;

    fn run_one(&self, seed: u64) -> Self::Outcome {
        let o = self.sim.run_one(seed)?;
        let hop_bits: f64 = o.accumulated.iter().sum();
        let cost_rate = if o.time > 0.0 { hop_bits / o.time } else { 0.0 };
        let cause = spn_cause(&self.places, &o);
        let mut rep = Rep::basic(o.time, cost_rate, cause);
        if let Some([t_cp, t_ids, t_fa]) = self.detect {
            let count = |t: TransitionId| o.firings.get(&t).map_or(0.0, |&n| n as f64);
            rep.compromises = count(t_cp);
            rep.detections = count(t_ids);
            rep.false_alarms = count(t_fa);
            rep.first_compromise = o.first_firings.get(&t_cp).copied();
            rep.first_detection = o.first_firings.get(&t_ids).copied();
        }
        Ok(rep)
    }
}

/// The net, rewards, and detection handles an SPN-sim run plays —
/// scenario-aware: a spec with a scenario plays the scenario net with the
/// response policy's action costs; one without plays the paper net
/// unchanged.
struct SpnSimSetup {
    net: Spn,
    rewards: RewardSet,
    places: Places,
    detect: Option<[TransitionId; 3]>,
}

fn spn_sim_setup(spec: &ScenarioSpec) -> Result<SpnSimSetup, EngineError> {
    if let Some(sc) = &spec.scenario {
        let model = build_scenario_model(&spec.system, sc);
        let mut rewards = RewardSet::new().with_rate(scenario_cost_reward(&model));
        for imp in scenario_impulses(&model)? {
            rewards = rewards.with_impulse(imp);
        }
        let lookup = |name: &str| {
            model.net.transition_by_name(name).ok_or_else(|| {
                EngineError::Solver(SpnError::InvalidModel(format!("missing transition {name}")))
            })
        };
        let detect = [lookup("T_CP")?, lookup("T_IDS")?, lookup("T_FA")?];
        Ok(SpnSimSetup {
            places: model.places.base,
            net: model.net,
            rewards,
            detect: Some(detect),
        })
    } else {
        let model = build_model(&spec.system);
        let mut rewards = RewardSet::new().with_rate(total_cost_reward(&spec.system, &model));
        for imp in eviction_impulses(&model)? {
            rewards = rewards.with_impulse(imp);
        }
        Ok(SpnSimSetup {
            places: model.places,
            net: model.net,
            rewards,
            detect: None,
        })
    }
}

/// One cluster's contribution to a clustered replication.
struct ClusterRep {
    time: f64,
    failed: bool,
    hop_bits: f64,
    cause: FailureCause,
}

/// Compose independent per-cluster replications into the system summary.
///
/// The flat clustered net is exactly `reps.len()` independent copies of
/// the single-cluster model — clusters share no places and each freezes
/// on its own failure — so simulating the copies separately is
/// distribution-identical to simulating the flat net, and additionally
/// yields the exact failure order. The system fails at the K-th smallest
/// cluster failure time with that cluster's cause; runs with fewer than
/// K failures by `horizon` are censored. Cost is summed exactly over the
/// observation window: clusters that outlive the system absorption time
/// are re-run via `rerun(cluster, t_sys)` with their original seed — an
/// identical trajectory, merely censored at `t_sys`.
fn compose_clusters(
    reps: &[ClusterRep],
    threshold: u32,
    horizon: f64,
    mut rerun: impl FnMut(usize, f64) -> Result<f64, SpnError>,
) -> Result<Rep, SpnError> {
    let mut failures: Vec<(f64, usize)> = reps
        .iter()
        .enumerate()
        .filter(|(_, r)| r.failed)
        .map(|(i, r)| (r.time, i))
        .collect();
    if (failures.len() as u32) < threshold {
        let hop_bits: f64 = reps.iter().map(|r| r.hop_bits).sum();
        let cost_rate = if horizon > 0.0 {
            hop_bits / horizon
        } else {
            0.0
        };
        return Ok(Rep::basic(horizon, cost_rate, FailureCause::Censored));
    }
    failures.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (t_sys, kth) = failures[threshold as usize - 1];
    let mut hop_bits = 0.0;
    for (i, r) in reps.iter().enumerate() {
        if r.failed && r.time <= t_sys {
            // Failed within the window: frozen afterwards, so its own
            // accumulated cost already covers [0, t_sys].
            hop_bits += r.hop_bits;
        } else {
            hop_bits += rerun(i, t_sys)?;
        }
    }
    let cost_rate = if t_sys > 0.0 { hop_bits / t_sys } else { 0.0 };
    Ok(Rep::basic(t_sys, cost_rate, reps[kth].cause))
}

/// One clustered SPN-sim replication: independent single-cluster
/// token-game runs composed by failure order statistics.
struct ClusteredSpnSimTask<'a> {
    net: &'a spn::model::Spn,
    rewards: &'a RewardSet,
    places: Places,
    clusters: u32,
    threshold: u32,
    max_time: f64,
}

impl ClusteredSpnSimTask<'_> {
    fn run_cluster(&self, seed: u64, horizon: f64) -> Result<SimOutcome, SpnError> {
        let opts = SimOptions {
            max_time: horizon,
            ..Default::default()
        };
        Simulator::new(self.net, self.rewards, opts).run_one(seed)
    }
}

impl Replicate for ClusteredSpnSimTask<'_> {
    type Outcome = Result<Rep, SpnError>;

    fn run_one(&self, seed: u64) -> Self::Outcome {
        let mut reps = Vec::with_capacity(self.clusters as usize);
        for i in 0..u64::from(self.clusters) {
            let o = self.run_cluster(child_seed(seed, i), self.max_time)?;
            reps.push(ClusterRep {
                time: o.time,
                failed: o.absorbed,
                hop_bits: o.accumulated.iter().sum(),
                cause: spn_cause(&self.places, &o),
            });
        }
        compose_clusters(&reps, self.threshold, self.max_time, |i, t_sys| {
            let o = self.run_cluster(child_seed(seed, i as u64), t_sys)?;
            Ok(o.accumulated.iter().sum())
        })
    }
}

impl Backend for SpnSimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::SpnSim
    }

    fn run(&self, spec: &ScenarioSpec, budget: &RunBudget) -> Result<RunReport, EngineError> {
        self.run_observed(spec, budget, &mut |_| {})
    }

    fn run_observed(
        &self,
        spec: &ScenarioSpec,
        budget: &RunBudget,
        progress: &mut dyn FnMut(BatchProgress),
    ) -> Result<RunReport, EngineError> {
        spec.validate()?;
        // detlint::allow(D002): feeds the report's explicit wall_seconds timing field only
        let t0 = Instant::now();
        let setup = spn_sim_setup(spec)?;
        if let Some(topo) = &spec.clustered {
            // validate() rejects scenario + clustered, so this is always
            // the paper net.
            let task = ClusteredSpnSimTask {
                net: &setup.net,
                rewards: &setup.rewards,
                places: setup.places,
                clusters: topo.clusters,
                threshold: topo.failure_threshold,
                max_time: spec.stochastic.max_time,
            };
            return run_stochastic(&task, spec, budget, BackendKind::SpnSim, t0, progress);
        }
        let opts = SimOptions {
            max_time: spec.stochastic.max_time,
            ..Default::default()
        };
        let task = SpnSimTask {
            sim: Simulator::new(&setup.net, &setup.rewards, opts),
            places: setup.places,
            detect: setup.detect,
        };
        run_stochastic(&task, spec, budget, BackendKind::SpnSim, t0, progress)
    }
}

/// Protocol-level discrete-event simulation (actual votes, actual rekeys,
/// calibrated birth–death group dynamics).
pub struct DesBackend;

/// One protocol-DES replication reduced to the common summary.
struct DesTask(DesConfig);

impl Replicate for DesTask {
    type Outcome = Result<Rep, SpnError>;

    fn run_one(&self, seed: u64) -> Self::Outcome {
        let o = run_des(&self.0, seed);
        Ok(Rep {
            time: o.time,
            cost_rate: o.mean_cost_rate,
            cause: o.cause,
            compromises: o.compromises as f64,
            detections: o.true_evictions as f64,
            false_alarms: o.false_evictions as f64,
            first_compromise: o.first_compromise,
            first_detection: o.first_true_detection,
        })
    }
}

/// Protocol-DES configuration for a spec (scenario-aware).
fn des_config(spec: &ScenarioSpec) -> DesConfig {
    let mut cfg = DesConfig::new(spec.system.clone());
    cfg.max_time = spec.stochastic.max_time;
    cfg.scenario = spec.scenario_or_baseline();
    cfg
}

/// One clustered DES replication: independent single-cluster protocol
/// simulations composed by failure order statistics.
struct ClusteredDesTask {
    cfg: DesConfig,
    clusters: u32,
    threshold: u32,
}

impl Replicate for ClusteredDesTask {
    type Outcome = Result<Rep, SpnError>;

    fn run_one(&self, seed: u64) -> Self::Outcome {
        let reps: Vec<ClusterRep> = (0..u64::from(self.clusters))
            .map(|i| {
                let o = run_des(&self.cfg, child_seed(seed, i));
                ClusterRep {
                    time: o.time,
                    failed: o.cause != FailureCause::Censored,
                    hop_bits: o.hop_bits,
                    cause: o.cause,
                }
            })
            .collect();
        compose_clusters(&reps, self.threshold, self.cfg.max_time, |i, t_sys| {
            let mut censored = self.cfg.clone();
            censored.max_time = t_sys;
            Ok(run_des(&censored, child_seed(seed, i as u64)).hop_bits)
        })
    }
}

impl Backend for DesBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Des
    }

    fn run(&self, spec: &ScenarioSpec, budget: &RunBudget) -> Result<RunReport, EngineError> {
        self.run_observed(spec, budget, &mut |_| {})
    }

    fn run_observed(
        &self,
        spec: &ScenarioSpec,
        budget: &RunBudget,
        progress: &mut dyn FnMut(BatchProgress),
    ) -> Result<RunReport, EngineError> {
        spec.validate()?;
        // detlint::allow(D002): feeds the report's explicit wall_seconds timing field only
        let t0 = Instant::now();
        let cfg = des_config(spec);
        if let Some(topo) = &spec.clustered {
            let task = ClusteredDesTask {
                cfg,
                clusters: topo.clusters,
                threshold: topo.failure_threshold,
            };
            return run_stochastic(&task, spec, budget, BackendKind::Des, t0, progress);
        }
        run_stochastic(&DesTask(cfg), spec, budget, BackendKind::Des, t0, progress)
    }
}

/// Mobility-integrated DES: groups are live connected components of a
/// random-waypoint network.
pub struct MobilityDesBackend;

/// One mobility-DES replication reduced to the common summary.
struct MobilityTask(MobilityDesConfig);

impl Replicate for MobilityTask {
    type Outcome = Result<Rep, SpnError>;

    fn run_one(&self, seed: u64) -> Self::Outcome {
        let o = run_mobility_des(&self.0, seed);
        let cost_rate = if o.time > 0.0 {
            o.hop_bits / o.time
        } else {
            0.0
        };
        Ok(Rep {
            time: o.time,
            cost_rate,
            cause: o.cause,
            compromises: o.compromises as f64,
            detections: o.true_evictions as f64,
            false_alarms: o.false_evictions as f64,
            first_compromise: o.first_compromise,
            first_detection: o.first_true_detection,
        })
    }
}

/// Mobility-DES configuration for a spec (attacker axis only; validate()
/// rejects non-evict response policies on this backend).
fn mobility_config(spec: &ScenarioSpec) -> MobilityDesConfig {
    let mut cfg = MobilityDesConfig::new(spec.system.clone());
    cfg.radio_range = spec.mobility.radio_range;
    cfg.dt = spec.mobility.dt;
    cfg.max_time = spec.stochastic.max_time;
    cfg.scenario = spec.scenario_or_baseline();
    cfg
}

impl Backend for MobilityDesBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::MobilityDes
    }

    fn run(&self, spec: &ScenarioSpec, budget: &RunBudget) -> Result<RunReport, EngineError> {
        self.run_observed(spec, budget, &mut |_| {})
    }

    fn run_observed(
        &self,
        spec: &ScenarioSpec,
        budget: &RunBudget,
        progress: &mut dyn FnMut(BatchProgress),
    ) -> Result<RunReport, EngineError> {
        spec.validate()?;
        // detlint::allow(D002): feeds the report's explicit wall_seconds timing field only
        let t0 = Instant::now();
        run_stochastic(
            &MobilityTask(mobility_config(spec)),
            spec,
            budget,
            BackendKind::MobilityDes,
            t0,
            progress,
        )
    }
}

/// Run replications `0..n` of a stochastic spec and return each one's
/// summary in index order — the paired engine's inner loop. Replication
/// `i` runs under `child_seed(master_seed, i)`, exactly the seed the
/// chunked plan executor hands it, so these outcomes are bit-identical to
/// the ones a [`Backend::run`] of the same spec aggregates.
///
/// # Errors
/// [`EngineError::InvalidSpec`] for invalid specs and for the exact
/// backend (which has no replications), [`EngineError::Solver`] when a
/// replication fails.
pub(crate) fn per_replication_outcomes(
    spec: &ScenarioSpec,
    n: u64,
) -> Result<Vec<Rep>, EngineError> {
    fn collect<R: Replicate<Outcome = Result<Rep, SpnError>>>(
        task: &R,
        master: u64,
        n: u64,
    ) -> Result<Vec<Rep>, EngineError> {
        (0..n)
            .map(|i| {
                task.run_one(child_seed(master, i))
                    .map_err(EngineError::from)
            })
            .collect()
    }
    spec.validate()?;
    let master = spec.stochastic.master_seed;
    match spec.backend {
        BackendKind::Exact => Err(EngineError::InvalidSpec(
            "per-replication outcomes require a stochastic backend".into(),
        )),
        BackendKind::SpnSim => {
            let setup = spn_sim_setup(spec)?;
            if let Some(topo) = &spec.clustered {
                let task = ClusteredSpnSimTask {
                    net: &setup.net,
                    rewards: &setup.rewards,
                    places: setup.places,
                    clusters: topo.clusters,
                    threshold: topo.failure_threshold,
                    max_time: spec.stochastic.max_time,
                };
                return collect(&task, master, n);
            }
            let opts = SimOptions {
                max_time: spec.stochastic.max_time,
                ..Default::default()
            };
            let task = SpnSimTask {
                sim: Simulator::new(&setup.net, &setup.rewards, opts),
                places: setup.places,
                detect: setup.detect,
            };
            collect(&task, master, n)
        }
        BackendKind::Des => {
            let cfg = des_config(spec);
            if let Some(topo) = &spec.clustered {
                let task = ClusteredDesTask {
                    cfg,
                    clusters: topo.clusters,
                    threshold: topo.failure_threshold,
                };
                return collect(&task, master, n);
            }
            collect(&DesTask(cfg), master, n)
        }
        BackendKind::MobilityDes => collect(&MobilityTask(mobility_config(spec)), master, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsids::config::SystemConfig;

    /// Small, fast-failing system so the stochastic backends finish quickly.
    fn hot_spec(backend: BackendKind) -> ScenarioSpec {
        let mut sys = SystemConfig::paper_default();
        sys.node_count = 12;
        sys.vote_participants = 3;
        sys.attacker.base_rate = 1.0 / 600.0;
        sys.detection = sys.detection.with_interval(120.0);
        let mut spec = ScenarioSpec::paper_default(backend);
        spec.name = format!("hot/{}", backend.name());
        spec.system = sys;
        spec.stochastic.sampling = SamplingPlan::Fixed(40);
        spec.stochastic.max_time = 200_000.0;
        spec.mobility.dt = 2.0;
        spec
    }

    #[test]
    fn every_backend_produces_a_report() {
        for kind in BackendKind::all() {
            let spec = hot_spec(kind);
            let report = backend_for(kind).run(&spec, &RunBudget::default()).unwrap();
            assert_eq!(report.backend, kind);
            assert_eq!(report.scenario, spec.name);
            assert!(report.mttsf.value > 0.0, "{kind:?}: {report:?}");
            assert!(report.c_total.value > 0.0, "{kind:?}");
            let f = report.failure;
            assert!(
                (f.p_c1 + f.p_c2 + f.p_other - 1.0).abs() < 1e-9,
                "{kind:?}: split {f:?}"
            );
            if kind == BackendKind::Exact {
                assert!(report.state_count.unwrap() > 10);
                assert!(report.mttsf.ci.is_none());
            } else {
                assert_eq!(report.replications, Some(40));
                assert!(report.mttsf.ci.is_some(), "{kind:?} should carry a CI");
            }
        }
    }

    #[test]
    fn mission_survival_reported_by_every_backend() {
        for kind in BackendKind::all() {
            let mut spec = hot_spec(kind);
            spec.mission_times = vec![0.0, 20_000.0, 80_000.0];
            let report = backend_for(kind).run(&spec, &RunBudget::default()).unwrap();
            let surv = report.survival.expect("mission grid requested");
            assert_eq!(surv.len(), 3);
            assert_eq!(surv[0].0, 0.0);
            assert!(
                (surv[0].1.value - 1.0).abs() < 1e-9,
                "{kind:?}: S(0) = {}",
                surv[0].1.value
            );
            for w in surv.windows(2) {
                assert!(
                    w[1].1.value <= w[0].1.value + 1e-9,
                    "{kind:?}: survival not monotone: {surv:?}"
                );
            }
            for (t, e) in &surv {
                assert!(
                    (0.0..=1.0).contains(&e.value),
                    "{kind:?} t={t}: {}",
                    e.value
                );
                if kind == BackendKind::Exact {
                    assert!(e.ci.is_none());
                } else {
                    let (lo, hi) = e.ci.expect("stochastic survival carries a CI");
                    assert!(lo <= e.value && e.value <= hi);
                }
            }
        }
    }

    #[test]
    fn no_mission_grid_means_no_survival_field() {
        let spec = hot_spec(BackendKind::Des);
        let report = backend_for(BackendKind::Des)
            .run(&spec, &RunBudget::default())
            .unwrap();
        assert!(report.survival.is_none());
    }

    #[test]
    fn survival_beyond_horizon_is_rejected_up_front() {
        // a grid point past the censoring horizon can only yield a
        // failure-biased or empty estimate — the spec must not validate
        let mut spec = hot_spec(BackendKind::Des);
        spec.stochastic.max_time = 1.0;
        spec.stochastic.sampling = SamplingPlan::Fixed(5);
        spec.mission_times = vec![0.5, 10.0];
        let out = backend_for(BackendKind::Des).run(&spec, &RunBudget::default());
        assert!(matches!(out, Err(EngineError::InvalidSpec(_))));
        // at the horizon itself the estimate is fine (censored runs are
        // still at risk there), including the all-censored zero-variance
        // case — finite bounds, no NaN
        spec.mission_times = vec![0.5, 1.0];
        let report = backend_for(BackendKind::Des)
            .run(&spec, &RunBudget::default())
            .unwrap();
        let surv = report.survival.unwrap();
        assert_eq!(surv[0].1.value, 1.0);
        assert_eq!(surv[1].1.value, 1.0);
        let (lo, hi) = surv[1].1.ci.unwrap();
        assert!(!lo.is_nan() && (hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_censored_run_is_not_estimable() {
        // A horizon far below any failure time censors every replication:
        // MTTSF must be NaN ("not estimable"), never 0.0.
        let mut spec = hot_spec(BackendKind::Des);
        spec.stochastic.max_time = 1.0;
        spec.stochastic.sampling = SamplingPlan::Fixed(5);
        let report = backend_for(BackendKind::Des)
            .run(&spec, &RunBudget::default())
            .unwrap();
        assert_eq!(report.censored, Some(5));
        assert!(report.mttsf.value.is_nan());
        assert_eq!(
            report.failure.p_c1 + report.failure.p_c2 + report.failure.p_other,
            0.0
        );
        // and the JSON encoding stays parseable (NaN → null)
        assert!(crate::json::Value::parse(&report.to_json()).is_ok());
    }

    #[test]
    fn adaptive_spec_reports_replications_used_and_verdict() {
        let mut spec = hot_spec(BackendKind::Des);
        spec.stochastic.sampling = SamplingPlan::Adaptive {
            target_rel_halfwidth: 0.5, // loose: met quickly on the hot system
            min: 20,
            max: 200,
            batch: 20,
        };
        let report = backend_for(BackendKind::Des)
            .run(&spec, &RunBudget::default())
            .unwrap();
        let n = report.replications.expect("stochastic run");
        assert!((20..=200).contains(&n), "used {n}");
        let met = report.target_met.expect("adaptive run carries a verdict");
        if met {
            let (lo, hi) = report.mttsf.ci.unwrap();
            let half = (hi - lo) / 2.0;
            assert!(
                half / report.mttsf.value.abs() <= 0.5,
                "claimed target met: half {half} vs mean {}",
                report.mttsf.value
            );
        } else {
            assert_eq!(n, 200, "unmet target must exhaust the budget");
        }
        // bit-identical to the fixed plan of the same size (the adaptive
        // executor is a pure prefix of the fixed one)
        let mut fixed = spec.clone();
        fixed.stochastic.sampling = SamplingPlan::Fixed(n);
        let fixed_report = backend_for(BackendKind::Des)
            .run(&fixed, &RunBudget::default())
            .unwrap();
        assert_eq!(fixed_report.mttsf, report.mttsf);
        assert_eq!(fixed_report.c_total, report.c_total);
        assert_eq!(fixed_report.target_met, None);
    }

    #[test]
    fn adaptive_budget_exhaustion_is_reported() {
        let mut spec = hot_spec(BackendKind::Des);
        spec.stochastic.sampling = SamplingPlan::Adaptive {
            target_rel_halfwidth: 1e-6, // unreachable at this budget
            min: 10,
            max: 30,
            batch: 10,
        };
        let report = backend_for(BackendKind::Des)
            .run(&spec, &RunBudget::default())
            .unwrap();
        assert_eq!(report.replications, Some(30));
        assert_eq!(report.target_met, Some(false));
        // the verdict travels through the JSON round-trip
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.target_met, Some(false));
        assert_eq!(back.replications, Some(30));
    }

    #[test]
    fn replication_budget_caps_adaptive_plans_too() {
        let mut spec = hot_spec(BackendKind::Des);
        spec.stochastic.sampling = SamplingPlan::Adaptive {
            target_rel_halfwidth: 1e-6,
            min: 10,
            max: 500,
            batch: 50,
        };
        let budget = RunBudget {
            max_replications: Some(25),
            ..Default::default()
        };
        let report = backend_for(BackendKind::Des).run(&spec, &budget).unwrap();
        assert_eq!(report.replications, Some(25));
    }

    #[test]
    fn replication_budget_below_first_batch_clamps_it() {
        // Regression (satellite 3): a max_replications cap smaller than
        // the adaptive plan's first batch must clamp that batch — running
        // the full `min` would silently overshoot the budget — and report
        // target_met = false with the actual count.
        let mut spec = hot_spec(BackendKind::Des);
        spec.stochastic.sampling = SamplingPlan::Adaptive {
            target_rel_halfwidth: 1e-6, // unreachable at 7 replications
            min: 100,
            max: 400,
            batch: 100,
        };
        let budget = RunBudget {
            max_replications: Some(7),
            ..Default::default()
        };
        let mut rounds = Vec::new();
        let report = backend_for(BackendKind::Des)
            .run_observed(&spec, &budget, &mut |p| rounds.push(p))
            .unwrap();
        assert_eq!(report.replications, Some(7));
        assert_eq!(report.target_met, Some(false));
        // exactly one sampling round ran, at the capped size
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].replications, 7);
    }

    #[test]
    fn observed_run_is_bit_identical_and_streams_rounds() {
        let mut spec = hot_spec(BackendKind::Des);
        spec.stochastic.sampling = SamplingPlan::Adaptive {
            target_rel_halfwidth: 1e-6, // unreachable: every round fires
            min: 10,
            max: 30,
            batch: 10,
        };
        let mut rounds = Vec::new();
        let observed = backend_for(BackendKind::Des)
            .run_observed(&spec, &RunBudget::default(), &mut |p| rounds.push(p))
            .unwrap();
        let plain = backend_for(BackendKind::Des)
            .run(&spec, &RunBudget::default())
            .unwrap();
        assert_eq!(observed.mttsf, plain.mttsf);
        assert_eq!(observed.c_total, plain.c_total);
        assert_eq!(observed.replications, plain.replications);
        assert_eq!(
            rounds.iter().map(|p| p.replications).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        // the exact backend has no replication loop: observer never fires
        let mut none = Vec::new();
        backend_for(BackendKind::Exact)
            .run_observed(
                &hot_spec(BackendKind::Exact),
                &RunBudget::default(),
                &mut |p| none.push(p),
            )
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn zero_replication_budget_is_an_error_not_a_panic() {
        // max_replications is a public field: a zero cap degenerates the
        // sampling plan and must surface as InvalidSpec, not a panic.
        let spec = hot_spec(BackendKind::Des);
        let budget = RunBudget {
            max_replications: Some(0),
            ..Default::default()
        };
        let out = backend_for(BackendKind::Des).run(&spec, &budget);
        assert!(matches!(out, Err(EngineError::InvalidSpec(_))), "{out:?}");
    }

    #[test]
    fn replication_budget_caps_work() {
        let spec = hot_spec(BackendKind::Des);
        let budget = RunBudget {
            max_replications: Some(5),
            ..Default::default()
        };
        let report = backend_for(BackendKind::Des).run(&spec, &budget).unwrap();
        assert_eq!(report.replications, Some(5));
    }

    #[test]
    fn state_budget_caps_exact_exploration() {
        let spec = hot_spec(BackendKind::Exact);
        let budget = RunBudget {
            max_states: 3,
            ..Default::default()
        };
        let out = backend_for(BackendKind::Exact).run(&spec, &budget);
        assert!(matches!(
            out,
            Err(EngineError::Solver(
                spn::error::SpnError::StateSpaceExceeded { cap: 3 }
            ))
        ));
    }

    #[test]
    fn clustered_exact_reports_lumping_stats() {
        let topo = gcsids::config::ClusterTopology {
            clusters: 3,
            failure_threshold: 2,
        };
        let mut spec = hot_spec(BackendKind::Exact).with_clusters(topo);
        spec.mission_times = vec![0.0, 2.0e4, 8.0e4];
        let report = backend_for(BackendKind::Exact)
            .run(&spec, &RunBudget::default())
            .unwrap();
        assert!(report.mttsf.value > 0.0);
        assert!(
            report.lumping_reduction.unwrap() > 1.0,
            "{:?}",
            report.lumping_reduction
        );
        let surv = report.survival.as_ref().unwrap();
        assert_eq!(surv.len(), 3);
        assert!((surv[0].1.value - 1.0).abs() < 1e-9);
        assert!(surv[2].1.value < surv[0].1.value);
        // and the new field round-trips through JSON
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.lumping_reduction, report.lumping_reduction);
    }

    #[test]
    fn clustered_stochastic_backends_agree_with_exact() {
        let topo = gcsids::config::ClusterTopology {
            clusters: 3,
            failure_threshold: 2,
        };
        let exact_spec = hot_spec(BackendKind::Exact).with_clusters(topo);
        let exact = backend_for(BackendKind::Exact)
            .run(&exact_spec, &RunBudget::default())
            .unwrap();
        // The clustered SPN-sim runs the very net the exact path lumps, so
        // the exact MTTSF must sit inside its confidence interval.
        let mut sim_spec = hot_spec(BackendKind::SpnSim).with_clusters(topo);
        sim_spec.stochastic.sampling = SamplingPlan::Fixed(600);
        sim_spec.stochastic.confidence = 0.99;
        let sim = backend_for(BackendKind::SpnSim)
            .run(&sim_spec, &RunBudget::default())
            .unwrap();
        let (lo, hi) = sim.mttsf.ci.unwrap();
        assert!(
            lo <= exact.mttsf.value && exact.mttsf.value <= hi,
            "exact {} outside clustered sim CI [{lo}, {hi}]",
            exact.mttsf.value
        );
        let f = sim.failure;
        assert!((f.p_c1 + f.p_c2 + f.p_other - 1.0).abs() < 1e-9, "{f:?}");
        // The protocol DES is a different model of the same system: allow
        // the documented modeling tolerance on top of the interval.
        let mut des_spec = hot_spec(BackendKind::Des).with_clusters(topo);
        des_spec.stochastic.sampling = SamplingPlan::Fixed(400);
        let des = backend_for(BackendKind::Des)
            .run(&des_spec, &RunBudget::default())
            .unwrap();
        let rel = (des.mttsf.value - exact.mttsf.value).abs() / exact.mttsf.value;
        let inside = des
            .mttsf
            .ci
            .is_some_and(|(lo, hi)| lo <= exact.mttsf.value && exact.mttsf.value <= hi);
        assert!(inside || rel < 0.25, "clustered DES off by {rel}");
    }

    #[test]
    fn clustered_spec_rejected_by_template_path() {
        let topo = gcsids::config::ClusterTopology {
            clusters: 2,
            failure_threshold: 1,
        };
        let plain = hot_spec(BackendKind::Exact);
        let opts = ExploreOptions::default();
        let template = ExactTemplate::with_options(&plain.system, &opts).unwrap();
        let clustered = plain.with_clusters(topo);
        let out = ExactBackend::run_with_template(&template, &clustered);
        assert!(matches!(out, Err(EngineError::InvalidSpec(_))), "{out:?}");
    }

    #[test]
    fn spn_sim_agrees_with_exact_within_ci() {
        let exact_spec = hot_spec(BackendKind::Exact);
        let exact = backend_for(BackendKind::Exact)
            .run(&exact_spec, &RunBudget::default())
            .unwrap();
        let mut sim_spec = hot_spec(BackendKind::SpnSim);
        sim_spec.stochastic.sampling = SamplingPlan::Fixed(3000);
        sim_spec.stochastic.confidence = 0.99;
        let sim = backend_for(BackendKind::SpnSim)
            .run(&sim_spec, &RunBudget::default())
            .unwrap();
        let (lo, hi) = sim.mttsf.ci.unwrap();
        assert!(
            lo <= exact.mttsf.value && exact.mttsf.value <= hi,
            "exact {} outside sim CI [{lo}, {hi}]",
            exact.mttsf.value
        );
    }
}
