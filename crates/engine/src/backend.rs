//! The `Backend` abstraction: four evaluators, one contract.
//!
//! Every evaluator in the repository — exact CTMC absorption analysis,
//! SPN token-game simulation, protocol DES, and mobility-integrated DES —
//! implements [`Backend`]: `ScenarioSpec` in, [`RunReport`] out, under a
//! caller-supplied [`RunBudget`]. This is what lets sweeps, Pareto
//! enumeration, and cross-validation treat heterogeneous evaluators
//! uniformly instead of hand-rolling one orchestration per evaluator.

use crate::error::EngineError;
use crate::report::{survival_estimates_streaming, Estimate, FailureSplit, RunReport};
use crate::spec::{BackendKind, SamplingPlan, ScenarioSpec};
use gcsids::des::{run_des, DesConfig, FailureCause};
use gcsids::des_mobility::{run_mobility_des, MobilityDesConfig};
use gcsids::metrics::{eviction_impulses, total_cost_reward, ExactTemplate};
use gcsids::model::{build_model, Places};
use numerics::replicate::{run_plan, Completed, OutcomeSink, Replicate};
use numerics::stats::{SurvivalAccumulator, Welford};
use spn::error::SpnError;
use spn::reach::ExploreOptions;
use spn::reward::RewardSet;
use spn::sim::{SimOptions, Simulator};
use std::time::Instant;

/// Resource limits applied to a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunBudget {
    /// Cap on tangible states explored by the exact backend.
    pub max_states: usize,
    /// Optional cap on stochastic replication budgets (clamps a fixed
    /// plan's count and an adaptive plan's `min`/`max` when smaller).
    pub max_replications: Option<u64>,
}

impl Default for RunBudget {
    fn default() -> Self {
        Self {
            max_states: 2_000_000,
            max_replications: None,
        }
    }
}

impl RunBudget {
    fn plan(&self, spec: &ScenarioSpec) -> SamplingPlan {
        let plan = spec.stochastic.sampling;
        self.max_replications.map_or(plan, |cap| plan.capped(cap))
    }
}

/// A uniform evaluator of scenario specs.
pub trait Backend: Sync {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Evaluate `spec` within `budget`.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidSpec`] for inconsistent specs and
    /// [`EngineError::Solver`] for evaluator failures.
    fn run(&self, spec: &ScenarioSpec, budget: &RunBudget) -> Result<RunReport, EngineError>;
}

/// The backend implementation for a kind.
pub fn backend_for(kind: BackendKind) -> &'static dyn Backend {
    match kind {
        BackendKind::Exact => &ExactBackend,
        BackendKind::SpnSim => &SpnSimBackend,
        BackendKind::Des => &DesBackend,
        BackendKind::MobilityDes => &MobilityDesBackend,
    }
}

/// Exact CTMC absorption analysis (the paper's analytic path).
pub struct ExactBackend;

impl ExactBackend {
    /// Evaluate against an already-explored template (the runner's
    /// explore-once-solve-many path for batched rate-only scenarios).
    ///
    /// # Errors
    /// Propagates evaluation failures.
    pub fn run_with_template(
        template: &ExactTemplate,
        spec: &ScenarioSpec,
    ) -> Result<RunReport, EngineError> {
        spec.validate()?;
        let t0 = Instant::now();
        let (e, survival) = template.evaluate_with_survival(&spec.system, &spec.mission_times)?;
        Ok(Self::report_from_evaluation(
            spec,
            &e,
            survival,
            t0.elapsed().as_secs_f64(),
        ))
    }

    fn report_from_evaluation(
        spec: &ScenarioSpec,
        e: &gcsids::metrics::Evaluation,
        survival: Option<Vec<f64>>,
        wall_seconds: f64,
    ) -> RunReport {
        RunReport {
            scenario: spec.name.clone(),
            backend: BackendKind::Exact,
            mttsf: Estimate::exact(e.mttsf_seconds),
            c_total: Estimate::exact(e.c_total_hop_bits_per_sec),
            cost_components: Some(e.cost_components),
            failure: FailureSplit {
                p_c1: e.p_failure_c1,
                p_c2: e.p_failure_c2,
                p_other: 0.0,
            },
            state_count: Some(e.state_count),
            edge_count: Some(e.edge_count),
            replications: None,
            censored: None,
            zero_duration: None,
            target_met: None,
            survival: survival.map(|s| {
                spec.mission_times
                    .iter()
                    .copied()
                    .zip(s.into_iter().map(Estimate::exact))
                    .collect()
            }),
            wall_seconds,
        }
    }
}

impl Backend for ExactBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Exact
    }

    fn run(&self, spec: &ScenarioSpec, budget: &RunBudget) -> Result<RunReport, EngineError> {
        spec.validate()?;
        let t0 = Instant::now();
        // A standalone run solves on the freshly explored graph directly;
        // the template/re-weight machinery only pays off across a batch.
        let opts = ExploreOptions {
            max_states: budget.max_states,
            ..Default::default()
        };
        let model = build_model(&spec.system);
        let graph = spn::reach::explore(&model.net, &opts)?;
        // One CTMC build serves both the absorption and the survival solve.
        let (e, survival) = gcsids::metrics::evaluate_graph(&model, &graph, &spec.mission_times)?;
        Ok(Self::report_from_evaluation(
            spec,
            &e,
            survival,
            t0.elapsed().as_secs_f64(),
        ))
    }
}

/// The per-replication summary every stochastic backend reduces to before
/// aggregation.
struct Rep {
    time: f64,
    cost_rate: f64,
    cause: FailureCause,
}

/// Streaming aggregation of stochastic replications into the common
/// report fields — one sink shared by the SPN-sim, DES, and mobility-DES
/// backends via the `numerics::replicate` engine. No outcome or event
/// `Vec` is ever materialized: Welford moments for MTTSF and cost, a
/// [`SurvivalAccumulator`] for the mission grid, and plain counters for
/// the failure split.
#[derive(Clone)]
struct StochasticSink {
    mttsf: Welford,
    cost_rate: Welford,
    c1: u64,
    c2: u64,
    other: u64,
    censored: u64,
    zero_duration: u64,
    survival: SurvivalAccumulator,
    confidence: f64,
    /// First per-replication error in index order (aborts the run).
    error: Option<SpnError>,
}

impl StochasticSink {
    fn new(spec: &ScenarioSpec) -> Self {
        Self {
            mttsf: Welford::new(),
            cost_rate: Welford::new(),
            c1: 0,
            c2: 0,
            other: 0,
            censored: 0,
            zero_duration: 0,
            survival: SurvivalAccumulator::new(&spec.mission_times),
            confidence: spec.stochastic.confidence,
            error: None,
        }
    }

    fn into_report(
        self,
        spec: &ScenarioSpec,
        kind: BackendKind,
        replications: u64,
        target_met: Option<bool>,
        wall: f64,
    ) -> RunReport {
        let ended = (self.c1 + self.c2 + self.other) as f64;
        let failure = if ended > 0.0 {
            FailureSplit {
                p_c1: self.c1 as f64 / ended,
                p_c2: self.c2 as f64 / ended,
                p_other: self.other as f64 / ended,
            }
        } else {
            FailureSplit::default()
        };
        let survival = if spec.mission_times.is_empty() {
            None
        } else {
            Some(survival_estimates_streaming(
                &self.survival,
                self.confidence,
            ))
        };
        RunReport {
            scenario: spec.name.clone(),
            backend: kind,
            mttsf: Estimate::from_welford(&self.mttsf, self.confidence),
            c_total: Estimate::from_welford(&self.cost_rate, self.confidence),
            cost_components: None,
            failure,
            state_count: None,
            edge_count: None,
            replications: Some(replications),
            censored: Some(self.censored),
            zero_duration: Some(self.zero_duration),
            target_met,
            survival,
            wall_seconds: wall,
        }
    }
}

impl OutcomeSink<Result<Rep, SpnError>> for StochasticSink {
    fn record(&mut self, outcome: Result<Rep, SpnError>) {
        let rep = match outcome {
            Ok(rep) => rep,
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
                return;
            }
        };
        self.survival
            .push(rep.time, rep.cause == FailureCause::Censored);
        if rep.time <= 0.0 {
            // Censored-at-zero: nothing was observed, so the outcome's 0.0
            // cost rate is a placeholder, not a measurement (see
            // `gcsids::des::DesStats::zero_duration`).
            self.zero_duration += 1;
            self.censored += 1;
            return;
        }
        self.cost_rate.push(rep.cost_rate);
        match rep.cause {
            FailureCause::DataLeak => {
                self.c1 += 1;
                self.mttsf.push(rep.time);
            }
            FailureCause::ByzantineCapture => {
                self.c2 += 1;
                self.mttsf.push(rep.time);
            }
            FailureCause::Attrition => {
                self.other += 1;
                self.mttsf.push(rep.time);
            }
            FailureCause::Censored => self.censored += 1,
        }
    }

    fn merge(&mut self, other: Self) {
        self.mttsf.merge(&other.mttsf);
        self.cost_rate.merge(&other.cost_rate);
        self.c1 += other.c1;
        self.c2 += other.c2;
        self.other += other.other;
        self.censored += other.censored;
        self.zero_duration += other.zero_duration;
        self.survival.merge(&other.survival);
        // self covers the earlier index range, so its error stays first
        if self.error.is_none() {
            self.error = other.error;
        }
    }

    fn precision(&self) -> Option<f64> {
        if self.error.is_some() {
            // fatal replication error: stop spawning batches immediately
            return Some(0.0);
        }
        self.mttsf.relative_precision(self.confidence)
    }
}

/// Run a stochastic task under the spec's sampling plan (capped by the
/// budget) and convert the sink into the common report, surfacing the
/// first per-replication error as an engine failure.
fn run_stochastic<R>(
    task: &R,
    spec: &ScenarioSpec,
    budget: &RunBudget,
    kind: BackendKind,
    t0: Instant,
) -> Result<RunReport, EngineError>
where
    R: Replicate<Outcome = Result<Rep, SpnError>>,
{
    let plan = budget.plan(spec);
    // The spec's own plan already validated, but a budget cap can
    // degenerate it (max_replications = Some(0) clamps a fixed count to
    // zero) — surface that as an error instead of panicking in run_plan.
    plan.validate().map_err(EngineError::InvalidSpec)?;
    let done: Completed<StochasticSink> =
        run_plan(task, &plan, spec.stochastic.master_seed, || {
            StochasticSink::new(spec)
        });
    if let Some(e) = done.sink.error {
        return Err(EngineError::Solver(e));
    }
    Ok(done.sink.into_report(
        spec,
        kind,
        done.replications,
        done.target_met,
        t0.elapsed().as_secs_f64(),
    ))
}

/// Monte-Carlo token-game simulation of the Figure-1 SPN, with the same
/// cost rewards as the exact evaluator.
pub struct SpnSimBackend;

/// One SPN-sim replication reduced to the common summary.
struct SpnSimTask<'a> {
    sim: Simulator<'a>,
    places: Places,
}

impl Replicate for SpnSimTask<'_> {
    type Outcome = Result<Rep, SpnError>;

    fn run_one(&self, seed: u64) -> Self::Outcome {
        let o = self.sim.run_one(seed)?;
        let hop_bits: f64 = o.accumulated.iter().sum();
        let cost_rate = if o.time > 0.0 { hop_bits / o.time } else { 0.0 };
        let cause = if !o.absorbed {
            FailureCause::Censored
        } else if o.final_marking.tokens(self.places.gf) > 0 {
            FailureCause::DataLeak
        } else if o.final_marking.tokens(self.places.tm) + o.final_marking.tokens(self.places.ucm)
            == 0
        {
            FailureCause::Attrition
        } else {
            FailureCause::ByzantineCapture
        };
        Ok(Rep {
            time: o.time,
            cost_rate,
            cause,
        })
    }
}

impl Backend for SpnSimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::SpnSim
    }

    fn run(&self, spec: &ScenarioSpec, budget: &RunBudget) -> Result<RunReport, EngineError> {
        spec.validate()?;
        let t0 = Instant::now();
        let model = build_model(&spec.system);
        let mut rewards = RewardSet::new().with_rate(total_cost_reward(&spec.system, &model));
        for imp in eviction_impulses(&model)? {
            rewards = rewards.with_impulse(imp);
        }
        let opts = SimOptions {
            max_time: spec.stochastic.max_time,
            ..Default::default()
        };
        let task = SpnSimTask {
            sim: Simulator::new(&model.net, &rewards, opts),
            places: model.places,
        };
        run_stochastic(&task, spec, budget, BackendKind::SpnSim, t0)
    }
}

/// Protocol-level discrete-event simulation (actual votes, actual rekeys,
/// calibrated birth–death group dynamics).
pub struct DesBackend;

/// One protocol-DES replication reduced to the common summary.
struct DesTask(DesConfig);

impl Replicate for DesTask {
    type Outcome = Result<Rep, SpnError>;

    fn run_one(&self, seed: u64) -> Self::Outcome {
        let o = run_des(&self.0, seed);
        Ok(Rep {
            time: o.time,
            cost_rate: o.mean_cost_rate,
            cause: o.cause,
        })
    }
}

impl Backend for DesBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Des
    }

    fn run(&self, spec: &ScenarioSpec, budget: &RunBudget) -> Result<RunReport, EngineError> {
        spec.validate()?;
        let t0 = Instant::now();
        let mut cfg = DesConfig::new(spec.system.clone());
        cfg.max_time = spec.stochastic.max_time;
        run_stochastic(&DesTask(cfg), spec, budget, BackendKind::Des, t0)
    }
}

/// Mobility-integrated DES: groups are live connected components of a
/// random-waypoint network.
pub struct MobilityDesBackend;

/// One mobility-DES replication reduced to the common summary.
struct MobilityTask(MobilityDesConfig);

impl Replicate for MobilityTask {
    type Outcome = Result<Rep, SpnError>;

    fn run_one(&self, seed: u64) -> Self::Outcome {
        let o = run_mobility_des(&self.0, seed);
        let cost_rate = if o.time > 0.0 {
            o.hop_bits / o.time
        } else {
            0.0
        };
        Ok(Rep {
            time: o.time,
            cost_rate,
            cause: o.cause,
        })
    }
}

impl Backend for MobilityDesBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::MobilityDes
    }

    fn run(&self, spec: &ScenarioSpec, budget: &RunBudget) -> Result<RunReport, EngineError> {
        spec.validate()?;
        let t0 = Instant::now();
        let mut cfg = MobilityDesConfig::new(spec.system.clone());
        cfg.radio_range = spec.mobility.radio_range;
        cfg.dt = spec.mobility.dt;
        cfg.max_time = spec.stochastic.max_time;
        run_stochastic(
            &MobilityTask(cfg),
            spec,
            budget,
            BackendKind::MobilityDes,
            t0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsids::config::SystemConfig;

    /// Small, fast-failing system so the stochastic backends finish quickly.
    fn hot_spec(backend: BackendKind) -> ScenarioSpec {
        let mut sys = SystemConfig::paper_default();
        sys.node_count = 12;
        sys.vote_participants = 3;
        sys.attacker.base_rate = 1.0 / 600.0;
        sys.detection = sys.detection.with_interval(120.0);
        let mut spec = ScenarioSpec::paper_default(backend);
        spec.name = format!("hot/{}", backend.name());
        spec.system = sys;
        spec.stochastic.sampling = SamplingPlan::Fixed(40);
        spec.stochastic.max_time = 200_000.0;
        spec.mobility.dt = 2.0;
        spec
    }

    #[test]
    fn every_backend_produces_a_report() {
        for kind in BackendKind::all() {
            let spec = hot_spec(kind);
            let report = backend_for(kind).run(&spec, &RunBudget::default()).unwrap();
            assert_eq!(report.backend, kind);
            assert_eq!(report.scenario, spec.name);
            assert!(report.mttsf.value > 0.0, "{kind:?}: {report:?}");
            assert!(report.c_total.value > 0.0, "{kind:?}");
            let f = report.failure;
            assert!(
                (f.p_c1 + f.p_c2 + f.p_other - 1.0).abs() < 1e-9,
                "{kind:?}: split {f:?}"
            );
            if kind == BackendKind::Exact {
                assert!(report.state_count.unwrap() > 10);
                assert!(report.mttsf.ci.is_none());
            } else {
                assert_eq!(report.replications, Some(40));
                assert!(report.mttsf.ci.is_some(), "{kind:?} should carry a CI");
            }
        }
    }

    #[test]
    fn mission_survival_reported_by_every_backend() {
        for kind in BackendKind::all() {
            let mut spec = hot_spec(kind);
            spec.mission_times = vec![0.0, 20_000.0, 80_000.0];
            let report = backend_for(kind).run(&spec, &RunBudget::default()).unwrap();
            let surv = report.survival.expect("mission grid requested");
            assert_eq!(surv.len(), 3);
            assert_eq!(surv[0].0, 0.0);
            assert!(
                (surv[0].1.value - 1.0).abs() < 1e-9,
                "{kind:?}: S(0) = {}",
                surv[0].1.value
            );
            for w in surv.windows(2) {
                assert!(
                    w[1].1.value <= w[0].1.value + 1e-9,
                    "{kind:?}: survival not monotone: {surv:?}"
                );
            }
            for (t, e) in &surv {
                assert!(
                    (0.0..=1.0).contains(&e.value),
                    "{kind:?} t={t}: {}",
                    e.value
                );
                if kind == BackendKind::Exact {
                    assert!(e.ci.is_none());
                } else {
                    let (lo, hi) = e.ci.expect("stochastic survival carries a CI");
                    assert!(lo <= e.value && e.value <= hi);
                }
            }
        }
    }

    #[test]
    fn no_mission_grid_means_no_survival_field() {
        let spec = hot_spec(BackendKind::Des);
        let report = backend_for(BackendKind::Des)
            .run(&spec, &RunBudget::default())
            .unwrap();
        assert!(report.survival.is_none());
    }

    #[test]
    fn survival_beyond_horizon_is_rejected_up_front() {
        // a grid point past the censoring horizon can only yield a
        // failure-biased or empty estimate — the spec must not validate
        let mut spec = hot_spec(BackendKind::Des);
        spec.stochastic.max_time = 1.0;
        spec.stochastic.sampling = SamplingPlan::Fixed(5);
        spec.mission_times = vec![0.5, 10.0];
        let out = backend_for(BackendKind::Des).run(&spec, &RunBudget::default());
        assert!(matches!(out, Err(EngineError::InvalidSpec(_))));
        // at the horizon itself the estimate is fine (censored runs are
        // still at risk there), including the all-censored zero-variance
        // case — finite bounds, no NaN
        spec.mission_times = vec![0.5, 1.0];
        let report = backend_for(BackendKind::Des)
            .run(&spec, &RunBudget::default())
            .unwrap();
        let surv = report.survival.unwrap();
        assert_eq!(surv[0].1.value, 1.0);
        assert_eq!(surv[1].1.value, 1.0);
        let (lo, hi) = surv[1].1.ci.unwrap();
        assert!(!lo.is_nan() && (hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_censored_run_is_not_estimable() {
        // A horizon far below any failure time censors every replication:
        // MTTSF must be NaN ("not estimable"), never 0.0.
        let mut spec = hot_spec(BackendKind::Des);
        spec.stochastic.max_time = 1.0;
        spec.stochastic.sampling = SamplingPlan::Fixed(5);
        let report = backend_for(BackendKind::Des)
            .run(&spec, &RunBudget::default())
            .unwrap();
        assert_eq!(report.censored, Some(5));
        assert!(report.mttsf.value.is_nan());
        assert_eq!(
            report.failure.p_c1 + report.failure.p_c2 + report.failure.p_other,
            0.0
        );
        // and the JSON encoding stays parseable (NaN → null)
        assert!(crate::json::Value::parse(&report.to_json()).is_ok());
    }

    #[test]
    fn adaptive_spec_reports_replications_used_and_verdict() {
        let mut spec = hot_spec(BackendKind::Des);
        spec.stochastic.sampling = SamplingPlan::Adaptive {
            target_rel_halfwidth: 0.5, // loose: met quickly on the hot system
            min: 20,
            max: 200,
            batch: 20,
        };
        let report = backend_for(BackendKind::Des)
            .run(&spec, &RunBudget::default())
            .unwrap();
        let n = report.replications.expect("stochastic run");
        assert!((20..=200).contains(&n), "used {n}");
        let met = report.target_met.expect("adaptive run carries a verdict");
        if met {
            let (lo, hi) = report.mttsf.ci.unwrap();
            let half = (hi - lo) / 2.0;
            assert!(
                half / report.mttsf.value.abs() <= 0.5,
                "claimed target met: half {half} vs mean {}",
                report.mttsf.value
            );
        } else {
            assert_eq!(n, 200, "unmet target must exhaust the budget");
        }
        // bit-identical to the fixed plan of the same size (the adaptive
        // executor is a pure prefix of the fixed one)
        let mut fixed = spec.clone();
        fixed.stochastic.sampling = SamplingPlan::Fixed(n);
        let fixed_report = backend_for(BackendKind::Des)
            .run(&fixed, &RunBudget::default())
            .unwrap();
        assert_eq!(fixed_report.mttsf, report.mttsf);
        assert_eq!(fixed_report.c_total, report.c_total);
        assert_eq!(fixed_report.target_met, None);
    }

    #[test]
    fn adaptive_budget_exhaustion_is_reported() {
        let mut spec = hot_spec(BackendKind::Des);
        spec.stochastic.sampling = SamplingPlan::Adaptive {
            target_rel_halfwidth: 1e-6, // unreachable at this budget
            min: 10,
            max: 30,
            batch: 10,
        };
        let report = backend_for(BackendKind::Des)
            .run(&spec, &RunBudget::default())
            .unwrap();
        assert_eq!(report.replications, Some(30));
        assert_eq!(report.target_met, Some(false));
        // the verdict travels through the JSON round-trip
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.target_met, Some(false));
        assert_eq!(back.replications, Some(30));
    }

    #[test]
    fn replication_budget_caps_adaptive_plans_too() {
        let mut spec = hot_spec(BackendKind::Des);
        spec.stochastic.sampling = SamplingPlan::Adaptive {
            target_rel_halfwidth: 1e-6,
            min: 10,
            max: 500,
            batch: 50,
        };
        let budget = RunBudget {
            max_replications: Some(25),
            ..Default::default()
        };
        let report = backend_for(BackendKind::Des).run(&spec, &budget).unwrap();
        assert_eq!(report.replications, Some(25));
    }

    #[test]
    fn zero_replication_budget_is_an_error_not_a_panic() {
        // max_replications is a public field: a zero cap degenerates the
        // sampling plan and must surface as InvalidSpec, not a panic.
        let spec = hot_spec(BackendKind::Des);
        let budget = RunBudget {
            max_replications: Some(0),
            ..Default::default()
        };
        let out = backend_for(BackendKind::Des).run(&spec, &budget);
        assert!(matches!(out, Err(EngineError::InvalidSpec(_))), "{out:?}");
    }

    #[test]
    fn replication_budget_caps_work() {
        let spec = hot_spec(BackendKind::Des);
        let budget = RunBudget {
            max_replications: Some(5),
            ..Default::default()
        };
        let report = backend_for(BackendKind::Des).run(&spec, &budget).unwrap();
        assert_eq!(report.replications, Some(5));
    }

    #[test]
    fn state_budget_caps_exact_exploration() {
        let spec = hot_spec(BackendKind::Exact);
        let budget = RunBudget {
            max_states: 3,
            ..Default::default()
        };
        let out = backend_for(BackendKind::Exact).run(&spec, &budget);
        assert!(matches!(
            out,
            Err(EngineError::Solver(
                spn::error::SpnError::StateSpaceExceeded { cap: 3 }
            ))
        ));
    }

    #[test]
    fn spn_sim_agrees_with_exact_within_ci() {
        let exact_spec = hot_spec(BackendKind::Exact);
        let exact = backend_for(BackendKind::Exact)
            .run(&exact_spec, &RunBudget::default())
            .unwrap();
        let mut sim_spec = hot_spec(BackendKind::SpnSim);
        sim_spec.stochastic.sampling = SamplingPlan::Fixed(3000);
        sim_spec.stochastic.confidence = 0.99;
        let sim = backend_for(BackendKind::SpnSim)
            .run(&sim_spec, &RunBudget::default())
            .unwrap();
        let (lo, hi) = sim.mttsf.ci.unwrap();
        assert!(
            lo <= exact.mttsf.value && exact.mttsf.value <= hi,
            "exact {} outside sim CI [{lo}, {hi}]",
            exact.mttsf.value
        );
    }
}
