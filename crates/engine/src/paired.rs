//! CRN-paired A/B comparison of two scenario specs.
//!
//! Both arms run the same fixed replication grid under the same master
//! seed: replication `i` of either arm uses `child_seed(master_seed, i)`,
//! so the arms are coupled by common random numbers. [`compare`]
//! differences each replication pair *before* aggregating, which cancels
//! the shared sampling noise — the paired confidence interval on a delta
//! is typically far tighter than the interval obtained by differencing
//! two independently-estimated arms at the same replication budget
//! (`ComparisonReport` carries both half-widths so the gain is visible
//! in every report).
//!
//! The degenerate self-comparison is exact: a spec compared against an
//! identical spec produces per-replication deltas of bitwise `0.0` and a
//! `(0.0, 0.0)` interval on every metric, on every stochastic backend.

use crate::backend::{per_replication_outcomes, Rep, RunBudget};
use crate::error::EngineError;
use crate::json::Value;
use crate::report::{est_from_value, est_to_value, num, Estimate};
use crate::spec::{BackendKind, SamplingPlan, ScenarioSpec};
use gcsids::des::FailureCause;
use numerics::stats::Welford;

/// A paired delta estimate (`variant − baseline`) for one metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaEstimate {
    /// Mean per-pair delta with its *paired* confidence interval.
    pub delta: Estimate,
    /// Half-width of the paired interval (`NaN` below two pairs).
    pub paired_halfwidth: f64,
    /// Half-width the same budget would have bought without pairing:
    /// per-arm intervals differenced in quadrature,
    /// `sqrt(h_baseline² + h_variant²)` (`NaN` below two observations on
    /// either arm).
    pub unpaired_halfwidth: f64,
    /// Replication pairs contributing to this metric.
    pub observations: u64,
}

/// The outcome of a paired comparison. Contains no wall-clock timing, so
/// a report is a pure function of the two specs — byte-stable goldens.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonReport {
    /// Baseline arm's scenario name.
    pub baseline: String,
    /// Variant arm's scenario name.
    pub variant: String,
    /// The (shared) stochastic backend both arms ran on.
    pub backend: BackendKind,
    /// Replication pairs executed.
    pub replications: u64,
    /// Confidence level of every interval below.
    pub confidence: f64,
    /// ΔMTTSF over pairs where both arms observed a failure.
    pub delta_mttsf: DeltaEstimate,
    /// Δ mean cost rate over pairs where both arms observed positive
    /// duration.
    pub delta_cost: DeltaEstimate,
    /// Δ mission survival (indicator differences) per mission time;
    /// absent when the specs carry no mission grid.
    pub delta_survival: Option<Vec<(f64, DeltaEstimate)>>,
    /// Largest per-pair `|Δ failure time|` — a coupling diagnostic: 0.0
    /// certifies bitwise-identical trajectories (self-comparison).
    pub max_abs_delta_time: f64,
    /// Largest per-pair `|Δ cost rate|` over pairs with positive duration.
    pub max_abs_delta_cost: f64,
}

fn arm_halfwidth(w: &Welford, confidence: f64) -> f64 {
    if w.count() < 2 {
        f64::NAN
    } else {
        w.confidence_interval(confidence).half_width
    }
}

fn delta_estimate(d: &Welford, base: &Welford, var: &Welford, confidence: f64) -> DeltaEstimate {
    let delta = Estimate::from_welford(d, confidence);
    let paired_halfwidth = match delta.ci {
        Some((lo, hi)) => (hi - lo) / 2.0,
        None => f64::NAN,
    };
    let hb = arm_halfwidth(base, confidence);
    let hv = arm_halfwidth(var, confidence);
    DeltaEstimate {
        delta,
        paired_halfwidth,
        unpaired_halfwidth: (hb * hb + hv * hv).sqrt(),
        observations: d.count(),
    }
}

/// Paired Welford plus the two per-arm Welfords it is compared against.
#[derive(Clone)]
struct PairedMoments {
    delta: Welford,
    base: Welford,
    var: Welford,
}

impl PairedMoments {
    fn new() -> Self {
        Self {
            delta: Welford::new(),
            base: Welford::new(),
            var: Welford::new(),
        }
    }

    fn push(&mut self, b: f64, v: f64) {
        self.delta.push(v - b);
        self.base.push(b);
        self.var.push(v);
    }

    fn estimate(&self, confidence: f64) -> DeltaEstimate {
        delta_estimate(&self.delta, &self.base, &self.var, confidence)
    }
}

/// Did this replication survive mission time `t`? Censored runs reached
/// the horizon (validation keeps every grid point at or below it).
fn survives(r: &Rep, t: f64) -> bool {
    r.cause == FailureCause::Censored || r.time > t
}

fn uncensored(r: &Rep) -> bool {
    r.cause != FailureCause::Censored && r.time > 0.0
}

/// Compare `variant` against `baseline` with common random numbers.
///
/// Both specs must use the same stochastic backend, identical stochastic
/// options (master seed, horizon, confidence, sampling plan) and mission
/// grids, and a [`SamplingPlan::Fixed`] plan — pairing needs a
/// replication grid known up front, not an adaptive stopping rule. The
/// per-pair delta convention is `variant − baseline` throughout.
///
/// # Errors
/// [`EngineError::InvalidSpec`] when either spec is invalid or the pair
/// violates the contract above; [`EngineError::Solver`] when a
/// replication fails.
pub fn compare(
    baseline: &ScenarioSpec,
    variant: &ScenarioSpec,
    budget: &RunBudget,
) -> Result<ComparisonReport, EngineError> {
    baseline.validate()?;
    variant.validate()?;
    if baseline.backend == BackendKind::Exact {
        return Err(EngineError::InvalidSpec(
            "paired comparison requires a stochastic backend — the exact solver has no \
             replications to pair (its outputs can be differenced directly)"
                .into(),
        ));
    }
    if baseline.backend != variant.backend {
        return Err(EngineError::InvalidSpec(format!(
            "paired comparison requires one backend on both arms, got {} vs {}",
            baseline.backend.name(),
            variant.backend.name()
        )));
    }
    if baseline.stochastic != variant.stochastic {
        return Err(EngineError::InvalidSpec(
            "paired comparison requires identical stochastic options on both arms \
             (master seed, horizon, confidence, sampling plan)"
                .into(),
        ));
    }
    if baseline.mission_times != variant.mission_times {
        return Err(EngineError::InvalidSpec(
            "paired comparison requires identical mission grids on both arms".into(),
        ));
    }
    let plan = baseline.stochastic.sampling;
    let plan = budget.max_replications.map_or(plan, |cap| plan.capped(cap));
    plan.validate().map_err(EngineError::InvalidSpec)?;
    let SamplingPlan::Fixed(n) = plan else {
        return Err(EngineError::InvalidSpec(
            "paired comparison runs a fixed replication grid — use a Fixed sampling plan".into(),
        ));
    };
    let reps_b = per_replication_outcomes(baseline, n)?;
    let reps_v = per_replication_outcomes(variant, n)?;

    let confidence = baseline.stochastic.confidence;
    let grid = &baseline.mission_times;
    let mut mttsf = PairedMoments::new();
    let mut cost = PairedMoments::new();
    let mut survival: Vec<PairedMoments> = grid.iter().map(|_| PairedMoments::new()).collect();
    let mut max_abs_delta_time: f64 = 0.0;
    let mut max_abs_delta_cost: f64 = 0.0;
    for (rb, rv) in reps_b.iter().zip(&reps_v) {
        max_abs_delta_time = max_abs_delta_time.max((rv.time - rb.time).abs());
        if uncensored(rb) && uncensored(rv) {
            mttsf.push(rb.time, rv.time);
        }
        if rb.time > 0.0 && rv.time > 0.0 {
            cost.push(rb.cost_rate, rv.cost_rate);
            max_abs_delta_cost = max_abs_delta_cost.max((rv.cost_rate - rb.cost_rate).abs());
        }
        for (acc, &t) in survival.iter_mut().zip(grid) {
            acc.push(
                f64::from(u8::from(survives(rb, t))),
                f64::from(u8::from(survives(rv, t))),
            );
        }
    }

    Ok(ComparisonReport {
        baseline: baseline.name.clone(),
        variant: variant.name.clone(),
        backend: baseline.backend,
        replications: n,
        confidence,
        delta_mttsf: mttsf.estimate(confidence),
        delta_cost: cost.estimate(confidence),
        delta_survival: (!grid.is_empty()).then(|| {
            grid.iter()
                .copied()
                .zip(survival.iter().map(|m| m.estimate(confidence)))
                .collect()
        }),
        max_abs_delta_time,
        max_abs_delta_cost,
    })
}

fn delta_to_value(d: &DeltaEstimate) -> Value {
    Value::obj([
        ("delta", est_to_value(&d.delta)),
        ("paired_halfwidth", num(d.paired_halfwidth)),
        ("unpaired_halfwidth", num(d.unpaired_halfwidth)),
        ("observations", Value::Num(d.observations as f64)),
    ])
}

fn delta_from_value(v: &Value) -> Result<DeltaEstimate, EngineError> {
    let halfwidth = |name: &str| -> Result<f64, EngineError> {
        match v.field(name)? {
            Value::Null => Ok(f64::NAN),
            other => other.as_f64(),
        }
    };
    Ok(DeltaEstimate {
        delta: est_from_value(v.field("delta")?)?,
        paired_halfwidth: halfwidth("paired_halfwidth")?,
        unpaired_halfwidth: halfwidth("unpaired_halfwidth")?,
        observations: v.field("observations")?.as_u64()?,
    })
}

impl ComparisonReport {
    /// Canonical JSON encoding (sorted keys, NaN as null, no
    /// wall-clock timing — byte-stable for goldens).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("backend", Value::Str(self.backend.name().to_string())),
            ("baseline", Value::Str(self.baseline.clone())),
            ("confidence", Value::Num(self.confidence)),
            ("delta_cost", delta_to_value(&self.delta_cost)),
            ("delta_mttsf", delta_to_value(&self.delta_mttsf)),
            ("max_abs_delta_cost", num(self.max_abs_delta_cost)),
            ("max_abs_delta_time", num(self.max_abs_delta_time)),
            ("replications", Value::Num(self.replications as f64)),
            ("variant", Value::Str(self.variant.clone())),
        ];
        if let Some(surv) = &self.delta_survival {
            let rows = surv
                .iter()
                .map(|(t, d)| Value::Arr(vec![Value::Num(*t), delta_to_value(d)]))
                .collect();
            fields.push(("delta_survival", Value::Arr(rows)));
        }
        Value::obj(fields).encode()
    }

    /// Decode a report encoded by [`ComparisonReport::to_json`].
    ///
    /// # Errors
    /// [`EngineError::Json`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self, EngineError> {
        let v = Value::parse(text)?;
        let delta_survival = match v.opt_field("delta_survival") {
            None => None,
            Some(arr) => Some(
                arr.as_arr()?
                    .iter()
                    .map(|row| {
                        let row = row.as_arr()?;
                        if row.len() != 2 {
                            return Err(EngineError::Json(
                                "delta_survival rows are [time, delta] pairs".into(),
                            ));
                        }
                        Ok((row[0].as_f64()?, delta_from_value(&row[1])?))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            ),
        };
        Ok(Self {
            baseline: v.field("baseline")?.as_str()?.to_string(),
            variant: v.field("variant")?.as_str()?.to_string(),
            backend: BackendKind::from_name(v.field("backend")?.as_str()?)?,
            replications: v.field("replications")?.as_u64()?,
            confidence: v.field("confidence")?.as_f64()?,
            delta_mttsf: delta_from_value(v.field("delta_mttsf")?)?,
            delta_cost: delta_from_value(v.field("delta_cost")?)?,
            delta_survival,
            max_abs_delta_time: v.field("max_abs_delta_time")?.as_f64()?,
            max_abs_delta_cost: v.field("max_abs_delta_cost")?.as_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcsids::config::SystemConfig;
    use scenario::{AttackerStrategy, ScenarioConfig};

    fn hot_pair(backend: BackendKind, n: u64) -> (ScenarioSpec, ScenarioSpec) {
        let mut sys = SystemConfig::paper_default();
        sys.node_count = 12;
        sys.vote_participants = 3;
        sys.attacker.base_rate = 1.0 / 600.0;
        sys.detection = sys.detection.with_interval(120.0);
        let mut base = ScenarioSpec::paper_default(backend);
        base.name = format!("ab-base/{}", backend.name());
        base.system = sys;
        base.stochastic.sampling = SamplingPlan::Fixed(n);
        base.stochastic.max_time = 200_000.0;
        base.mobility.dt = 2.0;
        base.mission_times = vec![0.0, 2_000.0, 20_000.0];
        let mut variant = base.clone();
        variant.name = format!("ab-burst/{}", backend.name());
        variant.scenario = Some(ScenarioConfig {
            attacker: AttackerStrategy::Burst {
                on_rate: 1.0 / 5_000.0,
                off_rate: 1.0 / 5_000.0,
                multiplier: 6.0,
            },
            response: scenario::ResponsePolicy::Evict,
        });
        (base, variant)
    }

    #[test]
    fn self_comparison_is_exactly_zero_on_every_stochastic_backend() {
        for kind in [
            BackendKind::SpnSim,
            BackendKind::Des,
            BackendKind::MobilityDes,
        ] {
            let (base, _) = hot_pair(kind, 30);
            let r = compare(&base, &base, &RunBudget::default()).unwrap();
            assert_eq!(r.max_abs_delta_time, 0.0, "{kind:?}");
            assert_eq!(r.max_abs_delta_cost, 0.0, "{kind:?}");
            assert_eq!(r.delta_mttsf.delta.value, 0.0, "{kind:?}");
            assert_eq!(r.delta_cost.delta.value, 0.0, "{kind:?}");
            assert_eq!(r.delta_mttsf.delta.ci, Some((0.0, 0.0)), "{kind:?}");
            for (_, d) in r.delta_survival.as_ref().unwrap() {
                assert_eq!(d.delta.value, 0.0, "{kind:?}");
            }
        }
    }

    #[test]
    fn paired_interval_is_tighter_than_unpaired_on_a_real_variant() {
        let (base, variant) = hot_pair(BackendKind::Des, 200);
        let r = compare(&base, &variant, &RunBudget::default()).unwrap();
        // burst attacker strictly shortens survival on average
        assert!(
            r.delta_mttsf.delta.value < 0.0,
            "ΔMTTSF = {:?}",
            r.delta_mttsf.delta
        );
        assert!(
            r.delta_mttsf.paired_halfwidth < r.delta_mttsf.unpaired_halfwidth,
            "paired {} vs unpaired {}",
            r.delta_mttsf.paired_halfwidth,
            r.delta_mttsf.unpaired_halfwidth
        );
        assert!(r.delta_cost.paired_halfwidth < r.delta_cost.unpaired_halfwidth);
    }

    #[test]
    fn comparison_report_roundtrips_through_json() {
        let (base, variant) = hot_pair(BackendKind::Des, 40);
        let r = compare(&base, &variant, &RunBudget::default()).unwrap();
        let text = r.to_json();
        let back = ComparisonReport::from_json(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn comparison_is_deterministic() {
        let (base, variant) = hot_pair(BackendKind::SpnSim, 25);
        let a = compare(&base, &variant, &RunBudget::default()).unwrap();
        let b = compare(&base, &variant, &RunBudget::default()).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn mismatched_arms_are_rejected_with_named_errors() {
        let (base, variant) = hot_pair(BackendKind::Des, 20);
        // exact backend has nothing to pair
        let (eb, ev) = hot_pair(BackendKind::Exact, 20);
        let out = compare(&eb, &ev, &RunBudget::default());
        assert!(matches!(out, Err(EngineError::InvalidSpec(ref m)) if m.contains("stochastic")));
        // backend mismatch
        let mut other = variant.clone();
        other.backend = BackendKind::SpnSim;
        let out = compare(&base, &other, &RunBudget::default());
        assert!(matches!(out, Err(EngineError::InvalidSpec(ref m)) if m.contains("backend")));
        // seed mismatch breaks the pairing contract
        let mut reseeded = variant.clone();
        reseeded.stochastic.master_seed ^= 1;
        let out = compare(&base, &reseeded, &RunBudget::default());
        assert!(matches!(out, Err(EngineError::InvalidSpec(ref m)) if m.contains("stochastic")));
        // mission grid mismatch
        let mut grid = variant.clone();
        grid.mission_times = vec![0.0];
        let out = compare(&base, &grid, &RunBudget::default());
        assert!(matches!(out, Err(EngineError::InvalidSpec(ref m)) if m.contains("mission")));
        // adaptive plans have no fixed grid to pair on
        let mut adaptive_b = base.clone();
        let mut adaptive_v = variant.clone();
        let plan = SamplingPlan::Adaptive {
            target_rel_halfwidth: 0.1,
            min: 10,
            max: 100,
            batch: 10,
        };
        adaptive_b.stochastic.sampling = plan;
        adaptive_v.stochastic.sampling = plan;
        let out = compare(&adaptive_b, &adaptive_v, &RunBudget::default());
        assert!(matches!(out, Err(EngineError::InvalidSpec(ref m)) if m.contains("Fixed")));
    }

    #[test]
    fn budget_caps_the_replication_grid() {
        let (base, variant) = hot_pair(BackendKind::Des, 100);
        let budget = RunBudget {
            max_replications: Some(10),
            ..Default::default()
        };
        let r = compare(&base, &variant, &budget).unwrap();
        assert_eq!(r.replications, 10);
    }

    #[test]
    fn paired_deltas_match_manual_differencing_of_backend_runs() {
        // The arms must see exactly the replications a plain Backend::run
        // of each spec would aggregate: check the paired ΔMTTSF mean
        // against the difference of per-arm means restricted to the
        // both-uncensored pair set — on a spec pair with no censoring
        // that is just the difference of the two reported MTTSF means.
        let (base, variant) = hot_pair(BackendKind::Des, 120);
        let r = compare(&base, &variant, &RunBudget::default()).unwrap();
        let rb = crate::backend::backend_for(BackendKind::Des)
            .run(&base, &RunBudget::default())
            .unwrap();
        let rv = crate::backend::backend_for(BackendKind::Des)
            .run(&variant, &RunBudget::default())
            .unwrap();
        if rb.censored == Some(0) && rv.censored == Some(0) {
            let manual = rv.mttsf.value - rb.mttsf.value;
            assert!(
                (r.delta_mttsf.delta.value - manual).abs() < 1e-9,
                "paired {} vs manual {}",
                r.delta_mttsf.delta.value,
                manual
            );
        }
    }
}
