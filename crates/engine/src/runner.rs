//! Batched scenario execution with explore-once-solve-many for the exact
//! backend.
//!
//! [`Runner::run_batch`] partitions a batch by backend. Exact scenarios are
//! further grouped by their structural key (`node_count`, `max_groups`):
//! each group explores its reachability graph **once** and every member
//! solves against the re-weighted cached graph, in parallel under rayon.
//! Stochastic scenarios run one-by-one (each already parallelizes across
//! its replications). Report order matches spec order.

use crate::backend::{backend_for, Backend, ExactBackend, RunBudget};
use crate::error::EngineError;
use crate::report::RunReport;
use crate::spec::{BackendKind, ScenarioSpec};
use gcsids::metrics::ExactTemplate;
use rayon::prelude::*;
use spn::reach::ExploreOptions;
use std::collections::HashMap;

/// Executes scenario specs against their backends.
#[derive(Debug, Clone, Default)]
pub struct Runner {
    /// Budget applied to every run.
    pub budget: RunBudget,
}

impl Runner {
    /// Runner with the default budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runner with an explicit budget.
    pub fn with_budget(budget: RunBudget) -> Self {
        Self { budget }
    }

    /// Run one scenario.
    ///
    /// # Errors
    /// Propagates spec validation and backend failures.
    pub fn run(&self, spec: &ScenarioSpec) -> Result<RunReport, EngineError> {
        backend_for(spec.backend).run(spec, &self.budget)
    }

    /// Run a batch, sharing one state-space exploration across all exact
    /// scenarios with the same structural key. Reports come back in spec
    /// order; the first error aborts the batch.
    ///
    /// # Errors
    /// Propagates spec validation and backend failures.
    pub fn run_batch(&self, specs: &[ScenarioSpec]) -> Result<Vec<RunReport>, EngineError> {
        for spec in specs {
            spec.validate()?;
        }
        // Explore each exact structural family once.
        let mut templates: HashMap<(u32, u32), ExactTemplate> = HashMap::new();
        let opts = ExploreOptions {
            max_states: self.budget.max_states,
            ..Default::default()
        };
        for spec in specs {
            // Clustered exact specs solve a lumped/composed chain of their
            // own — they bypass the shared single-system template cache.
            if spec.backend == BackendKind::Exact && spec.clustered.is_none() {
                let key = (spec.system.node_count, spec.system.max_groups);
                if let std::collections::hash_map::Entry::Vacant(e) = templates.entry(key) {
                    e.insert(ExactTemplate::with_options(&spec.system, &opts)?);
                }
            }
        }

        // Exact scenarios solve in parallel against their cached graphs;
        // stochastic scenarios run sequentially here because each already
        // fans out across replications.
        let exact: Vec<(usize, &ScenarioSpec)> = specs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.backend == BackendKind::Exact)
            .collect();
        let exact_reports: Result<Vec<(usize, RunReport)>, EngineError> = exact
            .par_iter()
            .map(|&(i, spec)| {
                let report = if spec.clustered.is_some() {
                    ExactBackend.run(spec, &self.budget)?
                } else {
                    let key = (spec.system.node_count, spec.system.max_groups);
                    ExactBackend::run_with_template(&templates[&key], spec)?
                };
                Ok((i, report))
            })
            .collect();

        let mut slots: Vec<Option<RunReport>> = vec![None; specs.len()];
        for (i, report) in exact_reports? {
            slots[i] = Some(report);
        }
        for (i, spec) in specs.iter().enumerate() {
            if spec.backend != BackendKind::Exact {
                slots[i] = Some(backend_for(spec.backend).run(spec, &self.budget)?);
            }
        }
        Ok(slots
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect())
    }
}

/// Cartesian scenario-grid expander: one base spec crossed with any subset
/// of sweep axes. Empty axes keep the base value.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    /// Template spec; axis values overwrite its corresponding knobs.
    pub base: ScenarioSpec,
    /// Base detection intervals `T_IDS` (s).
    pub tids: Vec<f64>,
    /// Vote-participant counts `m`.
    pub vote_participants: Vec<u32>,
    /// Detection shapes.
    pub detection_shapes: Vec<ids::functions::RateShape>,
    /// Attacker base rates `λc` (1/s).
    pub attacker_rates: Vec<f64>,
    /// Backends to run every point on.
    pub backends: Vec<BackendKind>,
}

impl ScenarioGrid {
    /// Grid with no axes (expands to just `base`).
    pub fn new(base: ScenarioSpec) -> Self {
        Self {
            base,
            tids: Vec::new(),
            vote_participants: Vec::new(),
            detection_shapes: Vec::new(),
            attacker_rates: Vec::new(),
            backends: Vec::new(),
        }
    }

    /// Sweep the detection interval.
    pub fn tids(mut self, grid: &[f64]) -> Self {
        self.tids = grid.to_vec();
        self
    }

    /// Sweep the vote-participant count.
    pub fn vote_participants(mut self, ms: &[u32]) -> Self {
        self.vote_participants = ms.to_vec();
        self
    }

    /// Sweep the detection shape.
    pub fn detection_shapes(mut self, shapes: &[ids::functions::RateShape]) -> Self {
        self.detection_shapes = shapes.to_vec();
        self
    }

    /// Sweep the attacker base rate.
    pub fn attacker_rates(mut self, rates: &[f64]) -> Self {
        self.attacker_rates = rates.to_vec();
        self
    }

    /// Run every point on each of these backends.
    pub fn backends(mut self, kinds: &[BackendKind]) -> Self {
        self.backends = kinds.to_vec();
        self
    }

    /// Expand to the full cartesian product of the populated axes.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        // Each axis contributes `None` (keep base) when empty.
        let opts = |n: usize| -> Vec<Option<usize>> {
            if n == 0 {
                vec![None]
            } else {
                (0..n).map(Some).collect()
            }
        };
        let mut out = Vec::new();
        for backend in opts(self.backends.len()) {
            for &m in &opts(self.vote_participants.len()) {
                for &shape in &opts(self.detection_shapes.len()) {
                    for &rate in &opts(self.attacker_rates.len()) {
                        for &tid in &opts(self.tids.len()) {
                            let mut spec = self.base.clone();
                            let mut label = spec.name.clone();
                            if let Some(b) = backend {
                                spec.backend = self.backends[b];
                                label.push_str(&format!("/{}", spec.backend.name()));
                            }
                            if let Some(i) = m {
                                let v = self.vote_participants[i];
                                spec.system = spec.system.with_vote_participants(v);
                                label.push_str(&format!("/m={v}"));
                            }
                            if let Some(i) = shape {
                                let s = self.detection_shapes[i];
                                spec.system = spec.system.with_detection_shape(s);
                                label.push_str(&format!("/det={}", s.name()));
                            }
                            if let Some(i) = rate {
                                spec.system.attacker.base_rate = self.attacker_rates[i];
                                label
                                    .push_str(&format!("/lambda_c={:.3e}", self.attacker_rates[i]));
                            }
                            if let Some(i) = tid {
                                let t = self.tids[i];
                                spec.system = spec.system.with_tids(t);
                                label.push_str(&format!("/tids={t}"));
                            }
                            spec.name = label;
                            out.push(spec);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SamplingPlan;
    use gcsids::config::SystemConfig;
    use ids::functions::RateShape;

    fn small_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::paper_default(BackendKind::Exact);
        spec.name = "small".into();
        spec.system.node_count = 12;
        spec.system.vote_participants = 3;
        spec
    }

    #[test]
    fn grid_expansion_counts_and_labels() {
        let specs = ScenarioGrid::new(small_spec())
            .tids(&[30.0, 120.0, 480.0])
            .vote_participants(&[3, 5])
            .expand();
        assert_eq!(specs.len(), 6);
        assert!(specs[0].name.contains("m=3"));
        assert!(specs[0].name.contains("tids=30"));
        assert_eq!(specs[3].system.vote_participants, 5);
        assert_eq!(specs[4].system.detection.base_interval, 120.0);
    }

    #[test]
    fn empty_grid_expands_to_base() {
        let specs = ScenarioGrid::new(small_spec()).expand();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0], small_spec());
    }

    #[test]
    fn batch_matches_individual_runs() {
        let runner = Runner::new();
        let specs = ScenarioGrid::new(small_spec())
            .tids(&[30.0, 120.0])
            .detection_shapes(&RateShape::all())
            .expand();
        assert_eq!(specs.len(), 6);
        let batched = runner.run_batch(&specs).unwrap();
        for (spec, batch_report) in specs.iter().zip(&batched) {
            let solo = runner.run(spec).unwrap();
            let rel = (batch_report.mttsf.value - solo.mttsf.value).abs() / solo.mttsf.value;
            assert!(rel < 1e-9, "{}: {rel}", spec.name);
            assert_eq!(batch_report.scenario, spec.name);
        }
    }

    #[test]
    fn batched_exact_survival_matches_solo() {
        // The batched (reweighted-template) transient solve must agree with
        // the standalone freshly-explored one.
        let mut a = small_spec();
        a.mission_times = vec![0.0, 5.0e4, 2.0e5];
        let mut b = a.clone();
        b.system = b.system.with_tids(30.0);
        b.name = "small/t30".into();
        let reports = Runner::new().run_batch(&[a.clone(), b]).unwrap();
        let solo = Runner::new().run(&a).unwrap();
        let batched = reports[0].survival.as_ref().unwrap();
        let fresh = solo.survival.as_ref().unwrap();
        for ((t1, e1), (t2, e2)) in batched.iter().zip(fresh) {
            assert_eq!(t1, t2);
            assert!(
                (e1.value - e2.value).abs() < 1e-9,
                "{batched:?} vs {fresh:?}"
            );
        }
        assert!(reports[1].survival.as_ref().unwrap()[0].1.value >= 0.999);
    }

    #[test]
    fn batch_mixes_backends() {
        let mut exact = small_spec();
        exact.system.attacker.base_rate = 1.0 / 600.0;
        let mut des = exact.clone();
        des.backend = BackendKind::Des;
        des.name = "small/des".into();
        des.stochastic.sampling = SamplingPlan::Fixed(20);
        des.stochastic.max_time = 200_000.0;
        let reports = Runner::new()
            .run_batch(&[exact.clone(), des.clone()])
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].backend, BackendKind::Exact);
        assert_eq!(reports[1].backend, BackendKind::Des);
        assert_eq!(reports[1].replications, Some(20));
    }

    #[test]
    fn batch_groups_by_structure() {
        // Two structural families in one batch: both must evaluate
        // correctly (each family explored once).
        let mut a = small_spec();
        a.name = "n12".into();
        let mut b = small_spec();
        b.system.node_count = 14;
        b.name = "n14".into();
        let reports = Runner::new().run_batch(&[a, b]).unwrap();
        assert!(reports[0].state_count.unwrap() < reports[1].state_count.unwrap());
    }

    #[test]
    fn batch_routes_clustered_exact_specs_around_the_template_cache() {
        let topo = gcsids::config::ClusterTopology {
            clusters: 3,
            failure_threshold: 2,
        };
        // Fast-failing system: the clustered solve composes over the
        // cluster lifetime, so a paper-default (year-scale) MTTSF would
        // make this test needlessly slow.
        let mut hot = small_spec();
        hot.system.attacker.base_rate = 1.0 / 600.0;
        hot.system.detection = hot.system.detection.with_interval(120.0);
        let mut clustered = hot.clone().with_clusters(topo);
        clustered.name = "small/clustered".into();
        let reports = Runner::new().run_batch(&[hot, clustered.clone()]).unwrap();
        assert_eq!(reports[0].lumping_reduction, None);
        assert!(reports[1].lumping_reduction.unwrap() > 1.0);
        assert!(reports[1].mttsf.value > 0.0);
        // batched result identical to the solo run (same evaluation path)
        let solo = Runner::new().run(&clustered).unwrap();
        assert_eq!(solo.mttsf.value, reports[1].mttsf.value);
    }

    #[test]
    fn invalid_spec_aborts_batch() {
        let mut bad = small_spec();
        bad.system.node_count = 0;
        assert!(Runner::new().run_batch(&[small_spec(), bad]).is_err());
    }

    #[test]
    fn budget_flows_through_runner() {
        let runner = Runner::with_budget(RunBudget {
            max_states: 3,
            ..Default::default()
        });
        let err = runner.run_batch(&[small_spec()]);
        assert!(err.is_err());
    }

    #[test]
    fn grid_backend_axis() {
        let _ = SystemConfig::paper_default();
        let specs = ScenarioGrid::new(small_spec())
            .backends(&[BackendKind::Exact, BackendKind::Des])
            .tids(&[60.0])
            .expand();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].backend, BackendKind::Exact);
        assert_eq!(specs[1].backend, BackendKind::Des);
    }
}
