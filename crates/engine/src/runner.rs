//! Batched scenario execution with explore-once-solve-many for the exact
//! backend.
//!
//! [`Runner::run_batch`] partitions a batch by backend. Exact scenarios are
//! further grouped by their structural key (`node_count`, `max_groups`):
//! each group explores its reachability graph **once** and every member
//! solves against the re-weighted cached graph, in parallel under rayon.
//! Stochastic scenarios run one-by-one (each already parallelizes across
//! its replications). Report order matches spec order.

use crate::backend::{backend_for, BatchProgress, ExactBackend, RunBudget};
use crate::error::EngineError;
use crate::report::RunReport;
use crate::service::TemplateCache;
use crate::spec::{BackendKind, ScenarioSpec};
use gcsids::metrics::ExactTemplate;
use rayon::prelude::*;
use spn::reach::ExploreOptions;
use std::sync::Arc;

/// Executes scenario specs against their backends.
///
/// Every runner owns a [`TemplateCache`] shared by its cache-aware entry
/// points ([`Runner::run_cached`], [`Runner::run_batch`]); cloning a
/// runner shares the cache, and [`Runner::with_cache`] wires an external
/// one in (the service loop's cross-request cache).
#[derive(Debug, Clone, Default)]
pub struct Runner {
    /// Budget applied to every run.
    pub budget: RunBudget,
    cache: Arc<TemplateCache>,
}

impl Runner {
    /// Runner with the default budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runner with an explicit budget.
    pub fn with_budget(budget: RunBudget) -> Self {
        Self {
            budget,
            cache: Arc::default(),
        }
    }

    /// Runner sharing an externally owned template cache (the service
    /// loop's cross-request cache).
    pub fn with_cache(budget: RunBudget, cache: Arc<TemplateCache>) -> Self {
        Self { budget, cache }
    }

    /// The template cache this runner consults.
    pub fn cache(&self) -> &Arc<TemplateCache> {
        &self.cache
    }

    fn explore_options(&self) -> ExploreOptions {
        ExploreOptions {
            max_states: self.budget.max_states,
            ..Default::default()
        }
    }

    /// Run one scenario without touching the template cache.
    ///
    /// # Errors
    /// Propagates spec validation and backend failures.
    pub fn run(&self, spec: &ScenarioSpec) -> Result<RunReport, EngineError> {
        backend_for(spec.backend).run(spec, &self.budget)
    }

    /// Run one scenario through the template cache: flat exact specs
    /// resolve their structural family against the cache (hit or miss)
    /// and solve on the memoized template; everything else bypasses. The
    /// report carries the cache telemetry in
    /// [`RunReport::template_cache`]. Results are bit-identical to
    /// [`Runner::run`] up to `wall_seconds` and that field.
    ///
    /// # Errors
    /// Propagates spec validation and backend failures.
    pub fn run_cached(&self, spec: &ScenarioSpec) -> Result<RunReport, EngineError> {
        self.run_cached_observed(spec, &mut |_| {})
    }

    /// [`Runner::run_cached`] with incremental sampling-progress
    /// observation on the stochastic backends (see
    /// [`crate::Backend::run_observed`]).
    ///
    /// # Errors
    /// Propagates spec validation and backend failures.
    pub fn run_cached_observed(
        &self,
        spec: &ScenarioSpec,
        progress: &mut dyn FnMut(BatchProgress),
    ) -> Result<RunReport, EngineError> {
        spec.validate()?;
        let (template, outcome) = self.cache.lookup(spec, &self.explore_options())?;
        let mut report = match template {
            Some(t) => ExactBackend::run_with_template(&t, spec)?,
            None => backend_for(spec.backend).run_observed(spec, &self.budget, progress)?,
        };
        report.template_cache = Some(self.cache.info(outcome));
        Ok(report)
    }

    /// Run a batch with **per-spec error isolation**: every spec produces
    /// either a report or its own error, in spec order — one malformed or
    /// failing spec never aborts the rest (satellite-1 semantics). Exact
    /// structural families resolve through the template cache (explore
    /// once, solve many, shared across batches on the same runner) and
    /// solve in parallel; stochastic specs run sequentially because each
    /// already fans out across replications.
    pub fn try_batch(&self, specs: &[ScenarioSpec]) -> Vec<Result<RunReport, EngineError>> {
        let opts = self.explore_options();
        // Resolve every cache lookup up front, sequentially: counters and
        // hit/miss attribution stay deterministic in spec order.
        let lookups: Vec<Result<crate::service::CacheLookup, EngineError>> = specs
            .iter()
            .map(|spec| {
                spec.validate()?;
                self.cache.lookup(spec, &opts)
            })
            .collect();

        let mut slots: Vec<Option<Result<RunReport, EngineError>>> =
            specs.iter().map(|_| None).collect();

        // Exact template solves in parallel.
        let templated: Vec<(usize, &ScenarioSpec, &Arc<ExactTemplate>)> = specs
            .iter()
            .enumerate()
            .filter_map(|(i, spec)| match &lookups[i] {
                Ok((Some(t), _)) => Some((i, spec, t)),
                _ => None,
            })
            .collect();
        let solved: Vec<(usize, Result<RunReport, EngineError>)> = templated
            .par_iter()
            .map(|&(i, spec, template)| (i, ExactBackend::run_with_template(template, spec)))
            .collect();
        for (i, result) in solved {
            slots[i] = Some(result);
        }

        for (i, spec) in specs.iter().enumerate() {
            let outcome = match &lookups[i] {
                Err(e) => {
                    slots[i] = Some(Err(e.clone()));
                    continue;
                }
                Ok((_, outcome)) => *outcome,
            };
            if slots[i].is_none() {
                // Bypassed specs (stochastic backends, clustered exact).
                slots[i] = Some(backend_for(spec.backend).run(spec, &self.budget));
            }
            if let Some(Ok(report)) = &mut slots[i] {
                report.template_cache = Some(self.cache.info(outcome));
            }
        }
        slots
            .into_iter()
            // detlint::allow(R001): loop invariant — the fill loop above assigns every index exactly once, independent of spec contents
            .map(|r| r.expect("every slot filled"))
            .collect()
    }

    /// Run a batch, sharing one state-space exploration across all exact
    /// scenarios with the same structural family. Reports come back in
    /// spec order; the first error (in spec order) aborts the batch — use
    /// [`Runner::try_batch`] to keep going past per-spec failures.
    ///
    /// # Errors
    /// Propagates spec validation and backend failures.
    pub fn run_batch(&self, specs: &[ScenarioSpec]) -> Result<Vec<RunReport>, EngineError> {
        for spec in specs {
            spec.validate()?;
        }
        self.try_batch(specs).into_iter().collect()
    }
}

/// Cartesian scenario-grid expander: one base spec crossed with any subset
/// of sweep axes. Empty axes keep the base value.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    /// Template spec; axis values overwrite its corresponding knobs.
    pub base: ScenarioSpec,
    /// Base detection intervals `T_IDS` (s).
    pub tids: Vec<f64>,
    /// Vote-participant counts `m`.
    pub vote_participants: Vec<u32>,
    /// Detection shapes.
    pub detection_shapes: Vec<ids::functions::RateShape>,
    /// Attacker base rates `λc` (1/s).
    pub attacker_rates: Vec<f64>,
    /// Backends to run every point on.
    pub backends: Vec<BackendKind>,
}

impl ScenarioGrid {
    /// Grid with no axes (expands to just `base`).
    pub fn new(base: ScenarioSpec) -> Self {
        Self {
            base,
            tids: Vec::new(),
            vote_participants: Vec::new(),
            detection_shapes: Vec::new(),
            attacker_rates: Vec::new(),
            backends: Vec::new(),
        }
    }

    /// Sweep the detection interval.
    pub fn tids(mut self, grid: &[f64]) -> Self {
        self.tids = grid.to_vec();
        self
    }

    /// Sweep the vote-participant count.
    pub fn vote_participants(mut self, ms: &[u32]) -> Self {
        self.vote_participants = ms.to_vec();
        self
    }

    /// Sweep the detection shape.
    pub fn detection_shapes(mut self, shapes: &[ids::functions::RateShape]) -> Self {
        self.detection_shapes = shapes.to_vec();
        self
    }

    /// Sweep the attacker base rate.
    pub fn attacker_rates(mut self, rates: &[f64]) -> Self {
        self.attacker_rates = rates.to_vec();
        self
    }

    /// Run every point on each of these backends.
    pub fn backends(mut self, kinds: &[BackendKind]) -> Self {
        self.backends = kinds.to_vec();
        self
    }

    /// Expand to the full cartesian product of the populated axes.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        // Each axis contributes `None` (keep base) when empty.
        let opts = |n: usize| -> Vec<Option<usize>> {
            if n == 0 {
                vec![None]
            } else {
                (0..n).map(Some).collect()
            }
        };
        let mut out = Vec::new();
        for backend in opts(self.backends.len()) {
            for &m in &opts(self.vote_participants.len()) {
                for &shape in &opts(self.detection_shapes.len()) {
                    for &rate in &opts(self.attacker_rates.len()) {
                        for &tid in &opts(self.tids.len()) {
                            let mut spec = self.base.clone();
                            let mut label = spec.name.clone();
                            if let Some(b) = backend {
                                spec.backend = self.backends[b];
                                label.push_str(&format!("/{}", spec.backend.name()));
                            }
                            if let Some(i) = m {
                                let v = self.vote_participants[i];
                                spec.system = spec.system.with_vote_participants(v);
                                label.push_str(&format!("/m={v}"));
                            }
                            if let Some(i) = shape {
                                let s = self.detection_shapes[i];
                                spec.system = spec.system.with_detection_shape(s);
                                label.push_str(&format!("/det={}", s.name()));
                            }
                            if let Some(i) = rate {
                                spec.system.attacker.base_rate = self.attacker_rates[i];
                                label
                                    .push_str(&format!("/lambda_c={:.3e}", self.attacker_rates[i]));
                            }
                            if let Some(i) = tid {
                                let t = self.tids[i];
                                spec.system = spec.system.with_tids(t);
                                label.push_str(&format!("/tids={t}"));
                            }
                            spec.name = label;
                            out.push(spec);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SamplingPlan;
    use gcsids::config::SystemConfig;
    use ids::functions::RateShape;

    fn small_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::paper_default(BackendKind::Exact);
        spec.name = "small".into();
        spec.system.node_count = 12;
        spec.system.vote_participants = 3;
        spec
    }

    #[test]
    fn grid_expansion_counts_and_labels() {
        let specs = ScenarioGrid::new(small_spec())
            .tids(&[30.0, 120.0, 480.0])
            .vote_participants(&[3, 5])
            .expand();
        assert_eq!(specs.len(), 6);
        assert!(specs[0].name.contains("m=3"));
        assert!(specs[0].name.contains("tids=30"));
        assert_eq!(specs[3].system.vote_participants, 5);
        assert_eq!(specs[4].system.detection.base_interval, 120.0);
    }

    #[test]
    fn empty_grid_expands_to_base() {
        let specs = ScenarioGrid::new(small_spec()).expand();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0], small_spec());
    }

    #[test]
    fn batch_matches_individual_runs() {
        let runner = Runner::new();
        let specs = ScenarioGrid::new(small_spec())
            .tids(&[30.0, 120.0])
            .detection_shapes(&RateShape::all())
            .expand();
        assert_eq!(specs.len(), 6);
        let batched = runner.run_batch(&specs).unwrap();
        for (spec, batch_report) in specs.iter().zip(&batched) {
            let solo = runner.run(spec).unwrap();
            let rel = (batch_report.mttsf.value - solo.mttsf.value).abs() / solo.mttsf.value;
            assert!(rel < 1e-9, "{}: {rel}", spec.name);
            assert_eq!(batch_report.scenario, spec.name);
        }
    }

    #[test]
    fn batched_exact_survival_matches_solo() {
        // The batched (reweighted-template) transient solve must agree with
        // the standalone freshly-explored one.
        let mut a = small_spec();
        a.mission_times = vec![0.0, 5.0e4, 2.0e5];
        let mut b = a.clone();
        b.system = b.system.with_tids(30.0);
        b.name = "small/t30".into();
        let reports = Runner::new().run_batch(&[a.clone(), b]).unwrap();
        let solo = Runner::new().run(&a).unwrap();
        let batched = reports[0].survival.as_ref().unwrap();
        let fresh = solo.survival.as_ref().unwrap();
        for ((t1, e1), (t2, e2)) in batched.iter().zip(fresh) {
            assert_eq!(t1, t2);
            assert!(
                (e1.value - e2.value).abs() < 1e-9,
                "{batched:?} vs {fresh:?}"
            );
        }
        assert!(reports[1].survival.as_ref().unwrap()[0].1.value >= 0.999);
    }

    #[test]
    fn batch_mixes_backends() {
        let mut exact = small_spec();
        exact.system.attacker.base_rate = 1.0 / 600.0;
        let mut des = exact.clone();
        des.backend = BackendKind::Des;
        des.name = "small/des".into();
        des.stochastic.sampling = SamplingPlan::Fixed(20);
        des.stochastic.max_time = 200_000.0;
        let reports = Runner::new()
            .run_batch(&[exact.clone(), des.clone()])
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].backend, BackendKind::Exact);
        assert_eq!(reports[1].backend, BackendKind::Des);
        assert_eq!(reports[1].replications, Some(20));
    }

    #[test]
    fn batch_groups_by_structure() {
        // Two structural families in one batch: both must evaluate
        // correctly (each family explored once).
        let mut a = small_spec();
        a.name = "n12".into();
        let mut b = small_spec();
        b.system.node_count = 14;
        b.name = "n14".into();
        let reports = Runner::new().run_batch(&[a, b]).unwrap();
        assert!(reports[0].state_count.unwrap() < reports[1].state_count.unwrap());
    }

    #[test]
    fn batch_routes_clustered_exact_specs_around_the_template_cache() {
        let topo = gcsids::config::ClusterTopology {
            clusters: 3,
            failure_threshold: 2,
        };
        // Fast-failing system: the clustered solve composes over the
        // cluster lifetime, so a paper-default (year-scale) MTTSF would
        // make this test needlessly slow.
        let mut hot = small_spec();
        hot.system.attacker.base_rate = 1.0 / 600.0;
        hot.system.detection = hot.system.detection.with_interval(120.0);
        let mut clustered = hot.clone().with_clusters(topo);
        clustered.name = "small/clustered".into();
        let reports = Runner::new().run_batch(&[hot, clustered.clone()]).unwrap();
        assert_eq!(reports[0].lumping_reduction, None);
        assert!(reports[1].lumping_reduction.unwrap() > 1.0);
        assert!(reports[1].mttsf.value > 0.0);
        // batched result identical to the solo run (same evaluation path)
        let solo = Runner::new().run(&clustered).unwrap();
        assert_eq!(solo.mttsf.value, reports[1].mttsf.value);
    }

    #[test]
    fn invalid_spec_aborts_batch() {
        let mut bad = small_spec();
        bad.system.node_count = 0;
        assert!(Runner::new().run_batch(&[small_spec(), bad]).is_err());
    }

    #[test]
    fn try_batch_isolates_per_spec_failures() {
        // Regression (satellite 1): one bad spec must not take down the
        // batch — every other spec still gets its report.
        let mut bad = small_spec();
        bad.system.node_count = 0;
        let mut other = small_spec();
        other.system = other.system.with_tids(30.0);
        other.name = "small/t30".into();
        let results = Runner::new().try_batch(&[small_spec(), bad, other]);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        // failing specs keep order; good reports match the strict batch
        let strict = Runner::new().run_batch(&[small_spec()]).unwrap();
        assert_eq!(
            results[0].as_ref().unwrap().mttsf.value,
            strict[0].mttsf.value
        );
    }

    #[test]
    fn clustered_spec_never_hits_a_flat_family_template() {
        // Regression (satellite 2): the structural-family key includes the
        // cluster topology, so a flat-family entry warmed first can never
        // serve a clustered spec with the same (node_count, max_groups).
        use crate::report::CacheOutcome;
        use crate::service::FamilyKey;
        let topo = gcsids::config::ClusterTopology {
            clusters: 3,
            failure_threshold: 2,
        };
        let mut flat = small_spec();
        flat.system.attacker.base_rate = 1.0 / 600.0;
        flat.system.detection = flat.system.detection.with_interval(120.0);
        let mut clustered = flat.clone().with_clusters(topo);
        clustered.name = "small/clustered".into();
        assert_ne!(FamilyKey::of(&flat), FamilyKey::of(&clustered));

        let runner = Runner::new();
        // warm the flat family
        let warm = runner.run_cached(&flat).unwrap();
        assert_eq!(warm.template_cache.unwrap().outcome, CacheOutcome::Miss);
        // the clustered spec must bypass, not hit the stale flat entry
        let report = runner.run_cached(&clustered).unwrap();
        let info = report.template_cache.unwrap();
        assert_eq!(info.outcome, CacheOutcome::Bypass);
        assert_eq!(info.hits, 0);
        // and it solved the real clustered chain (lumping stats prove it)
        assert!(report.lumping_reduction.unwrap() > 1.0);
        let solo = runner.run(&clustered).unwrap();
        assert_eq!(report.mttsf.value, solo.mttsf.value);
    }

    #[test]
    fn cache_persists_across_batches_on_one_runner() {
        let runner = Runner::new();
        let first = runner.run_batch(&[small_spec()]).unwrap();
        assert_eq!(
            first[0].template_cache.unwrap().outcome,
            crate::report::CacheOutcome::Miss
        );
        // same family again, new batch: served from the warm cache
        let mut again = small_spec();
        again.system = again.system.with_tids(30.0);
        let second = runner.run_batch(&[again]).unwrap();
        let info = second[0].template_cache.unwrap();
        assert_eq!(info.outcome, crate::report::CacheOutcome::Hit);
        assert_eq!((info.hits, info.misses, info.entries), (1, 1, 1));
    }

    #[test]
    fn run_cached_matches_run_up_to_telemetry() {
        let runner = Runner::new();
        let spec = small_spec();
        let mut cached = runner.run_cached(&spec).unwrap();
        let mut plain = runner.run(&spec).unwrap();
        assert!(cached.template_cache.is_some());
        assert!(plain.template_cache.is_none());
        cached.template_cache = None;
        cached.wall_seconds = 0.0;
        plain.wall_seconds = 0.0;
        assert_eq!(cached, plain);
    }

    #[test]
    fn budget_flows_through_runner() {
        let runner = Runner::with_budget(RunBudget {
            max_states: 3,
            ..Default::default()
        });
        let err = runner.run_batch(&[small_spec()]);
        assert!(err.is_err());
    }

    #[test]
    fn grid_backend_axis() {
        let _ = SystemConfig::paper_default();
        let specs = ScenarioGrid::new(small_spec())
            .backends(&[BackendKind::Exact, BackendKind::Des])
            .tids(&[60.0])
            .expand();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].backend, BackendKind::Exact);
        assert_eq!(specs[1].backend, BackendKind::Des);
    }
}
