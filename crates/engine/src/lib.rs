//! Unified experiment engine for the Cho–Chen GCS/IDS model.
//!
//! The repository evaluates the model four different ways — exact CTMC
//! absorption analysis, SPN token-game simulation, protocol DES, and
//! mobility-integrated DES. This crate puts them behind one contract:
//!
//! * [`ScenarioSpec`] — a serializable description of *what* to evaluate
//!   (system, attacker, mobility, detection) and *how* (backend selection,
//!   replication controls). `to_json` / `from_json` round-trip losslessly.
//! * [`Backend`] — `fn run(&self, spec, budget) -> Result<RunReport, _>`,
//!   implemented by all four evaluators ([`backend_for`] picks one by
//!   [`BackendKind`]).
//! * [`RunReport`] — the common output: MTTSF and Ĉtotal (with confidence
//!   intervals where stochastic), the failure-mode split, cost components
//!   and state/edge counts where exact.
//! * [`Runner`] / [`ScenarioGrid`] — batched execution with a cartesian
//!   grid expander. Exact scenarios in a batch share one state-space
//!   exploration per structural family and solve against re-weighted
//!   cached graphs (**explore once, solve many**), which makes rate-only
//!   sweeps (TIDS, λc, detection shape, m) several-fold faster than
//!   per-point exploration.
//!
//! # Example
//!
//! ```
//! use engine::{BackendKind, Runner, ScenarioGrid, ScenarioSpec};
//!
//! let mut base = ScenarioSpec::paper_default(BackendKind::Exact);
//! base.system.node_count = 12; // small so the doctest stays fast
//! base.system.vote_participants = 3;
//! let specs = ScenarioGrid::new(base).tids(&[60.0, 300.0]).expand();
//! let reports = Runner::new().run_batch(&specs).unwrap();
//! assert_eq!(reports.len(), 2);
//! assert!(reports.iter().all(|r| r.mttsf.value > 0.0));
//! ```

pub mod backend;
pub mod error;
pub mod json;
pub mod report;
pub mod runner;
pub mod spec;

pub use backend::{backend_for, Backend, ExactBackend, RunBudget};
pub use error::EngineError;
pub use report::{Estimate, FailureSplit, RunReport};
pub use runner::{Runner, ScenarioGrid};
pub use spec::{BackendKind, MobilityOptions, ScenarioSpec, StochasticOptions};
