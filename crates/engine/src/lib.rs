//! Unified experiment engine for the Cho–Chen GCS/IDS model.
//!
//! The repository evaluates the model four different ways — exact CTMC
//! absorption analysis, SPN token-game simulation, protocol DES, and
//! mobility-integrated DES. This crate puts them behind one contract:
//!
//! * [`ScenarioSpec`] — a serializable description of *what* to evaluate
//!   (system, attacker, mobility, detection) and *how* (backend selection,
//!   replication controls, including an adaptive [`SamplingPlan`] that
//!   samples until the MTTSF confidence interval meets a relative
//!   precision target). `to_json` / `from_json` round-trip losslessly.
//! * [`Backend`] — `fn run(&self, spec, budget) -> Result<RunReport, _>`,
//!   implemented by all four evaluators ([`backend_for`] picks one by
//!   [`BackendKind`]).
//! * [`RunReport`] — the common output: MTTSF and Ĉtotal (with confidence
//!   intervals where stochastic), the failure-mode split, cost components
//!   and state/edge counts where exact, and — when the spec carries a
//!   mission-time grid — the survival curve `P[no security failure by t]`
//!   (uniformization on the exact backend, Kaplan–Meier-style estimates on
//!   the stochastic ones).
//! * [`Runner`] / [`ScenarioGrid`] — batched execution with a cartesian
//!   grid expander. Exact scenarios in a batch share one state-space
//!   exploration per structural family and solve against re-weighted
//!   cached graphs (**explore once, solve many**), which makes rate-only
//!   sweeps (TIDS, λc, detection shape, m) several-fold faster than
//!   per-point exploration.
//! * [`crossval`] — the backends check each other: one scenario runs on the
//!   exact backend and every applicable stochastic backend, and the harness
//!   reports per-metric/per-grid-point agreement (exact value inside the
//!   stochastic CI, with explicit modeling tolerances). The `runner` binary
//!   drives it over a directory of on-disk spec files.
//!
//! # Example
//!
//! ```
//! use engine::{BackendKind, Runner, ScenarioGrid, ScenarioSpec};
//!
//! let mut base = ScenarioSpec::paper_default(BackendKind::Exact);
//! base.system.node_count = 12; // small so the doctest stays fast
//! base.system.vote_participants = 3;
//! let specs = ScenarioGrid::new(base).tids(&[60.0, 300.0]).expand();
//! let reports = Runner::new().run_batch(&specs).unwrap();
//! assert_eq!(reports.len(), 2);
//! assert!(reports.iter().all(|r| r.mttsf.value > 0.0));
//! ```

pub mod backend;
pub mod crossval;
pub mod error;
pub mod json;
pub mod paired;
pub mod report;
pub mod runner;
pub mod service;
pub mod spec;

pub use backend::{backend_for, Backend, BatchProgress, ExactBackend, RunBudget};
pub use crossval::{
    cross_validate, cross_validate_dir, CrossValOptions, CrossValReport, MetricCheck,
    SpecCrossValidation,
};
pub use error::EngineError;
pub use gcsids::config::ClusterTopology;
pub use paired::{compare, ComparisonReport, DeltaEstimate};
pub use report::{
    survival_estimates, survival_estimates_streaming, CacheOutcome, DetectionInfo, Estimate,
    FailureSplit, RunReport, TemplateCacheInfo, TransientInfo,
};
pub use runner::{Runner, ScenarioGrid};
pub use scenario::{AttackerStrategy, ResponsePolicy, ScenarioConfig};
pub use service::{
    serve, CacheBudget, CacheStats, FamilyKey, ServiceConfig, ServiceSummary, TemplateCache,
};
pub use spec::{BackendKind, MobilityOptions, SamplingPlan, ScenarioSpec, StochasticOptions};
