//! Scenario specification: one serializable description of *what* to
//! evaluate (system + attacker + mobility + detection) and *how* (which
//! backend, how many replications).
//!
//! The spec is the engine's single currency: the grid expander produces
//! specs, the runner consumes them, and every backend receives the same
//! shape. `to_json` / `from_json` give a lossless text round-trip (the
//! engine ships its own JSON layer — see [`crate::json`] — because the
//! build environment cannot pull `serde`).

use crate::error::EngineError;
use crate::json::Value;
use gcsids::config::{ClusterTopology, KeyAgreementProtocol, SystemConfig};
use ids::functions::{AttackerProfile, DetectionProfile, RateShape};
use ids::voting::CollusionModel;
pub use numerics::replicate::SamplingPlan;
pub use scenario::{AttackerStrategy, ResponsePolicy, ScenarioConfig};

/// Which evaluator runs the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Exact CTMC absorption analysis of the Figure-1 SPN.
    Exact,
    /// Monte-Carlo token-game simulation of the same SPN.
    SpnSim,
    /// Protocol-level discrete-event simulation (actual votes and rekeys,
    /// birth–death group dynamics).
    Des,
    /// Mobility-integrated DES (groups are the live connected components of
    /// a random-waypoint network).
    MobilityDes,
}

impl BackendKind {
    /// All backends in presentation order.
    pub fn all() -> [BackendKind; 4] {
        [
            BackendKind::Exact,
            BackendKind::SpnSim,
            BackendKind::Des,
            BackendKind::MobilityDes,
        ]
    }

    /// Stable identifier used in JSON and report labels.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Exact => "exact",
            BackendKind::SpnSim => "spn-sim",
            BackendKind::Des => "des",
            BackendKind::MobilityDes => "mobility-des",
        }
    }

    /// Parse a stable identifier.
    ///
    /// # Errors
    /// Returns [`EngineError::Json`] for unknown names.
    pub fn from_name(s: &str) -> Result<Self, EngineError> {
        match s {
            "exact" => Ok(BackendKind::Exact),
            "spn-sim" => Ok(BackendKind::SpnSim),
            "des" => Ok(BackendKind::Des),
            "mobility-des" => Ok(BackendKind::MobilityDes),
            other => Err(EngineError::Json(format!("unknown backend `{other}`"))),
        }
    }

    /// True for backends whose estimates carry sampling error.
    pub fn is_stochastic(&self) -> bool {
        !matches!(self, BackendKind::Exact)
    }
}

/// Monte-Carlo controls shared by the three stochastic backends (ignored by
/// the exact backend).
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticOptions {
    /// How many replications: a fixed count, or adaptive (sequential)
    /// sampling to a relative-precision target on the MTTSF confidence
    /// interval — see [`SamplingPlan`].
    pub sampling: SamplingPlan,
    /// Master seed; per-replication seeds derive from it deterministically.
    pub master_seed: u64,
    /// Censoring horizon (s).
    pub max_time: f64,
    /// Confidence level for reported intervals (e.g. 0.95) — also the
    /// level of the CI that adaptive sampling drives to its target.
    pub confidence: f64,
}

impl Default for StochasticOptions {
    fn default() -> Self {
        Self {
            sampling: SamplingPlan::Fixed(200),
            master_seed: 2009,
            max_time: 3.15e7,
            confidence: 0.95,
        }
    }
}

/// Mobility-backend geometry/timing (only read by
/// [`BackendKind::MobilityDes`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityOptions {
    /// Radio range (m) defining unit-disc groups.
    pub radio_range: f64,
    /// Mobility step (s).
    pub dt: f64,
}

impl Default for MobilityOptions {
    fn default() -> Self {
        Self {
            radio_range: 250.0,
            dt: 1.0,
        }
    }
}

/// A complete, self-contained description of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Human-readable label carried into the report.
    pub name: String,
    /// The system/attacker/detection parameterization.
    pub system: SystemConfig,
    /// Which evaluator to use.
    pub backend: BackendKind,
    /// Monte-Carlo controls for stochastic backends.
    pub stochastic: StochasticOptions,
    /// Mobility geometry for the mobility backend.
    pub mobility: MobilityOptions,
    /// Mission-time grid (s), strictly ascending. When non-empty, every
    /// backend additionally reports `P[no security failure by t]` per grid
    /// point ([`crate::RunReport::survival`]): exactly via uniformization
    /// on the exact backend, as Kaplan–Meier-style estimates with
    /// confidence intervals on the stochastic ones.
    pub mission_times: Vec<f64>,
    /// Optional clustered deployment: `clusters` copies of `system`
    /// (so `clusters × node_count` nodes in total), the system failing
    /// once `failure_threshold` clusters have failed. The exact backend
    /// solves it through the symmetry-lumped / hierarchical pipeline
    /// (`gcsids::clustered`); SPN-sim simulates the flat clustered net;
    /// DES composes per-cluster replications by order statistics. Not
    /// supported by the mobility backend.
    pub clustered: Option<ClusterTopology>,
    /// Optional adversary strategy and response policy (see the `scenario`
    /// crate). `None` means the paper's baseline behavior on every backend
    /// (and keeps committed pre-scenario spec files canonical byte-for-
    /// byte). When set, the report additionally carries detection-quality
    /// metrics ([`crate::RunReport::detection`]). Not combinable with
    /// `clustered`; the mobility backend models attacker strategies only,
    /// so non-evict response policies are rejected there.
    pub scenario: Option<ScenarioConfig>,
}

impl ScenarioSpec {
    /// Spec for the paper's §5 default system on the given backend.
    pub fn paper_default(backend: BackendKind) -> Self {
        Self {
            name: format!("paper-default/{}", backend.name()),
            system: SystemConfig::paper_default(),
            backend,
            stochastic: StochasticOptions::default(),
            mobility: MobilityOptions::default(),
            mission_times: Vec::new(),
            clustered: None,
            scenario: None,
        }
    }

    /// Same spec with a mission-time grid (builder style).
    pub fn with_mission_times(mut self, times: &[f64]) -> Self {
        self.mission_times = times.to_vec();
        self
    }

    /// Same spec as a clustered deployment (builder style).
    pub fn with_clusters(mut self, topology: ClusterTopology) -> Self {
        self.clustered = Some(topology);
        self
    }

    /// Same spec under an adversary/response scenario (builder style).
    pub fn with_scenario(mut self, scenario: ScenarioConfig) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// The effective scenario: the explicit one, or the baseline.
    pub fn scenario_or_baseline(&self) -> ScenarioConfig {
        self.scenario.unwrap_or_else(ScenarioConfig::baseline)
    }

    /// Validate the spec (system consistency plus engine-level constraints).
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidSpec`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), EngineError> {
        self.system.validate().map_err(EngineError::InvalidSpec)?;
        if self.backend.is_stochastic() {
            self.stochastic
                .sampling
                .validate()
                .map_err(EngineError::InvalidSpec)?;
            if self.stochastic.max_time.is_nan() || self.stochastic.max_time <= 0.0 {
                return Err(EngineError::InvalidSpec("max_time must be positive".into()));
            }
            if !(0.0 < self.stochastic.confidence && self.stochastic.confidence < 1.0) {
                return Err(EngineError::InvalidSpec(
                    "confidence must lie strictly between 0 and 1".into(),
                ));
            }
        }
        let mut prev = f64::NEG_INFINITY;
        for &t in &self.mission_times {
            if !t.is_finite() || t < 0.0 {
                return Err(EngineError::InvalidSpec(format!(
                    "mission times must be finite and non-negative, got {t}"
                )));
            }
            if t <= prev {
                return Err(EngineError::InvalidSpec(
                    "mission times must be strictly ascending".into(),
                ));
            }
            // Beyond the censoring horizon a stochastic backend has no
            // at-risk information: every estimate there would be either
            // not-estimable or failure-biased. Reject up front.
            if self.backend.is_stochastic() && t > self.stochastic.max_time {
                return Err(EngineError::InvalidSpec(format!(
                    "mission time {t} exceeds the censoring horizon {} — \
                     survival there is not estimable",
                    self.stochastic.max_time
                )));
            }
            prev = t;
        }
        if let Some(topo) = &self.clustered {
            topo.validate().map_err(EngineError::InvalidSpec)?;
            if self.backend == BackendKind::MobilityDes {
                return Err(EngineError::InvalidSpec(
                    "the mobility backend has no clustered variant — \
                     use exact, spn-sim, or des"
                        .into(),
                ));
            }
        }
        if let Some(sc) = &self.scenario {
            sc.validate().map_err(EngineError::InvalidSpec)?;
            if self.clustered.is_some() {
                return Err(EngineError::InvalidSpec(
                    "scenario and clustered cannot be combined — evaluate the \
                     scenario on a single-cluster spec"
                        .into(),
                ));
            }
            if self.backend == BackendKind::MobilityDes && sc.response != ResponsePolicy::Evict {
                return Err(EngineError::InvalidSpec(
                    "the mobility backend models attacker strategies only — \
                     scenario.response must be `evict` there"
                        .into(),
                ));
            }
        }
        if self.backend == BackendKind::MobilityDes {
            if self.mobility.radio_range.is_nan() || self.mobility.radio_range <= 0.0 {
                return Err(EngineError::InvalidSpec(
                    "radio_range must be positive".into(),
                ));
            }
            if self.mobility.dt.is_nan() || self.mobility.dt <= 0.0 {
                return Err(EngineError::InvalidSpec(
                    "mobility dt must be positive".into(),
                ));
            }
        }
        Ok(())
    }

    /// Serialize to canonical JSON. The `clustered` key is omitted when
    /// absent, so committed pre-clustering spec files stay canonical
    /// byte-for-byte.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("name", Value::Str(self.name.clone())),
            ("backend", Value::Str(self.backend.name().into())),
            ("system", system_to_value(&self.system)),
            (
                "stochastic",
                Value::obj([
                    // A fixed plan keeps the original `replications` key so
                    // pre-adaptive spec files stay canonical byte-for-byte;
                    // adaptive plans encode a `sampling` object instead.
                    match self.stochastic.sampling {
                        SamplingPlan::Fixed(n) => ("replications", Value::Num(n as f64)),
                        SamplingPlan::Adaptive {
                            target_rel_halfwidth,
                            min,
                            max,
                            batch,
                        } => (
                            "sampling",
                            Value::obj([
                                ("mode", Value::Str("adaptive".into())),
                                ("target_rel_halfwidth", Value::Num(target_rel_halfwidth)),
                                ("min", Value::Num(min as f64)),
                                ("max", Value::Num(max as f64)),
                                ("batch", Value::Num(batch as f64)),
                            ]),
                        ),
                    },
                    (
                        "master_seed",
                        // u64 seeds can exceed f64's 2^53 integer range, so
                        // the seed travels as a decimal string (lossless).
                        Value::Str(self.stochastic.master_seed.to_string()),
                    ),
                    ("max_time", Value::Num(self.stochastic.max_time)),
                    ("confidence", Value::Num(self.stochastic.confidence)),
                ]),
            ),
            (
                "mobility",
                Value::obj([
                    ("radio_range", Value::Num(self.mobility.radio_range)),
                    ("dt", Value::Num(self.mobility.dt)),
                ]),
            ),
            (
                "mission_times",
                Value::Arr(self.mission_times.iter().copied().map(Value::Num).collect()),
            ),
        ];
        if let Some(topo) = &self.clustered {
            fields.push((
                "clustered",
                Value::obj([
                    ("clusters", Value::Num(f64::from(topo.clusters))),
                    (
                        "failure_threshold",
                        Value::Num(f64::from(topo.failure_threshold)),
                    ),
                ]),
            ));
        }
        if let Some(sc) = &self.scenario {
            fields.push(("scenario", scenario_to_value(sc)));
        }
        Value::obj(fields).encode()
    }

    /// Parse a spec serialized by [`ScenarioSpec::to_json`].
    ///
    /// # Errors
    /// Returns [`EngineError::Json`] for malformed documents and
    /// [`EngineError::InvalidSpec`] when the parsed spec fails validation.
    pub fn from_json(text: &str) -> Result<Self, EngineError> {
        let v = Value::parse(text)?;
        let st = v.field("stochastic")?;
        let mob = v.field("mobility")?;
        let spec = Self {
            name: v.field("name")?.as_str()?.to_string(),
            backend: BackendKind::from_name(v.field("backend")?.as_str()?)?,
            system: system_from_value(v.field("system")?)?,
            stochastic: StochasticOptions {
                sampling: sampling_from_value(st)?,
                master_seed: seed_from_value(st.field("master_seed")?)?,
                max_time: st.field("max_time")?.as_f64()?,
                confidence: st.field("confidence")?.as_f64()?,
            },
            mobility: MobilityOptions {
                radio_range: mob.field("radio_range")?.as_f64()?,
                dt: mob.field("dt")?.as_f64()?,
            },
            // Optional so specs written before mission survivability landed
            // (and terse hand-written ones) keep parsing.
            mission_times: match v.opt_field("mission_times") {
                Some(arr) => arr
                    .as_arr()?
                    .iter()
                    .map(Value::as_f64)
                    .collect::<Result<Vec<f64>, EngineError>>()?,
                None => Vec::new(),
            },
            clustered: match v.opt_field("clustered") {
                Some(o) => Some(ClusterTopology {
                    clusters: o.field("clusters")?.as_u32()?,
                    failure_threshold: o.field("failure_threshold")?.as_u32()?,
                }),
                None => None,
            },
            scenario: match v.opt_field("scenario") {
                Some(o) => Some(scenario_from_value(o)?),
                None => None,
            },
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// Decode the sampling plan of a `stochastic` object: either the legacy
/// `replications` count (a fixed plan) or a `sampling` object with
/// `mode: "fixed" | "adaptive"`. Exactly one of the two forms must be
/// present — both at once would be ambiguous.
fn sampling_from_value(st: &Value) -> Result<SamplingPlan, EngineError> {
    match (st.opt_field("sampling"), st.opt_field("replications")) {
        (Some(_), Some(_)) => Err(EngineError::Json(
            "`stochastic` carries both `replications` and `sampling` — use one".into(),
        )),
        (None, Some(n)) => Ok(SamplingPlan::Fixed(n.as_u64()?)),
        (None, None) => Err(EngineError::Json(
            "`stochastic` needs `replications` or `sampling`".into(),
        )),
        (Some(s), None) => match s.field("mode")?.as_str()? {
            "fixed" => Ok(SamplingPlan::Fixed(s.field("n")?.as_u64()?)),
            "adaptive" => Ok(SamplingPlan::Adaptive {
                target_rel_halfwidth: s.field("target_rel_halfwidth")?.as_f64()?,
                min: s.field("min")?.as_u64()?,
                max: s.field("max")?.as_u64()?,
                batch: s.field("batch")?.as_u64()?,
            }),
            other => Err(EngineError::Json(format!(
                "unknown sampling mode `{other}`"
            ))),
        },
    }
}

/// Seeds serialize as decimal strings (lossless for the full u64 range);
/// plain numbers are accepted too for hand-written specs.
fn seed_from_value(v: &Value) -> Result<u64, EngineError> {
    match v {
        Value::Str(s) => s
            .parse::<u64>()
            .map_err(|_| EngineError::Json(format!("bad seed `{s}`"))),
        other => other.as_u64(),
    }
}

fn scenario_to_value(sc: &ScenarioConfig) -> Value {
    let attacker = match sc.attacker {
        AttackerStrategy::Baseline => Value::obj([("strategy", Value::Str("baseline".into()))]),
        AttackerStrategy::Burst {
            on_rate,
            off_rate,
            multiplier,
        } => Value::obj([
            ("strategy", Value::Str("burst".into())),
            ("on_rate", Value::Num(on_rate)),
            ("off_rate", Value::Num(off_rate)),
            ("multiplier", Value::Num(multiplier)),
        ]),
        AttackerStrategy::Stealth {
            rate_factor,
            evasion,
        } => Value::obj([
            ("strategy", Value::Str("stealth".into())),
            ("rate_factor", Value::Num(rate_factor)),
            ("evasion", Value::Num(evasion)),
        ]),
        AttackerStrategy::Targeted { focus } => Value::obj([
            ("strategy", Value::Str("targeted".into())),
            ("focus", Value::Num(focus)),
        ]),
    };
    let response = match sc.response {
        ResponsePolicy::Evict => Value::obj([("policy", Value::Str("evict".into()))]),
        ResponsePolicy::QuarantineRejoin {
            release_rate,
            false_release_prob,
        } => Value::obj([
            ("policy", Value::Str("quarantine-and-rejoin".into())),
            ("release_rate", Value::Num(release_rate)),
            ("false_release_prob", Value::Num(false_release_prob)),
        ]),
        ResponsePolicy::RekeyThrottle { max_rate } => Value::obj([
            ("policy", Value::Str("rekey-throttle".into())),
            ("max_rate", Value::Num(max_rate)),
        ]),
    };
    Value::obj([("attacker", attacker), ("response", response)])
}

/// Pull a required numeric parameter of a scenario sub-object, naming the
/// full field path in the error so a malformed spec file pinpoints itself.
fn scenario_num(o: &Value, section: &str, kind: &str, param: &str) -> Result<f64, EngineError> {
    o.opt_field(param)
        .ok_or_else(|| {
            EngineError::Json(format!(
                "scenario.{section}: `{kind}` requires the `{param}` field"
            ))
        })?
        .as_f64()
        .map_err(|_| {
            EngineError::Json(format!(
                "scenario.{section}.{param} must be a number for `{kind}`"
            ))
        })
}

fn scenario_from_value(v: &Value) -> Result<ScenarioConfig, EngineError> {
    let att = v
        .opt_field("attacker")
        .ok_or_else(|| EngineError::Json("scenario requires an `attacker` object".into()))?;
    let resp = v
        .opt_field("response")
        .ok_or_else(|| EngineError::Json("scenario requires a `response` object".into()))?;
    let attacker = match att
        .opt_field("strategy")
        .ok_or_else(|| EngineError::Json("scenario.attacker requires a `strategy` name".into()))?
        .as_str()?
    {
        "baseline" => AttackerStrategy::Baseline,
        "burst" => AttackerStrategy::Burst {
            on_rate: scenario_num(att, "attacker", "burst", "on_rate")?,
            off_rate: scenario_num(att, "attacker", "burst", "off_rate")?,
            multiplier: scenario_num(att, "attacker", "burst", "multiplier")?,
        },
        "stealth" => AttackerStrategy::Stealth {
            rate_factor: scenario_num(att, "attacker", "stealth", "rate_factor")?,
            evasion: scenario_num(att, "attacker", "stealth", "evasion")?,
        },
        "targeted" => AttackerStrategy::Targeted {
            focus: scenario_num(att, "attacker", "targeted", "focus")?,
        },
        other => {
            return Err(EngineError::Json(format!(
                "unknown scenario.attacker.strategy `{other}` — expected \
                 baseline, burst, stealth, or targeted"
            )))
        }
    };
    let response = match resp
        .opt_field("policy")
        .ok_or_else(|| EngineError::Json("scenario.response requires a `policy` name".into()))?
        .as_str()?
    {
        "evict" => ResponsePolicy::Evict,
        "quarantine-and-rejoin" => ResponsePolicy::QuarantineRejoin {
            release_rate: scenario_num(resp, "response", "quarantine-and-rejoin", "release_rate")?,
            false_release_prob: scenario_num(
                resp,
                "response",
                "quarantine-and-rejoin",
                "false_release_prob",
            )?,
        },
        "rekey-throttle" => ResponsePolicy::RekeyThrottle {
            max_rate: scenario_num(resp, "response", "rekey-throttle", "max_rate")?,
        },
        other => {
            return Err(EngineError::Json(format!(
                "unknown scenario.response.policy `{other}` — expected \
                 evict, quarantine-and-rejoin, or rekey-throttle"
            )))
        }
    };
    Ok(ScenarioConfig { attacker, response })
}

fn shape_name(s: RateShape) -> &'static str {
    s.name()
}

fn shape_from_name(s: &str) -> Result<RateShape, EngineError> {
    RateShape::all()
        .into_iter()
        .find(|shape| shape.name() == s)
        .ok_or_else(|| EngineError::Json(format!("unknown rate shape `{s}`")))
}

fn system_to_value(c: &SystemConfig) -> Value {
    let collusion = match c.collusion {
        CollusionModel::Full => Value::Str("full".into()),
        CollusionModel::None => Value::Str("none".into()),
        CollusionModel::Probabilistic(q) => Value::Num(q),
    };
    Value::obj([
        ("node_count", Value::Num(c.node_count as f64)),
        ("join_rate", Value::Num(c.join_rate)),
        ("leave_rate", Value::Num(c.leave_rate)),
        ("group_comm_rate", Value::Num(c.group_comm_rate)),
        (
            "attacker",
            Value::obj([
                ("shape", Value::Str(shape_name(c.attacker.shape).into())),
                ("base_rate", Value::Num(c.attacker.base_rate)),
                ("exponent", Value::Num(c.attacker.exponent)),
            ]),
        ),
        (
            "detection",
            Value::obj([
                ("shape", Value::Str(shape_name(c.detection.shape).into())),
                ("base_interval", Value::Num(c.detection.base_interval)),
                ("exponent", Value::Num(c.detection.exponent)),
            ]),
        ),
        (
            "p1_host_false_negative",
            Value::Num(c.p1_host_false_negative),
        ),
        (
            "p2_host_false_positive",
            Value::Num(c.p2_host_false_positive),
        ),
        ("vote_participants", Value::Num(c.vote_participants as f64)),
        ("collusion", collusion),
        (
            "partition_rate_per_group",
            Value::Num(c.partition_rate_per_group),
        ),
        ("merge_rate_per_group", Value::Num(c.merge_rate_per_group)),
        ("max_groups", Value::Num(c.max_groups as f64)),
        ("mean_hops", Value::Num(c.mean_hops)),
        ("bandwidth_bps", Value::Num(c.bandwidth_bps)),
        ("data_packet_bits", Value::Num(c.data_packet_bits as f64)),
        (
            "status_packet_bits",
            Value::Num(c.status_packet_bits as f64),
        ),
        ("vote_packet_bits", Value::Num(c.vote_packet_bits as f64)),
        ("beacon_bits", Value::Num(c.beacon_bits as f64)),
        ("key_element_bits", Value::Num(c.key_element_bits as f64)),
        (
            "key_agreement",
            Value::Str(
                match c.key_agreement {
                    KeyAgreementProtocol::Gdh2 => "gdh2",
                    KeyAgreementProtocol::Gdh3 => "gdh3",
                }
                .into(),
            ),
        ),
        (
            "batch_rekey_interval",
            c.batch_rekey_interval.map_or(Value::Null, Value::Num),
        ),
        ("status_period", Value::Num(c.status_period)),
        ("beacon_period", Value::Num(c.beacon_period)),
    ])
}

fn system_from_value(v: &Value) -> Result<SystemConfig, EngineError> {
    let att = v.field("attacker")?;
    let det = v.field("detection")?;
    let collusion = match v.field("collusion")? {
        Value::Str(s) if s == "full" => CollusionModel::Full,
        Value::Str(s) if s == "none" => CollusionModel::None,
        Value::Num(q) => CollusionModel::Probabilistic(*q),
        other => return Err(EngineError::Json(format!("bad collusion value {other:?}"))),
    };
    Ok(SystemConfig {
        node_count: v.field("node_count")?.as_u32()?,
        join_rate: v.field("join_rate")?.as_f64()?,
        leave_rate: v.field("leave_rate")?.as_f64()?,
        group_comm_rate: v.field("group_comm_rate")?.as_f64()?,
        attacker: AttackerProfile {
            shape: shape_from_name(att.field("shape")?.as_str()?)?,
            base_rate: att.field("base_rate")?.as_f64()?,
            exponent: att.field("exponent")?.as_f64()?,
        },
        detection: DetectionProfile {
            shape: shape_from_name(det.field("shape")?.as_str()?)?,
            base_interval: det.field("base_interval")?.as_f64()?,
            exponent: det.field("exponent")?.as_f64()?,
        },
        p1_host_false_negative: v.field("p1_host_false_negative")?.as_f64()?,
        p2_host_false_positive: v.field("p2_host_false_positive")?.as_f64()?,
        vote_participants: v.field("vote_participants")?.as_u32()?,
        collusion,
        partition_rate_per_group: v.field("partition_rate_per_group")?.as_f64()?,
        merge_rate_per_group: v.field("merge_rate_per_group")?.as_f64()?,
        max_groups: v.field("max_groups")?.as_u32()?,
        mean_hops: v.field("mean_hops")?.as_f64()?,
        bandwidth_bps: v.field("bandwidth_bps")?.as_f64()?,
        data_packet_bits: v.field("data_packet_bits")?.as_u64()?,
        status_packet_bits: v.field("status_packet_bits")?.as_u64()?,
        vote_packet_bits: v.field("vote_packet_bits")?.as_u64()?,
        beacon_bits: v.field("beacon_bits")?.as_u64()?,
        key_element_bits: v.field("key_element_bits")?.as_u64()?,
        key_agreement: match v.field("key_agreement")?.as_str()? {
            "gdh2" => KeyAgreementProtocol::Gdh2,
            "gdh3" => KeyAgreementProtocol::Gdh3,
            other => {
                return Err(EngineError::Json(format!(
                    "unknown key agreement `{other}`"
                )))
            }
        },
        batch_rekey_interval: match v.opt_field("batch_rekey_interval") {
            Some(x) => Some(x.as_f64()?),
            None => None,
        },
        status_period: v.field("status_period")?.as_f64()?,
        beacon_period: v.field("beacon_period")?.as_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_is_lossless() {
        for backend in BackendKind::all() {
            let mut spec = ScenarioSpec::paper_default(backend);
            spec.system.collusion = CollusionModel::Probabilistic(0.37);
            spec.system.batch_rekey_interval = Some(120.0);
            spec.system.key_agreement = KeyAgreementProtocol::Gdh3;
            spec.system.detection.shape = RateShape::Polynomial;
            spec.mission_times = vec![0.0, 3.6e3, 8.64e4, 6.048e5];
            let text = spec.to_json();
            let back = ScenarioSpec::from_json(&text).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn mission_grid_is_optional_and_validated() {
        // absent field parses to an empty grid (pre-survival spec files)
        let spec = ScenarioSpec::paper_default(BackendKind::Exact);
        let text = spec.to_json().replace(",\"mission_times\":[]", "");
        assert!(!text.contains("mission_times"));
        assert_eq!(ScenarioSpec::from_json(&text).unwrap().mission_times, []);

        // grid must be strictly ascending, finite, non-negative
        let mut bad = ScenarioSpec::paper_default(BackendKind::Des);
        bad.mission_times = vec![10.0, 10.0];
        assert!(matches!(bad.validate(), Err(EngineError::InvalidSpec(_))));
        bad.mission_times = vec![-1.0];
        assert!(matches!(bad.validate(), Err(EngineError::InvalidSpec(_))));
        bad.mission_times = vec![f64::INFINITY];
        assert!(matches!(bad.validate(), Err(EngineError::InvalidSpec(_))));
        bad.mission_times = vec![0.0, 5.0, 60.0];
        assert!(bad.validate().is_ok());
    }

    #[test]
    fn extreme_seed_roundtrips_losslessly() {
        // 2^53 + 1 is not representable as f64; the string encoding keeps it.
        let mut spec = ScenarioSpec::paper_default(BackendKind::Des);
        spec.stochastic.master_seed = (1u64 << 53) + 1;
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back.stochastic.master_seed, (1u64 << 53) + 1);
        let mut spec = ScenarioSpec::paper_default(BackendKind::Des);
        spec.stochastic.master_seed = u64::MAX;
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back.stochastic.master_seed, u64::MAX);
    }

    #[test]
    fn numeric_seed_accepted_for_hand_written_specs() {
        let spec = ScenarioSpec::paper_default(BackendKind::Exact);
        let text = spec
            .to_json()
            .replace("\"master_seed\":\"2009\"", "\"master_seed\":2009");
        assert!(text.contains("\"master_seed\":2009"));
        let back = ScenarioSpec::from_json(&text).unwrap();
        assert_eq!(back.stochastic.master_seed, 2009);
    }

    #[test]
    fn roundtrip_preserves_none_batch_rekey() {
        let spec = ScenarioSpec::paper_default(BackendKind::Exact);
        assert_eq!(spec.system.batch_rekey_interval, None);
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back.system.batch_rekey_interval, None);
    }

    #[test]
    fn backend_names_roundtrip() {
        for b in BackendKind::all() {
            assert_eq!(BackendKind::from_name(b.name()).unwrap(), b);
        }
        assert!(BackendKind::from_name("nope").is_err());
    }

    #[test]
    fn validation_catches_engine_level_errors() {
        let mut spec = ScenarioSpec::paper_default(BackendKind::Des);
        spec.stochastic.sampling = SamplingPlan::Fixed(0);
        assert!(matches!(spec.validate(), Err(EngineError::InvalidSpec(_))));

        let mut spec = ScenarioSpec::paper_default(BackendKind::Des);
        spec.stochastic.sampling = SamplingPlan::Adaptive {
            target_rel_halfwidth: 0.0, // must be positive
            min: 10,
            max: 100,
            batch: 10,
        };
        assert!(matches!(spec.validate(), Err(EngineError::InvalidSpec(_))));

        let mut spec = ScenarioSpec::paper_default(BackendKind::MobilityDes);
        spec.mobility.dt = 0.0;
        assert!(matches!(spec.validate(), Err(EngineError::InvalidSpec(_))));

        let mut spec = ScenarioSpec::paper_default(BackendKind::Exact);
        spec.system.node_count = 0;
        assert!(matches!(spec.validate(), Err(EngineError::InvalidSpec(_))));

        // the exact backend ignores stochastic knobs entirely
        let mut spec = ScenarioSpec::paper_default(BackendKind::Exact);
        spec.stochastic.sampling = SamplingPlan::Fixed(0);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn adaptive_sampling_roundtrips_and_fixed_keeps_legacy_key() {
        // fixed plans keep the pre-adaptive `replications` key (canonical
        // byte-compatibility with committed spec files)
        let fixed = ScenarioSpec::paper_default(BackendKind::Des);
        let text = fixed.to_json();
        assert!(text.contains("\"replications\":200.0"));
        assert!(!text.contains("\"sampling\""));
        assert_eq!(ScenarioSpec::from_json(&text).unwrap(), fixed);

        // adaptive plans encode a `sampling` object and round-trip losslessly
        let mut spec = ScenarioSpec::paper_default(BackendKind::Des);
        spec.stochastic.sampling = SamplingPlan::Adaptive {
            target_rel_halfwidth: 0.05,
            min: 100,
            max: 10_000,
            batch: 250,
        };
        let text = spec.to_json();
        assert!(text.contains("\"sampling\":{"));
        assert!(text.contains("\"mode\":\"adaptive\""));
        assert!(!text.contains("\"replications\""));
        assert_eq!(ScenarioSpec::from_json(&text).unwrap(), spec);
    }

    #[test]
    fn sampling_object_fixed_mode_and_conflicts() {
        // an explicit fixed-mode sampling object is accepted
        let spec = ScenarioSpec::paper_default(BackendKind::Des);
        let text = spec.to_json().replace(
            "\"replications\":200.0",
            "\"sampling\":{\"mode\":\"fixed\",\"n\":77}",
        );
        let back = ScenarioSpec::from_json(&text).unwrap();
        assert_eq!(back.stochastic.sampling, SamplingPlan::Fixed(77));

        // both forms at once is ambiguous and must be rejected
        let text = spec.to_json().replace(
            "\"replications\":200.0",
            "\"replications\":200.0,\"sampling\":{\"mode\":\"fixed\",\"n\":77}",
        );
        assert!(ScenarioSpec::from_json(&text).is_err());

        // unknown mode is rejected
        let text = spec
            .to_json()
            .replace("\"replications\":200.0", "\"sampling\":{\"mode\":\"nope\"}");
        assert!(ScenarioSpec::from_json(&text).is_err());
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(ScenarioSpec::from_json("{").is_err());
        assert!(ScenarioSpec::from_json("{}").is_err());
    }

    #[test]
    fn clustered_roundtrips_and_is_omitted_when_absent() {
        let plain = ScenarioSpec::paper_default(BackendKind::Exact);
        assert!(!plain.to_json().contains("clustered"));
        assert_eq!(ScenarioSpec::from_json(&plain.to_json()).unwrap(), plain);

        let spec = plain.clone().with_clusters(ClusterTopology {
            clusters: 10,
            failure_threshold: 3,
        });
        let text = spec.to_json();
        assert!(text.contains("\"clustered\":{\"clusters\":10.0,\"failure_threshold\":3.0}"));
        assert_eq!(ScenarioSpec::from_json(&text).unwrap(), spec);
    }

    #[test]
    fn scenario_roundtrips_and_is_omitted_when_absent() {
        let plain = ScenarioSpec::paper_default(BackendKind::Des);
        assert!(!plain.to_json().contains("scenario"));
        assert_eq!(ScenarioSpec::from_json(&plain.to_json()).unwrap(), plain);

        let combos = [
            (AttackerStrategy::Baseline, ResponsePolicy::Evict),
            (
                AttackerStrategy::Burst {
                    on_rate: 0.001,
                    off_rate: 0.002,
                    multiplier: 5.0,
                },
                ResponsePolicy::QuarantineRejoin {
                    release_rate: 0.01,
                    false_release_prob: 0.1,
                },
            ),
            (
                AttackerStrategy::Stealth {
                    rate_factor: 0.5,
                    evasion: 0.25,
                },
                ResponsePolicy::RekeyThrottle { max_rate: 0.02 },
            ),
            (
                AttackerStrategy::Targeted { focus: 0.7 },
                ResponsePolicy::Evict,
            ),
        ];
        for (attacker, response) in combos {
            let spec = ScenarioSpec::paper_default(BackendKind::Des)
                .with_scenario(ScenarioConfig { attacker, response });
            let text = spec.to_json();
            assert!(text.contains("\"scenario\""));
            assert_eq!(ScenarioSpec::from_json(&text).unwrap(), spec);
        }
    }

    #[test]
    fn scenario_decode_errors_name_the_field() {
        let spec = ScenarioSpec::paper_default(BackendKind::Des).with_scenario(ScenarioConfig {
            attacker: AttackerStrategy::Burst {
                on_rate: 0.001,
                off_rate: 0.002,
                multiplier: 5.0,
            },
            response: ResponsePolicy::Evict,
        });
        let text = spec.to_json();

        // a missing burst parameter names itself
        let broken = text.replace("\"on_rate\":0.001,", "");
        let err = ScenarioSpec::from_json(&broken).unwrap_err().to_string();
        assert!(err.contains("scenario.attacker"), "{err}");
        assert!(err.contains("on_rate"), "{err}");

        // an unknown strategy names the valid set
        let broken = text.replace("\"strategy\":\"burst\"", "\"strategy\":\"sneaky\"");
        let err = ScenarioSpec::from_json(&broken).unwrap_err().to_string();
        assert!(err.contains("sneaky") && err.contains("stealth"), "{err}");

        // a non-numeric parameter names the path
        let broken = text.replace("\"multiplier\":5.0", "\"multiplier\":\"big\"");
        let err = ScenarioSpec::from_json(&broken).unwrap_err().to_string();
        assert!(err.contains("scenario.attacker.multiplier"), "{err}");

        // an unknown response policy names the valid set
        let spec2 = ScenarioSpec::paper_default(BackendKind::Des).with_scenario(ScenarioConfig {
            attacker: AttackerStrategy::Baseline,
            response: ResponsePolicy::RekeyThrottle { max_rate: 0.02 },
        });
        let broken = spec2
            .to_json()
            .replace("\"policy\":\"rekey-throttle\"", "\"policy\":\"banhammer\"");
        let err = ScenarioSpec::from_json(&broken).unwrap_err().to_string();
        assert!(
            err.contains("banhammer") && err.contains("quarantine"),
            "{err}"
        );
    }

    #[test]
    fn scenario_validation_constraints() {
        // out-of-range parameters are rejected with the field named
        let bad = ScenarioSpec::paper_default(BackendKind::Des).with_scenario(ScenarioConfig {
            attacker: AttackerStrategy::Stealth {
                rate_factor: 0.0,
                evasion: 0.2,
            },
            response: ResponsePolicy::Evict,
        });
        match bad.validate() {
            Err(EngineError::InvalidSpec(msg)) => assert!(msg.contains("rate_factor"), "{msg}"),
            other => panic!("expected InvalidSpec, got {other:?}"),
        }

        // scenario + clustered is rejected
        let bad = ScenarioSpec::paper_default(BackendKind::Exact)
            .with_clusters(ClusterTopology {
                clusters: 4,
                failure_threshold: 2,
            })
            .with_scenario(ScenarioConfig::baseline());
        assert!(matches!(bad.validate(), Err(EngineError::InvalidSpec(_))));

        // mobility + non-evict response is rejected; evict is fine
        let sc = ScenarioConfig {
            attacker: AttackerStrategy::Targeted { focus: 0.5 },
            response: ResponsePolicy::RekeyThrottle { max_rate: 0.01 },
        };
        let bad = ScenarioSpec::paper_default(BackendKind::MobilityDes).with_scenario(sc);
        assert!(matches!(bad.validate(), Err(EngineError::InvalidSpec(_))));
        let ok =
            ScenarioSpec::paper_default(BackendKind::MobilityDes).with_scenario(ScenarioConfig {
                attacker: AttackerStrategy::Targeted { focus: 0.5 },
                response: ResponsePolicy::Evict,
            });
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn clustered_validation() {
        let topo = ClusterTopology {
            clusters: 4,
            failure_threshold: 2,
        };
        for backend in [BackendKind::Exact, BackendKind::SpnSim, BackendKind::Des] {
            assert!(ScenarioSpec::paper_default(backend)
                .with_clusters(topo)
                .validate()
                .is_ok());
        }
        // the mobility backend has no clustered variant
        assert!(ScenarioSpec::paper_default(BackendKind::MobilityDes)
            .with_clusters(topo)
            .validate()
            .is_err());
        // topology itself is validated
        assert!(ScenarioSpec::paper_default(BackendKind::Exact)
            .with_clusters(ClusterTopology {
                clusters: 2,
                failure_threshold: 3,
            })
            .validate()
            .is_err());
    }
}
