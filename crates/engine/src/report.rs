//! The common result shape every backend produces.

use crate::error::EngineError;
use crate::json::Value;
use crate::spec::BackendKind;
use gcsids::cost::CostBreakdown;
use numerics::stats::{at_risk_surviving, proportion_ci, SurvivalAccumulator, Welford};

/// A point estimate with an optional confidence interval (exact backends
/// report the value alone; stochastic backends attach the interval).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The estimate.
    pub value: f64,
    /// Confidence interval `(lo, hi)` when the backend is stochastic.
    pub ci: Option<(f64, f64)>,
}

impl Estimate {
    /// Exact value without sampling error.
    pub fn exact(value: f64) -> Self {
        Self { value, ci: None }
    }

    /// Mean with a confidence interval from replication statistics.
    /// The interval is omitted below two observations; with **zero**
    /// observations (every replication censored) the value is `NaN` —
    /// "not estimable" — rather than a misleading 0.0. Check
    /// [`RunReport::censored`] against [`RunReport::replications`] to
    /// distinguish "fails instantly" from "never failed within the
    /// horizon".
    pub fn from_welford(w: &Welford, confidence: f64) -> Self {
        if w.count() == 0 {
            return Self {
                value: f64::NAN,
                ci: None,
            };
        }
        if w.count() < 2 {
            return Self {
                value: w.mean(),
                ci: None,
            };
        }
        let ci = w.confidence_interval(confidence);
        Self {
            value: w.mean(),
            ci: Some((ci.lo(), ci.hi())),
        }
    }

    /// Binomial proportion `successes / n` with a Wilson score interval
    /// (survival probabilities). The value is the raw proportion; the
    /// interval is Wilson's, which keeps the degenerate cases sane:
    /// `n = 0` (nothing at risk) is the `NaN` "not estimable" marker with
    /// no interval, and zero-variance samples — e.g. survival at `t = 0`,
    /// where every replication is alive — get finite one-sided bounds,
    /// never a `NaN` or a spuriously zero-width interval.
    pub fn proportion(successes: u64, n: u64, confidence: f64) -> Self {
        match proportion_ci(successes, n, confidence) {
            None => Self {
                value: f64::NAN,
                ci: None,
            },
            Some(ci) => Self {
                value: successes as f64 / n as f64,
                ci: Some((ci.lo(), ci.hi())),
            },
        }
    }
}

/// Kaplan–Meier-style survival estimates on a mission-time grid from
/// right-censored replication outcomes (`events` holds `(time, censored)`
/// pairs), each point a binomial proportion with its confidence interval.
///
/// The estimator assumes a common censoring horizon: past the earliest
/// censoring time the remaining at-risk set consists only of replications
/// that failed, so the proportion would be severely failure-biased — not
/// merely noisy. Any grid point with a censoring event strictly before it
/// is therefore reported as the `NaN` "not estimable" marker (spec
/// validation already rejects grids beyond the horizon; this guards the
/// remaining early-censoring paths, e.g. a simulation firing cap).
pub fn survival_estimates(
    events: &[(f64, bool)],
    mission_times: &[f64],
    confidence: f64,
) -> Vec<(f64, Estimate)> {
    mission_times
        .iter()
        .map(|&t| {
            let censored_earlier = events.iter().any(|&(time, censored)| censored && time < t);
            if censored_earlier {
                return (
                    t,
                    Estimate {
                        value: f64::NAN,
                        ci: None,
                    },
                );
            }
            let (surviving, at_risk) = at_risk_surviving(events, t);
            (t, Estimate::proportion(surviving, at_risk, confidence))
        })
        .collect()
}

/// The streaming twin of [`survival_estimates`]: the same estimator fed
/// from a [`SurvivalAccumulator`] maintained incrementally by a
/// replication sink, so no event list is ever materialized. The grid is
/// the accumulator's own.
pub fn survival_estimates_streaming(
    acc: &SurvivalAccumulator,
    confidence: f64,
) -> Vec<(f64, Estimate)> {
    acc.times()
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            if !acc.estimable(i) {
                return (
                    t,
                    Estimate {
                        value: f64::NAN,
                        ci: None,
                    },
                );
            }
            let (surviving, at_risk) = acc.counts(i);
            (t, Estimate::proportion(surviving, at_risk, confidence))
        })
        .collect()
}

/// How the cross-request template cache handled one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// A cached template for the spec's structural family was reused.
    Hit,
    /// No template was cached for the family; one was built and inserted.
    Miss,
    /// The spec is not cacheable (stochastic backends and clustered exact
    /// specs route around the template cache — see
    /// [`crate::service::TemplateCache`]).
    Bypass,
}

impl CacheOutcome {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypass => "bypass",
        }
    }

    /// Inverse of [`CacheOutcome::name`].
    ///
    /// # Errors
    /// Returns [`EngineError::Json`] for unknown names.
    pub fn from_name(name: &str) -> Result<Self, EngineError> {
        match name {
            "hit" => Ok(CacheOutcome::Hit),
            "miss" => Ok(CacheOutcome::Miss),
            "bypass" => Ok(CacheOutcome::Bypass),
            other => Err(EngineError::Json(format!(
                "unknown cache outcome {other:?}"
            ))),
        }
    }
}

/// Template-cache telemetry attached to reports produced through a
/// cache-aware runner ([`crate::Runner::run_cached`] and the service
/// loop). `None` on reports from plain one-shot execution, and omitted
/// from the JSON encoding in that case, so cache-aware and one-shot
/// reports stay byte-comparable after stripping this field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemplateCacheInfo {
    /// What the cache did for this submission.
    pub outcome: CacheOutcome,
    /// Cumulative hits since the cache was created.
    pub hits: u64,
    /// Cumulative misses (each miss built and inserted a template).
    pub misses: u64,
    /// Cumulative evictions under the LRU/size budget.
    pub evictions: u64,
    /// Cumulative bypasses (non-cacheable submissions).
    pub bypasses: u64,
    /// Templates resident after this submission.
    pub entries: u64,
    /// Total tangible CTMC states across resident templates.
    pub cached_states: u64,
}

impl TemplateCacheInfo {
    fn to_value(self) -> Value {
        Value::obj([
            ("outcome", Value::Str(self.outcome.name().into())),
            ("hits", Value::Num(self.hits as f64)),
            ("misses", Value::Num(self.misses as f64)),
            ("evictions", Value::Num(self.evictions as f64)),
            ("bypasses", Value::Num(self.bypasses as f64)),
            ("entries", Value::Num(self.entries as f64)),
            ("cached_states", Value::Num(self.cached_states as f64)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, EngineError> {
        Ok(Self {
            outcome: CacheOutcome::from_name(v.field("outcome")?.as_str()?)?,
            hits: v.field("hits")?.as_u64()?,
            misses: v.field("misses")?.as_u64()?,
            evictions: v.field("evictions")?.as_u64()?,
            bypasses: v.field("bypasses")?.as_u64()?,
            entries: v.field("entries")?.as_u64()?,
            cached_states: v.field("cached_states")?.as_u64()?,
        })
    }
}

/// Transient-engine telemetry attached to reports whose spec requested a
/// mission-survival grid on the exact backend. `None` otherwise (including
/// every stochastic-backend report), and omitted from the JSON encoding in
/// that case, so grids-off and stochastic reports keep their historical
/// byte encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransientInfo {
    /// Sparse matrix-vector products spent across the survival sweep.
    pub matvecs: u64,
    /// Uniformization step at which steady-state detection collapsed the
    /// Poisson tail analytically (`None` when detection never fired).
    pub detection_step: Option<u64>,
    /// Whether the grid sweep stopped early because the surviving
    /// transient mass dropped below the truncation tolerance.
    pub early_exit: bool,
    /// Transient states in the compacted uniformized submatrix.
    pub transient_states: u64,
    /// Absorbing states excluded from per-step propagation.
    pub absorbing_states: u64,
}

impl TransientInfo {
    fn to_value(self) -> Value {
        Value::obj([
            ("matvecs", Value::Num(self.matvecs as f64)),
            (
                "detection_step",
                self.detection_step
                    .map_or(Value::Null, |s| Value::Num(s as f64)),
            ),
            ("early_exit", Value::Bool(self.early_exit)),
            ("transient_states", Value::Num(self.transient_states as f64)),
            ("absorbing_states", Value::Num(self.absorbing_states as f64)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, EngineError> {
        let detection_step = match v.field("detection_step")? {
            Value::Null => None,
            other => Some(other.as_u64()?),
        };
        Ok(Self {
            matvecs: v.field("matvecs")?.as_u64()?,
            detection_step,
            early_exit: v.field("early_exit")?.as_bool()?,
            transient_states: v.field("transient_states")?.as_u64()?,
            absorbing_states: v.field("absorbing_states")?.as_u64()?,
        })
    }
}

/// Detection-quality metrics attached to reports whose spec carries an
/// adversary/response scenario (`None` otherwise, and the JSON key is
/// omitted entirely in that case, so pre-scenario reports keep their
/// historical byte encoding).
///
/// Stochastic backends report per-replication means with confidence
/// intervals; the exact backend reports expected transition-firing totals
/// (no interval) and cannot observe per-replication lead times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionInfo {
    /// Nodes compromised per replication (expected firings of `T_CP` on
    /// the exact backend).
    pub compromises: Estimate,
    /// True detections — convictions of compromised nodes — per
    /// replication (expected firings of `T_IDS`).
    pub detections: Estimate,
    /// False alarms — convictions of healthy nodes — per replication
    /// (expected firings of `T_FA`).
    pub false_alarms: Estimate,
    /// Fraction of convictions that hit healthy nodes:
    /// `false_alarms / (detections + false_alarms)`. `NaN` ("not
    /// estimable", encoded as null) when nothing was ever convicted.
    pub fp_rate: f64,
    /// Fraction of compromises never convicted before the run ended:
    /// `1 − detections / compromises`, clamped at 0. `NaN` when nothing
    /// was ever compromised.
    pub fn_rate: f64,
    /// Detection lead time: mean delay from a replication's first
    /// compromise to its first true detection, over replications that saw
    /// both. `NaN` with no such replication — and always on the exact
    /// backend, which has no per-replication ordering.
    pub lead_time: Estimate,
    /// Replications contributing to `lead_time`.
    pub lead_time_observations: u64,
}

impl DetectionInfo {
    fn to_value(self) -> Value {
        Value::obj([
            ("compromises", est_to_value(&self.compromises)),
            ("detections", est_to_value(&self.detections)),
            ("false_alarms", est_to_value(&self.false_alarms)),
            ("fp_rate", num(self.fp_rate)),
            ("fn_rate", num(self.fn_rate)),
            ("lead_time", est_to_value(&self.lead_time)),
            (
                "lead_time_observations",
                Value::Num(self.lead_time_observations as f64),
            ),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, EngineError> {
        // null = the NaN "not estimable" marker
        let rate = |name: &str| -> Result<f64, EngineError> {
            match v.field(name)? {
                Value::Null => Ok(f64::NAN),
                other => other.as_f64(),
            }
        };
        Ok(Self {
            compromises: est_from_value(v.field("compromises")?)?,
            detections: est_from_value(v.field("detections")?)?,
            false_alarms: est_from_value(v.field("false_alarms")?)?,
            fp_rate: rate("fp_rate")?,
            fn_rate: rate("fn_rate")?,
            lead_time: est_from_value(v.field("lead_time")?)?,
            lead_time_observations: v.field("lead_time_observations")?.as_u64()?,
        })
    }
}

/// How the observed runs ended, as probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FailureSplit {
    /// Data-leak failures (condition C1).
    pub p_c1: f64,
    /// Byzantine-capture failures (condition C2).
    pub p_c2: f64,
    /// Everything else (attrition in the DES backends; zero for exact).
    pub p_other: f64,
}

/// The unified result of running one [`crate::ScenarioSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Scenario label (copied from the spec).
    pub scenario: String,
    /// Backend that produced the report.
    pub backend: BackendKind,
    /// Mean time to security failure (s).
    pub mttsf: Estimate,
    /// Time-averaged total communication cost (hop·bits/s).
    pub c_total: Estimate,
    /// Per-component cost breakdown (exact backend only).
    pub cost_components: Option<CostBreakdown>,
    /// Failure-mode split.
    pub failure: FailureSplit,
    /// Tangible CTMC states (exact backend only).
    pub state_count: Option<usize>,
    /// CTMC edges (exact backend only).
    pub edge_count: Option<usize>,
    /// Symmetry-lumping reduction factor: estimated unlumped state count
    /// divided by the states actually built (exact backend on clustered
    /// specs only; `None` when lumping was not in play).
    pub lumping_reduction: Option<f64>,
    /// Replications actually run (stochastic backends only; an adaptive
    /// sampling plan chooses this at runtime).
    pub replications: Option<u64>,
    /// Replications censored by the time horizon (stochastic backends only).
    pub censored: Option<u64>,
    /// Of the censored replications, how many had zero duration
    /// (censored-at-zero: an empty observation window contributes no cost
    /// or failure-time sample — see `gcsids::des::DesStats::zero_duration`).
    /// Stochastic backends only.
    pub zero_duration: Option<u64>,
    /// Adaptive-sampling verdict: `Some(true)` when the MTTSF CI met the
    /// requested relative half-width target, `Some(false)` when the
    /// replication budget ran out first, `None` for fixed plans and the
    /// exact backend.
    pub target_met: Option<bool>,
    /// Mission survival curve `P[no security failure by t]` per grid point
    /// of [`crate::ScenarioSpec::mission_times`] (`None` when the spec has
    /// no grid). Exact on the exact backend; Kaplan–Meier-style estimates
    /// with confidence intervals on the stochastic ones.
    pub survival: Option<Vec<(f64, Estimate)>>,
    /// Wall-clock seconds spent producing this report.
    pub wall_seconds: f64,
    /// Cross-request template-cache telemetry (`None` outside cache-aware
    /// execution; the JSON key is omitted entirely in that case).
    pub template_cache: Option<TemplateCacheInfo>,
    /// Transient-engine telemetry from the mission-survival sweep (`None`
    /// when the spec has no grid or the backend is stochastic; the JSON key
    /// is omitted entirely in that case).
    pub transient: Option<TransientInfo>,
    /// Detection-quality metrics (`None` unless the spec carries a
    /// scenario; the JSON key is omitted entirely in that case).
    pub detection: Option<DetectionInfo>,
}

/// Non-finite numbers (the "not estimable" marker) encode as null.
pub(crate) fn num(x: f64) -> Value {
    if x.is_finite() {
        Value::Num(x)
    } else {
        Value::Null
    }
}

pub(crate) fn est_to_value(e: &Estimate) -> Value {
    match e.ci {
        Some((lo, hi)) => Value::obj([
            ("value", num(e.value)),
            ("ci_lo", num(lo)),
            ("ci_hi", num(hi)),
        ]),
        None => Value::obj([("value", num(e.value))]),
    }
}

pub(crate) fn est_from_value(v: &Value) -> Result<Estimate, EngineError> {
    // null value = the NaN "not estimable" marker
    let value = match v.opt_field("value") {
        Some(x) => x.as_f64()?,
        None => f64::NAN,
    };
    let ci = match (v.opt_field("ci_lo"), v.opt_field("ci_hi")) {
        (Some(lo), Some(hi)) => Some((lo.as_f64()?, hi.as_f64()?)),
        _ => None,
    };
    Ok(Estimate { value, ci })
}

impl RunReport {
    /// Serialize to JSON (for logs / downstream tooling). Lossless up to
    /// the `NaN → null` "not estimable" encoding, which
    /// [`RunReport::from_json`] maps back to `NaN`.
    pub fn to_json(&self) -> String {
        let opt_num = |x: Option<f64>| x.map_or(Value::Null, Value::Num);
        let components = self.cost_components.as_ref().map_or(Value::Null, |c| {
            Value::obj([
                ("group_comm", Value::Num(c.group_comm)),
                ("status", Value::Num(c.status)),
                ("rekey", Value::Num(c.rekey)),
                ("ids", Value::Num(c.ids)),
                ("beacon", Value::Num(c.beacon)),
                ("partition_merge", Value::Num(c.partition_merge)),
            ])
        });
        let survival = self.survival.as_ref().map_or(Value::Null, |points| {
            Value::Arr(
                points
                    .iter()
                    .map(|(t, e)| {
                        let Value::Obj(mut fields) = est_to_value(e) else {
                            // detlint::allow(R001): structural invariant — est_to_value always builds Value::Obj, no spec input involved
                            unreachable!("estimates encode as objects")
                        };
                        fields.insert("t".into(), Value::Num(*t));
                        Value::Obj(fields)
                    })
                    .collect(),
            )
        });
        let mut root = Value::obj([
            ("scenario", Value::Str(self.scenario.clone())),
            ("backend", Value::Str(self.backend.name().into())),
            ("mttsf", est_to_value(&self.mttsf)),
            ("c_total", est_to_value(&self.c_total)),
            ("cost_components", components),
            (
                "failure",
                Value::obj([
                    ("p_c1", Value::Num(self.failure.p_c1)),
                    ("p_c2", Value::Num(self.failure.p_c2)),
                    ("p_other", Value::Num(self.failure.p_other)),
                ]),
            ),
            ("state_count", opt_num(self.state_count.map(|x| x as f64))),
            ("edge_count", opt_num(self.edge_count.map(|x| x as f64))),
            ("lumping_reduction", opt_num(self.lumping_reduction)),
            ("replications", opt_num(self.replications.map(|x| x as f64))),
            ("censored", opt_num(self.censored.map(|x| x as f64))),
            (
                "zero_duration",
                opt_num(self.zero_duration.map(|x| x as f64)),
            ),
            (
                "target_met",
                self.target_met.map_or(Value::Null, Value::Bool),
            ),
            ("survival", survival),
            ("wall_seconds", Value::Num(self.wall_seconds)),
        ]);
        // Emitted only when present so reports from plain one-shot runs
        // keep their historical byte encoding (the `clustered` spec key
        // follows the same convention).
        if let Some(info) = self.template_cache {
            let Value::Obj(fields) = &mut root else {
                // detlint::allow(R001): structural invariant — `root` is the Value::obj literal built eight lines up
                unreachable!("report root is an object")
            };
            fields.insert("template_cache".into(), info.to_value());
        }
        if let Some(info) = self.transient {
            let Value::Obj(fields) = &mut root else {
                // detlint::allow(R001): structural invariant — `root` is the Value::obj literal built above
                unreachable!("report root is an object")
            };
            fields.insert("transient".into(), info.to_value());
        }
        if let Some(info) = self.detection {
            let Value::Obj(fields) = &mut root else {
                // detlint::allow(R001): structural invariant — `root` is the Value::obj literal built above
                unreachable!("report root is an object")
            };
            fields.insert("detection".into(), info.to_value());
        }
        root.encode()
    }

    /// Parse a report serialized by [`RunReport::to_json`].
    ///
    /// # Errors
    /// Returns [`EngineError::Json`] for malformed documents.
    pub fn from_json(text: &str) -> Result<Self, EngineError> {
        let v = Value::parse(text)?;
        let f = v.field("failure")?;
        let cost_components = match v.opt_field("cost_components") {
            None => None,
            Some(c) => Some(CostBreakdown {
                group_comm: c.field("group_comm")?.as_f64()?,
                status: c.field("status")?.as_f64()?,
                rekey: c.field("rekey")?.as_f64()?,
                ids: c.field("ids")?.as_f64()?,
                beacon: c.field("beacon")?.as_f64()?,
                partition_merge: c.field("partition_merge")?.as_f64()?,
            }),
        };
        let survival = match v.opt_field("survival") {
            None => None,
            Some(arr) => Some(
                arr.as_arr()?
                    .iter()
                    .map(|p| Ok((p.field("t")?.as_f64()?, est_from_value(p)?)))
                    .collect::<Result<Vec<(f64, Estimate)>, EngineError>>()?,
            ),
        };
        let opt_u64 = |name: &str| -> Result<Option<u64>, EngineError> {
            v.opt_field(name).map(Value::as_u64).transpose()
        };
        Ok(Self {
            scenario: v.field("scenario")?.as_str()?.to_string(),
            backend: BackendKind::from_name(v.field("backend")?.as_str()?)?,
            mttsf: est_from_value(v.field("mttsf")?)?,
            c_total: est_from_value(v.field("c_total")?)?,
            cost_components,
            failure: FailureSplit {
                p_c1: f.field("p_c1")?.as_f64()?,
                p_c2: f.field("p_c2")?.as_f64()?,
                p_other: f.field("p_other")?.as_f64()?,
            },
            state_count: opt_u64("state_count")?.map(|x| x as usize),
            edge_count: opt_u64("edge_count")?.map(|x| x as usize),
            lumping_reduction: v
                .opt_field("lumping_reduction")
                .map(Value::as_f64)
                .transpose()?,
            replications: opt_u64("replications")?,
            censored: opt_u64("censored")?,
            zero_duration: opt_u64("zero_duration")?,
            target_met: v.opt_field("target_met").map(Value::as_bool).transpose()?,
            survival,
            wall_seconds: v.field("wall_seconds")?.as_f64()?,
            template_cache: v
                .opt_field("template_cache")
                .map(TemplateCacheInfo::from_value)
                .transpose()?,
            transient: v
                .opt_field("transient")
                .map(TransientInfo::from_value)
                .transpose()?,
            detection: v
                .opt_field("detection")
                .map(DetectionInfo::from_value)
                .transpose()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_from_welford_attaches_interval() {
        let mut w = Welford::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.push(x);
        }
        let e = Estimate::from_welford(&w, 0.95);
        assert_eq!(e.value, 2.5);
        let (lo, hi) = e.ci.unwrap();
        assert!(lo < 2.5 && 2.5 < hi);

        let mut single = Welford::new();
        single.push(7.0);
        assert_eq!(Estimate::from_welford(&single, 0.95).ci, None);

        // zero observations (all censored): not estimable, not zero
        let empty = Estimate::from_welford(&Welford::new(), 0.95);
        assert!(empty.value.is_nan());
        assert_eq!(empty.ci, None);
    }

    #[test]
    fn estimate_proportion_edge_cases() {
        // zero-variance at t = 0: every replication alive — finite Wilson
        // bounds reaching exactly 1, never NaN, never zero-width
        let p = Estimate::proportion(40, 40, 0.95);
        assert_eq!(p.value, 1.0);
        let (lo, hi) = p.ci.unwrap();
        assert!(!lo.is_nan() && !hi.is_nan());
        assert!((hi - 1.0).abs() < 1e-12);
        assert!(lo < 1.0, "degenerate sample still carries uncertainty");
        // nothing at risk (all censored before t): NaN marker, no interval
        let none = Estimate::proportion(0, 0, 0.95);
        assert!(none.value.is_nan());
        assert_eq!(none.ci, None);
        // interior proportion: interval brackets the value inside [0, 1]
        let mid = Estimate::proportion(3, 4, 0.99);
        let (lo, hi) = mid.ci.unwrap();
        assert!(lo < mid.value && mid.value < hi);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn survival_estimates_respect_censoring() {
        // failure at 5, censored at 10
        let events = [(5.0, false), (10.0, true)];
        let s = survival_estimates(&events, &[0.0, 7.0, 20.0], 0.95);
        assert_eq!(s[0].1.value, 1.0);
        assert_eq!(s[1].1.value, 0.5);
        // past the censoring time the at-risk set holds only failures — a
        // raw proportion would report 0.0 when the true survival could be
        // anything; the point must be marked not estimable instead
        assert!(s[2].1.value.is_nan());
        assert_eq!(s[2].1.ci, None);
        // all censored before t: not estimable either
        let gone = survival_estimates(&[(1.0, true)], &[2.0], 0.95);
        assert!(gone[0].1.value.is_nan());
    }

    #[test]
    fn streaming_survival_matches_batch_estimator() {
        let events = [(5.0, false), (10.0, true), (3.0, false), (10.0, true)];
        let grid = [0.0, 4.0, 7.0, 20.0];
        let mut acc = SurvivalAccumulator::new(&grid);
        for &(t, c) in &events {
            acc.push(t, c);
        }
        let batch = survival_estimates(&events, &grid, 0.95);
        let streaming = survival_estimates_streaming(&acc, 0.95);
        assert_eq!(batch.len(), streaming.len());
        for ((t1, a), (t2, b)) in batch.iter().zip(&streaming) {
            assert_eq!(t1, t2);
            assert!(a.value.is_nan() == b.value.is_nan());
            if !a.value.is_nan() {
                assert_eq!(a, b);
            }
            assert_eq!(a.ci, b.ci);
        }
    }

    fn sample_report() -> RunReport {
        RunReport {
            scenario: "s".into(),
            backend: BackendKind::Exact,
            mttsf: Estimate::exact(100.0),
            c_total: Estimate {
                value: 5.0,
                ci: Some((4.0, 6.0)),
            },
            cost_components: Some(CostBreakdown {
                group_comm: 1.0,
                status: 2.0,
                rekey: 3.0,
                ids: 4.0,
                beacon: 5.0,
                partition_merge: 6.0,
            }),
            failure: FailureSplit {
                p_c1: 0.7,
                p_c2: 0.3,
                p_other: 0.0,
            },
            state_count: Some(10),
            edge_count: Some(20),
            lumping_reduction: Some(4.5),
            replications: None,
            censored: None,
            zero_duration: None,
            target_met: None,
            survival: Some(vec![
                (0.0, Estimate::exact(1.0)),
                (50.0, Estimate::exact(0.5)),
            ]),
            wall_seconds: 0.5,
            template_cache: None,
            transient: None,
            detection: None,
        }
    }

    #[test]
    fn report_serializes() {
        let text = sample_report().to_json();
        assert!(text.contains("\"backend\":\"exact\""));
        assert!(text.contains("\"ci_lo\":4.0"));
        assert!(text.contains("\"survival\":[{"));
        assert!(text.contains("\"partition_merge\":6.0"));
        assert!(crate::json::Value::parse(&text).is_ok());
    }

    #[test]
    fn report_json_roundtrip_is_lossless() {
        let r = sample_report();
        let back = RunReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        // and a stochastic-shaped report with intervals on survival points
        let mut s = sample_report();
        s.backend = BackendKind::Des;
        s.cost_components = None;
        s.state_count = None;
        s.edge_count = None;
        s.lumping_reduction = None;
        s.replications = Some(40);
        s.censored = Some(3);
        s.zero_duration = Some(1);
        s.target_met = Some(true);
        s.survival = Some(vec![
            (0.0, Estimate::proportion(40, 40, 0.95)),
            (9.0, Estimate::proportion(21, 40, 0.95)),
        ]);
        let back = RunReport::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn template_cache_field_is_omitted_when_absent_and_roundtrips_when_set() {
        let plain = sample_report();
        assert!(!plain.to_json().contains("template_cache"));

        let mut cached = sample_report();
        cached.template_cache = Some(TemplateCacheInfo {
            outcome: CacheOutcome::Hit,
            hits: 9,
            misses: 3,
            evictions: 1,
            bypasses: 2,
            entries: 2,
            cached_states: 1234,
        });
        let text = cached.to_json();
        assert!(text.contains("\"template_cache\":{"));
        assert!(text.contains("\"outcome\":\"hit\""));
        let back = RunReport::from_json(&text).unwrap();
        assert_eq!(back, cached);
        // stripping the field restores the plain byte encoding
        let mut stripped = back;
        stripped.template_cache = None;
        assert_eq!(stripped.to_json(), plain.to_json());
    }

    #[test]
    fn detection_field_is_omitted_when_absent_and_roundtrips_when_set() {
        let plain = sample_report();
        assert!(!plain.to_json().contains("\"detection\""));

        let mut r = sample_report();
        r.detection = Some(DetectionInfo {
            compromises: Estimate {
                value: 3.2,
                ci: Some((2.9, 3.5)),
            },
            detections: Estimate {
                value: 2.1,
                ci: Some((1.8, 2.4)),
            },
            false_alarms: Estimate {
                value: 0.4,
                ci: Some((0.2, 0.6)),
            },
            fp_rate: 0.16,
            fn_rate: 0.34,
            lead_time: Estimate {
                value: 812.0,
                ci: Some((700.0, 924.0)),
            },
            lead_time_observations: 37,
        });
        let text = r.to_json();
        assert!(text.contains("\"detection\":{"));
        assert!(text.contains("\"lead_time_observations\":37.0"));
        let back = RunReport::from_json(&text).unwrap();
        assert_eq!(back, r);
        // stripping the field restores the plain byte encoding
        let mut stripped = back;
        stripped.detection = None;
        assert_eq!(stripped.to_json(), plain.to_json());
    }

    #[test]
    fn non_estimable_detection_metrics_encode_as_null_not_nan() {
        // a run where nothing was ever compromised: every detection metric
        // that divides by zero is the NaN marker, which must serialize as
        // null (valid JSON) and come back as NaN
        let mut r = sample_report();
        r.detection = Some(DetectionInfo {
            compromises: Estimate::exact(0.0),
            detections: Estimate::exact(0.0),
            false_alarms: Estimate::exact(0.0),
            fp_rate: f64::NAN,
            fn_rate: f64::NAN,
            lead_time: Estimate {
                value: f64::NAN,
                ci: None,
            },
            lead_time_observations: 0,
        });
        let text = r.to_json();
        assert!(!text.contains("NaN"), "NaN is not valid JSON: {text}");
        assert!(text.contains("\"fp_rate\":null"));
        assert!(text.contains("\"fn_rate\":null"));
        assert!(text.contains("\"lead_time\":{\"value\":null}"));
        let back = RunReport::from_json(&text).unwrap();
        let d = back.detection.unwrap();
        assert!(d.fp_rate.is_nan());
        assert!(d.fn_rate.is_nan());
        assert!(d.lead_time.value.is_nan());
        assert_eq!(d.lead_time_observations, 0);
        // canonical: re-encoding is byte-identical
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn non_estimable_survival_encodes_as_null_and_survives_roundtrip() {
        let mut r = sample_report();
        r.survival = Some(vec![(3.0, Estimate::proportion(0, 0, 0.95))]);
        r.mttsf = Estimate {
            value: f64::NAN,
            ci: None,
        };
        let text = r.to_json();
        assert!(text.contains("\"survival\":[{\"t\":3.0,\"value\":null}]"));
        assert!(text.contains("\"mttsf\":{\"value\":null}"));
        let back = RunReport::from_json(&text).unwrap();
        assert!(back.mttsf.value.is_nan());
        let surv = back.survival.unwrap();
        assert_eq!(surv[0].0, 3.0);
        assert!(surv[0].1.value.is_nan());
        // the re-encoding is byte-identical (canonical form)
        let again = RunReport::from_json(&text).unwrap().to_json();
        assert_eq!(again, text);
    }
}
