//! The common result shape every backend produces.

use crate::json::Value;
use crate::spec::BackendKind;
use gcsids::cost::CostBreakdown;
use numerics::stats::Welford;

/// A point estimate with an optional confidence interval (exact backends
/// report the value alone; stochastic backends attach the interval).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The estimate.
    pub value: f64,
    /// Confidence interval `(lo, hi)` when the backend is stochastic.
    pub ci: Option<(f64, f64)>,
}

impl Estimate {
    /// Exact value without sampling error.
    pub fn exact(value: f64) -> Self {
        Self { value, ci: None }
    }

    /// Mean with a confidence interval from replication statistics.
    /// The interval is omitted below two observations; with **zero**
    /// observations (every replication censored) the value is `NaN` —
    /// "not estimable" — rather than a misleading 0.0. Check
    /// [`RunReport::censored`] against [`RunReport::replications`] to
    /// distinguish "fails instantly" from "never failed within the
    /// horizon".
    pub fn from_welford(w: &Welford, confidence: f64) -> Self {
        if w.count() == 0 {
            return Self {
                value: f64::NAN,
                ci: None,
            };
        }
        if w.count() < 2 {
            return Self {
                value: w.mean(),
                ci: None,
            };
        }
        let ci = w.confidence_interval(confidence);
        Self {
            value: w.mean(),
            ci: Some((ci.lo(), ci.hi())),
        }
    }
}

/// How the observed runs ended, as probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FailureSplit {
    /// Data-leak failures (condition C1).
    pub p_c1: f64,
    /// Byzantine-capture failures (condition C2).
    pub p_c2: f64,
    /// Everything else (attrition in the DES backends; zero for exact).
    pub p_other: f64,
}

/// The unified result of running one [`crate::ScenarioSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Scenario label (copied from the spec).
    pub scenario: String,
    /// Backend that produced the report.
    pub backend: BackendKind,
    /// Mean time to security failure (s).
    pub mttsf: Estimate,
    /// Time-averaged total communication cost (hop·bits/s).
    pub c_total: Estimate,
    /// Per-component cost breakdown (exact backend only).
    pub cost_components: Option<CostBreakdown>,
    /// Failure-mode split.
    pub failure: FailureSplit,
    /// Tangible CTMC states (exact backend only).
    pub state_count: Option<usize>,
    /// CTMC edges (exact backend only).
    pub edge_count: Option<usize>,
    /// Replications run (stochastic backends only).
    pub replications: Option<u64>,
    /// Replications censored by the time horizon (stochastic backends only).
    pub censored: Option<u64>,
    /// Wall-clock seconds spent producing this report.
    pub wall_seconds: f64,
}

impl RunReport {
    /// Serialize to JSON (for logs / downstream tooling).
    pub fn to_json(&self) -> String {
        // Non-finite estimates (all replications censored) encode as null.
        let num = |x: f64| {
            if x.is_finite() {
                Value::Num(x)
            } else {
                Value::Null
            }
        };
        let est = |e: &Estimate| match e.ci {
            Some((lo, hi)) => Value::obj([
                ("value", num(e.value)),
                ("ci_lo", num(lo)),
                ("ci_hi", num(hi)),
            ]),
            None => Value::obj([("value", num(e.value))]),
        };
        let opt_num = |x: Option<f64>| x.map_or(Value::Null, Value::Num);
        Value::obj([
            ("scenario", Value::Str(self.scenario.clone())),
            ("backend", Value::Str(self.backend.name().into())),
            ("mttsf", est(&self.mttsf)),
            ("c_total", est(&self.c_total)),
            (
                "failure",
                Value::obj([
                    ("p_c1", Value::Num(self.failure.p_c1)),
                    ("p_c2", Value::Num(self.failure.p_c2)),
                    ("p_other", Value::Num(self.failure.p_other)),
                ]),
            ),
            ("state_count", opt_num(self.state_count.map(|x| x as f64))),
            ("edge_count", opt_num(self.edge_count.map(|x| x as f64))),
            ("replications", opt_num(self.replications.map(|x| x as f64))),
            ("censored", opt_num(self.censored.map(|x| x as f64))),
            ("wall_seconds", Value::Num(self.wall_seconds)),
        ])
        .encode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_from_welford_attaches_interval() {
        let mut w = Welford::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.push(x);
        }
        let e = Estimate::from_welford(&w, 0.95);
        assert_eq!(e.value, 2.5);
        let (lo, hi) = e.ci.unwrap();
        assert!(lo < 2.5 && 2.5 < hi);

        let mut single = Welford::new();
        single.push(7.0);
        assert_eq!(Estimate::from_welford(&single, 0.95).ci, None);

        // zero observations (all censored): not estimable, not zero
        let empty = Estimate::from_welford(&Welford::new(), 0.95);
        assert!(empty.value.is_nan());
        assert_eq!(empty.ci, None);
    }

    #[test]
    fn report_serializes() {
        let r = RunReport {
            scenario: "s".into(),
            backend: BackendKind::Exact,
            mttsf: Estimate::exact(100.0),
            c_total: Estimate {
                value: 5.0,
                ci: Some((4.0, 6.0)),
            },
            cost_components: None,
            failure: FailureSplit {
                p_c1: 0.7,
                p_c2: 0.3,
                p_other: 0.0,
            },
            state_count: Some(10),
            edge_count: Some(20),
            replications: None,
            censored: None,
            wall_seconds: 0.5,
        };
        let text = r.to_json();
        assert!(text.contains("\"backend\":\"exact\""));
        assert!(text.contains("\"ci_lo\":4.0"));
        assert!(crate::json::Value::parse(&text).is_ok());
    }
}
