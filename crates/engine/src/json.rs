//! Minimal JSON reader/writer for scenario specs and run reports.
//!
//! The build environment cannot pull `serde`, so the engine carries its own
//! ~200-line JSON layer: a [`Value`] tree, a recursive-descent parser, and
//! a writer. It supports exactly the JSON the engine emits — objects,
//! arrays, strings, finite numbers, booleans, and null — which is
//! sufficient for lossless `ScenarioSpec` round-trips.

use crate::error::EngineError;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node. Object keys are sorted (`BTreeMap`), so encoding
/// is canonical and diffs are stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object constructor from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Borrow a field of an object.
    ///
    /// # Errors
    /// Returns [`EngineError::Json`] when `self` is not an object or the
    /// field is absent.
    pub fn field(&self, name: &str) -> Result<&Value, EngineError> {
        match self {
            Value::Obj(m) => m
                .get(name)
                .ok_or_else(|| EngineError::Json(format!("missing field `{name}`"))),
            _ => Err(EngineError::Json(format!(
                "expected object with field `{name}`"
            ))),
        }
    }

    /// Optional field (absent or `null` → `None`).
    pub fn opt_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => match m.get(name) {
                Some(Value::Null) | None => None,
                Some(v) => Some(v),
            },
            _ => None,
        }
    }

    /// Numeric value.
    ///
    /// # Errors
    /// Returns [`EngineError::Json`] when `self` is not a number.
    pub fn as_f64(&self) -> Result<f64, EngineError> {
        match self {
            Value::Num(x) => Ok(*x),
            _ => Err(EngineError::Json(format!("expected number, got {self:?}"))),
        }
    }

    /// Non-negative integer value.
    ///
    /// # Errors
    /// Returns [`EngineError::Json`] for non-numbers and numbers that are
    /// not exact non-negative integers.
    pub fn as_u64(&self) -> Result<u64, EngineError> {
        let x = self.as_f64()?;
        if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 {
            Ok(x as u64)
        } else {
            Err(EngineError::Json(format!(
                "expected unsigned integer, got {x}"
            )))
        }
    }

    /// Unsigned 32-bit value.
    ///
    /// # Errors
    /// Same as [`Value::as_u64`], plus range.
    pub fn as_u32(&self) -> Result<u32, EngineError> {
        let x = self.as_u64()?;
        u32::try_from(x).map_err(|_| EngineError::Json(format!("{x} exceeds u32")))
    }

    /// String value.
    ///
    /// # Errors
    /// Returns [`EngineError::Json`] when `self` is not a string.
    pub fn as_str(&self) -> Result<&str, EngineError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(EngineError::Json(format!("expected string, got {self:?}"))),
        }
    }

    /// Array elements.
    ///
    /// # Errors
    /// Returns [`EngineError::Json`] when `self` is not an array.
    pub fn as_arr(&self) -> Result<&[Value], EngineError> {
        match self {
            Value::Arr(items) => Ok(items),
            _ => Err(EngineError::Json(format!("expected array, got {self:?}"))),
        }
    }

    /// Boolean value.
    ///
    /// # Errors
    /// Returns [`EngineError::Json`] when `self` is not a boolean.
    pub fn as_bool(&self) -> Result<bool, EngineError> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err(EngineError::Json(format!("expected bool, got {self:?}"))),
        }
    }

    /// Serialize to a compact JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => {
                // `{:?}` prints f64 with round-trip precision.
                let _ = write!(out, "{x:?}");
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    ///
    /// # Errors
    /// Returns [`EngineError::Json`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Value, EngineError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(EngineError::Json(format!("trailing data at byte {pos}")));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn fail(pos: usize, what: &str) -> EngineError {
    EngineError::Json(format!("{what} at byte {pos}"))
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), EngineError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(fail(*pos, "unexpected token"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, EngineError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(fail(*pos, "unexpected end of input")),
        Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(fail(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(fail(*pos, "expected `:`"));
                }
                *pos += 1;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(fail(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, EngineError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(fail(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(fail(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        let c = if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: a \uXXXX low surrogate must
                            // follow; combine the pair.
                            if b.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err(fail(*pos, "unpaired high surrogate"));
                            }
                            let low = parse_hex4(b, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(fail(*pos, "invalid low surrogate"));
                            }
                            *pos += 6;
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            code
                        };
                        out.push(char::from_u32(c).ok_or_else(|| fail(*pos, "bad code point"))?);
                    }
                    _ => return Err(fail(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest =
                    std::str::from_utf8(&b[*pos..]).map_err(|_| fail(*pos, "invalid UTF-8"))?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| fail(*pos, "empty char"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Four hex digits starting at `at`, as a code unit.
fn parse_hex4(b: &[u8], at: usize) -> Result<u32, EngineError> {
    let hex = b
        .get(at..at + 4)
        .ok_or_else(|| fail(at, "truncated \\u escape"))?;
    u32::from_str_radix(
        std::str::from_utf8(hex).map_err(|_| fail(at, "bad \\u escape"))?,
        16,
    )
    .map_err(|_| fail(at, "bad \\u escape"))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, EngineError> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| fail(start, "bad number"))?;
    let x: f64 = text.parse().map_err(|_| fail(start, "bad number"))?;
    if !x.is_finite() {
        return Err(fail(start, "non-finite number"));
    }
    Ok(Value::Num(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let src = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\"y\n"}"#;
        let v = Value::parse(src).unwrap();
        let re = Value::parse(&v.encode()).unwrap();
        assert_eq!(v, re);
        assert_eq!(
            v.field("a").unwrap(),
            &Value::Arr(vec![Value::Num(1.0), Value::Num(2.5), Value::Num(-300.0)])
        );
        assert!(v.field("b").unwrap().field("c").unwrap().as_bool().unwrap());
        assert_eq!(v.field("e").unwrap().as_str().unwrap(), "x\"y\n");
    }

    #[test]
    fn integers_roundtrip_exactly() {
        for x in [0u64, 1, 42, 1_000_000, 1 << 52] {
            let v = Value::parse(&Value::Num(x as f64).encode()).unwrap();
            assert_eq!(v.as_u64().unwrap(), x);
        }
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [1.0 / 3.0, 2.07e-5, f64::MIN_POSITIVE, 1e300, -0.125] {
            let v = Value::parse(&Value::Num(x).encode()).unwrap();
            assert_eq!(v.as_f64().unwrap(), x);
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Value::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1F600}");
        // unpaired or malformed surrogates are rejected
        assert!(Value::parse(r#""\ud83d""#).is_err());
        assert!(Value::parse(r#""\ud83dx""#).is_err());
        assert!(Value::parse(r#""\ud83d\u0041""#).is_err());
    }

    #[test]
    fn errors_on_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "tru", "{\"a\" 1}", "1 2", "nan"] {
            assert!(Value::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn missing_field_reported() {
        let v = Value::parse("{}").unwrap();
        assert!(matches!(v.field("x"), Err(EngineError::Json(_))));
        assert!(v.opt_field("x").is_none());
        let v = Value::parse(r#"{"x": null}"#).unwrap();
        assert!(v.opt_field("x").is_none());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert!(Value::Num(1.5).as_u64().is_err());
        assert!(Value::Num(-1.0).as_u64().is_err());
        assert_eq!(Value::Num(7.0).as_u32().unwrap(), 7);
    }
}
