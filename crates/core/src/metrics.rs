//! End-to-end evaluation: configuration → SPN → CTMC → (MTTSF, Ĉtotal).
//!
//! `MTTSF` is the mean time to absorption of the CTMC (reward 1 on every
//! non-failed state); `Ĉtotal` is the expected accumulated communication
//! cost until absorption divided by MTTSF, with the six §2.5 components as
//! rate rewards and eviction rekeys charged as impulse rewards on the
//! transitions that cause them.

use crate::config::SystemConfig;
use crate::cost::{cost_breakdown, gdh_rekey_hop_bits, CostBreakdown};
use crate::model::{build_model, population, GcsIdsModel};
use spn::ctmc::{Ctmc, CtmcTemplate, TransientOptions};
use spn::error::SpnError;
use spn::reach::{explore, ExploreOptions, ReachabilityGraph};
use spn::reward::{ImpulseReward, RateReward};
use spn::transient::TransientStats;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Evaluation output for one configuration.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Mean time to security failure (seconds).
    pub mttsf_seconds: f64,
    /// Time-averaged communication cost until failure (hop·bits/s).
    pub c_total_hop_bits_per_sec: f64,
    /// Per-component time-averaged costs.
    pub cost_components: CostBreakdown,
    /// Probability the failure was a data leak (condition C1).
    pub p_failure_c1: f64,
    /// Probability the failure was Byzantine capture (condition C2).
    pub p_failure_c2: f64,
    /// Number of tangible CTMC states.
    pub state_count: usize,
    /// Number of CTMC transitions.
    pub edge_count: usize,
    /// Transient-engine telemetry from the mission-survival sweep
    /// (`None` when no survival curve was requested).
    pub transient: Option<TransientStats>,
}

/// Evaluate MTTSF and Ĉtotal for a configuration.
///
/// # Errors
/// Propagates configuration validation failures (as
/// [`SpnError::InvalidModel`]) and solver errors.
pub fn evaluate(cfg: &SystemConfig) -> Result<Evaluation, SpnError> {
    cfg.validate().map_err(SpnError::InvalidModel)?;
    let model = build_model(cfg);
    let graph = explore(&model.net, &ExploreOptions::default())?;
    evaluate_prebuilt(&model, &graph)
}

/// Explore-once-solve-many evaluator for rate-only configuration families.
///
/// The Cho–Chen state space depends only on the structural parameters
/// (`node_count`, `max_groups`); every other knob — detection interval,
/// attacker intensity, rate shapes, vote participants, host-IDS error
/// probabilities, traffic constants — only changes transition *rates* or
/// reward values. A template explores the reachability graph once, builds
/// the CTMC sparsity pattern once ([`CtmcTemplate`]), and then evaluates
/// any structurally compatible configuration **rebuild-free**: a pooled
/// scratch graph is re-armed from the pristine exploration
/// ([`ReachabilityGraph::copy_rates_from`]), re-weighted in place
/// ([`ReachabilityGraph::reweight_in_place`]), and the cached CTMC's value
/// arrays are rewritten in place ([`CtmcTemplate::refresh`]) — no graph
/// clone and no matrix construction per evaluation. Evaluation takes
/// `&self`, so one template can drive a rayon-parallel sweep; each worker
/// checks a scratch set out of the interior pool (one set per concurrent
/// worker ever exists, all sharing the single CSR pattern).
pub struct ExactTemplate {
    /// The pristine explored graph; never mutated after construction.
    graph: ReachabilityGraph,
    /// Shared CSR patterns + slot maps, built once.
    ctmc: CtmcTemplate,
    /// Pool of reusable (working graph, working CTMC) pairs.
    scratch: Mutex<Vec<Scratch>>,
    opts: ExploreOptions,
    node_count: u32,
    max_groups: u32,
    explorations: AtomicUsize,
    pattern_builds: AtomicUsize,
}

/// One worker's mutable state: a re-weightable graph copy plus a CTMC laid
/// out on the template's shared pattern.
struct Scratch {
    graph: ReachabilityGraph,
    ctmc: Ctmc,
}

/// Lifetime work counters of an [`ExactTemplate`] — the acceptance check
/// for explore-once-solve-many sweeps: a rate-only sweep of any size must
/// leave both counters at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemplateStats {
    /// State-space explorations performed (1 at construction; +1 per
    /// structural-fallback evaluation).
    pub explorations: usize,
    /// CTMC sparsity-pattern builds performed (1 at construction; +1 per
    /// structural-fallback evaluation).
    pub pattern_builds: usize,
    /// Symmetry orbits supplied to exploration (0 when lumping is off).
    pub orbits: usize,
    /// Total interchangeable member blocks across those orbits (0 when
    /// lumping is off; lumping can only shrink the space when some orbit
    /// has ≥ 2 members).
    pub orbit_members: usize,
}

impl ExactTemplate {
    /// Explore the state space of `cfg`'s structural family.
    ///
    /// # Errors
    /// Propagates validation and exploration failures.
    pub fn new(cfg: &SystemConfig) -> Result<Self, SpnError> {
        Self::with_options(cfg, &ExploreOptions::default())
    }

    /// Template with explicit exploration limits.
    ///
    /// # Errors
    /// Propagates validation and exploration failures.
    pub fn with_options(cfg: &SystemConfig, opts: &ExploreOptions) -> Result<Self, SpnError> {
        cfg.validate().map_err(SpnError::InvalidModel)?;
        let model = build_model(cfg);
        let graph = explore(&model.net, opts)?;
        let ctmc = CtmcTemplate::new(&graph)?;
        Ok(Self {
            graph,
            ctmc,
            scratch: Mutex::new(Vec::new()),
            opts: opts.clone(),
            node_count: cfg.node_count,
            max_groups: cfg.max_groups,
            explorations: AtomicUsize::new(1),
            pattern_builds: AtomicUsize::new(1),
        })
    }

    /// Work counters: how many explorations and CSR pattern builds this
    /// template has performed so far.
    pub fn stats(&self) -> TemplateStats {
        let (orbits, orbit_members) = match &self.opts.lumping {
            Some(c) => (c.orbit_count(), c.member_count()),
            None => (0, 0),
        };
        TemplateStats {
            explorations: self.explorations.load(Ordering::Relaxed),
            pattern_builds: self.pattern_builds.load(Ordering::Relaxed),
            orbits,
            orbit_members,
        }
    }

    /// True when `cfg` shares this template's state space.
    pub fn compatible(&self, cfg: &SystemConfig) -> bool {
        cfg.node_count == self.node_count && cfg.max_groups == self.max_groups
    }

    /// Number of tangible states in the cached graph.
    pub fn state_count(&self) -> usize {
        self.graph.state_count()
    }

    /// The cached reachability graph.
    pub fn graph(&self) -> &ReachabilityGraph {
        &self.graph
    }

    /// Evaluate a configuration against the cached state space.
    ///
    /// Structurally compatible configurations reuse the cached graph via
    /// re-weighting; incompatible ones transparently fall back to a fresh
    /// exploration (same result, no reuse).
    ///
    /// # Errors
    /// Propagates validation, re-weighting, and solver failures.
    pub fn evaluate(&self, cfg: &SystemConfig) -> Result<Evaluation, SpnError> {
        self.evaluate_with_survival(cfg, &[]).map(|(e, _)| e)
    }

    /// Evaluate and additionally compute the exact mission survival curve
    /// `P[no security failure by t]` on `mission_times` (ascending), over
    /// the same (re-weighted) graph the steady metrics use. An empty grid
    /// skips the transient solve and returns `None`.
    ///
    /// # Errors
    /// Propagates validation, re-weighting, and solver failures.
    pub fn evaluate_with_survival(
        &self,
        cfg: &SystemConfig,
        mission_times: &[f64],
    ) -> Result<(Evaluation, Option<Vec<f64>>), SpnError> {
        cfg.validate().map_err(SpnError::InvalidModel)?;
        if !self.compatible(cfg) {
            return self.evaluate_fresh(cfg, mission_times);
        }
        let model = build_model(cfg);
        let mut scratch = self.take_scratch()?;
        let result = (|| {
            // Always re-arm from the pristine exploration: re-weighting
            // starts from the explored rate mass, so a zeroed transition at
            // one grid point cannot poison the next point's split.
            scratch.graph.copy_rates_from(&self.graph);
            scratch.graph.reweight_in_place(&model.net)?;
            self.ctmc.refresh(&scratch.graph, &mut scratch.ctmc)?;
            evaluate_with_ctmc(&model, &scratch.graph, &scratch.ctmc, mission_times)
        })();
        self.scratch
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);
        match result {
            // Structural mismatch despite matching keys — e.g. a rate that
            // was zero at template-build time pruned states that this
            // configuration can reach. Fall back to a fresh exploration.
            Err(SpnError::InvalidModel(_)) => self.evaluate_fresh(cfg, mission_times),
            other => other,
        }
    }

    /// Check a scratch set out of the pool, creating one (on the shared
    /// pattern — no pattern build) when all are in use.
    fn take_scratch(&self) -> Result<Scratch, SpnError> {
        if let Some(s) = self.scratch.lock().expect("scratch pool poisoned").pop() {
            return Ok(s);
        }
        Ok(Scratch {
            graph: self.graph.clone(),
            ctmc: self.ctmc.instantiate(&self.graph)?,
        })
    }

    /// Fresh exploration under the template's own limits, so a
    /// caller-imposed state budget is never silently bypassed.
    fn evaluate_fresh(
        &self,
        cfg: &SystemConfig,
        mission_times: &[f64],
    ) -> Result<(Evaluation, Option<Vec<f64>>), SpnError> {
        self.explorations.fetch_add(1, Ordering::Relaxed);
        self.pattern_builds.fetch_add(1, Ordering::Relaxed);
        let model = build_model(cfg);
        let graph = explore(&model.net, &self.opts)?;
        evaluate_graph(&model, &graph, mission_times)
    }
}

/// Steady metrics plus the optional exact survival curve on one graph,
/// sharing a single CTMC build between the absorption and transient solves.
///
/// # Errors
/// Propagates solver failures.
pub fn evaluate_graph(
    model: &GcsIdsModel,
    graph: &ReachabilityGraph,
    mission_times: &[f64],
) -> Result<(Evaluation, Option<Vec<f64>>), SpnError> {
    let ctmc = Ctmc::from_graph(graph)?;
    evaluate_with_ctmc(model, graph, &ctmc, mission_times)
}

/// Exact mission survival `P[no security failure by t]` for each horizon in
/// the ascending grid `mission_times`: one uniformization sweep over the
/// tangible CTMC, reading off the non-absorbed probability mass — the
/// transient counterpart of the MTTSF absorption solve.
///
/// # Errors
/// Returns [`SpnError::InvalidModel`] for a degenerate graph.
pub fn survival_exact(
    graph: &ReachabilityGraph,
    mission_times: &[f64],
) -> Result<Vec<f64>, SpnError> {
    let ctmc = Ctmc::from_graph(graph)?;
    Ok(ctmc.survival_curve(mission_times, &TransientOptions::default()))
}

/// The eviction-rekey impulse rewards (a GDH rekey charged on every `T_IDS`
/// or `T_FA` firing) shared by the exact evaluator and the SPN-simulation
/// backend.
///
/// # Errors
/// Returns [`SpnError::InvalidModel`] if the model is missing the eviction
/// transitions.
pub fn eviction_impulses(model: &GcsIdsModel) -> Result<Vec<ImpulseReward>, SpnError> {
    let cfg = &model.config;
    let places = model.places;
    ["T_IDS", "T_FA"]
        .iter()
        .map(|name| {
            let t = model
                .net
                .transition_by_name(name)
                .ok_or_else(|| SpnError::InvalidModel(format!("missing transition {name}")))?;
            Ok(ImpulseReward::new(format!("evict-rekey-{name}"), t, {
                let cfg = cfg.clone();
                move |m: &spn::model::Marking| {
                    let pop = population(&places, m);
                    gdh_rekey_hop_bits(&cfg, pop.per_group_live())
                }
            }))
        })
        .collect()
}

/// Evaluate a model whose reachability graph is already known (lets sweeps
/// that only change rates reuse the exploration when the structure is
/// unchanged — note rates are baked into edges, so this is only valid for
/// the graph built from the same model).
pub fn evaluate_prebuilt(
    model: &GcsIdsModel,
    graph: &ReachabilityGraph,
) -> Result<Evaluation, SpnError> {
    let ctmc = Ctmc::from_graph(graph)?;
    evaluate_with_ctmc(model, graph, &ctmc, &[]).map(|(e, _)| e)
}

/// The shared evaluation core: steady metrics (plus the optional survival
/// curve) on a CTMC that is already built — freshly via [`Ctmc::from_graph`]
/// on the one-shot paths, or refreshed in place on the rebuild-free
/// template path. `ctmc` must be the chain of `graph`'s current rates.
pub(crate) fn evaluate_with_ctmc(
    model: &GcsIdsModel,
    graph: &ReachabilityGraph,
    ctmc: &Ctmc,
    mission_times: &[f64],
) -> Result<(Evaluation, Option<Vec<f64>>), SpnError> {
    let cfg = &model.config;
    let places = model.places;
    let absorption = ctmc.mean_time_to_absorption()?;

    // --- cost rewards -----------------------------------------------------
    // Rate components evaluated per state.
    let rate_components: Vec<CostBreakdown> = graph
        .states
        .iter()
        .map(|m| cost_breakdown(cfg, &population(&places, m)))
        .collect();

    // Impulse rewards: a GDH rekey per eviction (T_IDS / T_FA firing).
    let mut impulse_rates = vec![0.0; graph.state_count()];
    for imp in eviction_impulses(model)? {
        for (acc, v) in impulse_rates
            .iter_mut()
            .zip(imp.per_state(&model.net, graph))
        {
            *acc += v;
        }
    }

    let mttsf = absorption.mtta;
    // Accumulate each component over the sojourn vector.
    let mut accumulated = CostBreakdown::default();
    let mut accumulated_impulse = 0.0;
    for (i, sojourn) in absorption.sojourn.iter().enumerate() {
        if *sojourn > 0.0 {
            accumulated = accumulated.add(&rate_components[i].scale(*sojourn));
            accumulated_impulse += impulse_rates[i] * sojourn;
        }
    }
    // Eviction rekeys belong to the rekey component.
    accumulated.rekey += accumulated_impulse;

    let components = if mttsf > 0.0 {
        accumulated.scale(1.0 / mttsf)
    } else {
        CostBreakdown::default()
    };

    // --- failure-cause split ------------------------------------------------
    let mut p_c1 = 0.0;
    let mut p_c2 = 0.0;
    for (i, &p) in absorption.absorption_probability.iter().enumerate() {
        if p <= 0.0 {
            continue;
        }
        let m = &graph.states[i];
        if m.tokens(places.gf) > 0 {
            p_c1 += p;
        } else {
            p_c2 += p;
        }
    }

    let mut evaluation = Evaluation {
        mttsf_seconds: mttsf,
        c_total_hop_bits_per_sec: components.total(),
        cost_components: components,
        p_failure_c1: p_c1,
        p_failure_c2: p_c2,
        state_count: graph.state_count(),
        edge_count: graph.edge_count(),
        transient: None,
    };
    let survival = if mission_times.is_empty() {
        None
    } else {
        let (curve, stats) =
            ctmc.survival_curve_with_stats(mission_times, &TransientOptions::default());
        evaluation.transient = Some(stats);
        Some(curve)
    };
    Ok((evaluation, survival))
}

/// A RateReward adapter for the total cost (exposed for reuse by the
/// simulation validator, which integrates the same per-state rates).
pub fn total_cost_reward(cfg: &SystemConfig, model: &GcsIdsModel) -> RateReward {
    let cfg = cfg.clone();
    let places = model.places;
    RateReward::new("c_total_rate", move |m| {
        cost_breakdown(&cfg, &population(&places, m)).total()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids::functions::RateShape;

    fn small(n: u32, m: u32, tids: f64) -> SystemConfig {
        let mut c = SystemConfig::paper_default();
        c.node_count = n;
        c.vote_participants = m;
        c.detection = c.detection.with_interval(tids);
        c
    }

    #[test]
    fn evaluation_produces_finite_metrics() {
        let e = evaluate(&small(12, 3, 120.0)).unwrap();
        assert!(e.mttsf_seconds.is_finite() && e.mttsf_seconds > 0.0);
        assert!(e.c_total_hop_bits_per_sec > 0.0);
        assert!(e.state_count > 10);
        assert!(e.edge_count > e.state_count);
    }

    #[test]
    fn failure_probabilities_form_distribution() {
        let e = evaluate(&small(12, 3, 120.0)).unwrap();
        assert!((e.p_failure_c1 + e.p_failure_c2 - 1.0).abs() < 1e-6);
        assert!(e.p_failure_c1 > 0.0);
        assert!(e.p_failure_c2 > 0.0);
    }

    #[test]
    fn components_sum_to_total() {
        let e = evaluate(&small(12, 3, 120.0)).unwrap();
        assert!((e.cost_components.total() - e.c_total_hop_bits_per_sec).abs() < 1e-9);
    }

    #[test]
    fn invalid_config_is_reported() {
        let mut c = SystemConfig::paper_default();
        c.node_count = 0;
        assert!(matches!(evaluate(&c), Err(SpnError::InvalidModel(_))));
    }

    #[test]
    fn stronger_attacker_lowers_mttsf() {
        let base = small(12, 3, 120.0);
        let mut hot = base.clone();
        hot.attacker.base_rate *= 10.0;
        let e0 = evaluate(&base).unwrap();
        let e1 = evaluate(&hot).unwrap();
        assert!(e1.mttsf_seconds < e0.mttsf_seconds);
    }

    #[test]
    fn very_long_tids_fails_mostly_by_c1() {
        // with detection nearly off, compromised nodes leak data first
        let e = evaluate(&small(12, 3, 1.0e6)).unwrap();
        assert!(e.p_failure_c1 > 0.5, "C1 share = {}", e.p_failure_c1);
    }

    #[test]
    fn very_short_tids_increases_c2_share() {
        // aggressive IDS evicts good nodes, pushing toward Byzantine ratio
        let slow = evaluate(&small(12, 3, 600.0)).unwrap();
        let fast = evaluate(&small(12, 3, 1.0)).unwrap();
        assert!(
            fast.p_failure_c2 > slow.p_failure_c2,
            "fast {} vs slow {}",
            fast.p_failure_c2,
            slow.p_failure_c2
        );
    }

    #[test]
    fn detection_shape_changes_metrics() {
        let lin = evaluate(&small(12, 3, 60.0)).unwrap();
        let log =
            evaluate(&small(12, 3, 60.0).with_detection_shape(RateShape::Logarithmic)).unwrap();
        assert_ne!(lin.mttsf_seconds, log.mttsf_seconds);
    }

    #[test]
    fn template_matches_fresh_evaluation_across_rate_knobs() {
        let base = small(12, 3, 120.0);
        let template = ExactTemplate::new(&base).unwrap();
        let mut variants = vec![
            base.with_tids(5.0),
            base.with_tids(600.0),
            base.with_vote_participants(5),
            base.with_detection_shape(RateShape::Polynomial),
            base.with_detection_shape(RateShape::Logarithmic)
                .with_tids(45.0),
        ];
        let mut hot = base.clone();
        hot.attacker.base_rate *= 8.0;
        variants.push(hot);
        for cfg in &variants {
            assert!(template.compatible(cfg));
            let fast = template.evaluate(cfg).unwrap();
            let slow = evaluate(cfg).unwrap();
            let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
            assert!(
                rel(fast.mttsf_seconds, slow.mttsf_seconds) < 1e-9,
                "MTTSF {} vs {}",
                fast.mttsf_seconds,
                slow.mttsf_seconds
            );
            assert!(
                rel(fast.c_total_hop_bits_per_sec, slow.c_total_hop_bits_per_sec) < 1e-9,
                "cost {} vs {}",
                fast.c_total_hop_bits_per_sec,
                slow.c_total_hop_bits_per_sec
            );
            assert!((fast.p_failure_c1 - slow.p_failure_c1).abs() < 1e-9);
            assert_eq!(fast.state_count, slow.state_count);
        }
    }

    #[test]
    fn template_falls_back_when_zero_rate_pruned_the_space() {
        // partition_rate = 0 at template-build time keeps NG pinned at 1,
        // pruning every multi-group state; evaluating a config that turns
        // partitions back on must transparently re-explore, not error.
        let mut frozen = small(12, 3, 120.0);
        frozen.partition_rate_per_group = 0.0;
        let template = ExactTemplate::new(&frozen).unwrap();
        let live = small(12, 3, 120.0);
        assert!(template.compatible(&live));
        let via_template = template.evaluate(&live).unwrap();
        let direct = evaluate(&live).unwrap();
        assert!(via_template.state_count > template.state_count());
        assert_eq!(via_template.state_count, direct.state_count);
        assert!((via_template.mttsf_seconds - direct.mttsf_seconds).abs() < 1e-9);
        // the fallback is counted: one exploration at build, one more for
        // the structural mismatch
        assert_eq!(template.stats().explorations, 2);
        assert_eq!(template.stats().pattern_builds, 2);
    }

    #[test]
    fn template_falls_back_on_structural_change() {
        let template = ExactTemplate::new(&small(12, 3, 120.0)).unwrap();
        let other = small(14, 3, 120.0);
        assert!(!template.compatible(&other));
        let via_template = template.evaluate(&other).unwrap();
        let direct = evaluate(&other).unwrap();
        assert_eq!(via_template.state_count, direct.state_count);
        assert!((via_template.mttsf_seconds - direct.mttsf_seconds).abs() < 1e-9);
    }

    #[test]
    fn exact_survival_curve_brackets_mttsf() {
        // S(t) is monotone from 1, and the area under it is the MTTSF — at
        // t = MTTSF the survival of a roughly-exponential failure law sits
        // near e^{-1}.
        let cfg = small(12, 3, 120.0);
        let model = build_model(&cfg);
        let graph = explore(&model.net, &ExploreOptions::default()).unwrap();
        let e = evaluate_prebuilt(&model, &graph).unwrap();
        let m = e.mttsf_seconds;
        let times = [0.0, 0.25 * m, m, 4.0 * m];
        let s = survival_exact(&graph, &times).unwrap();
        assert!((s[0] - 1.0).abs() < 1e-9);
        for w in s.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{s:?}");
        }
        assert!(s[2] > 0.05 && s[2] < 0.8, "S(MTTSF) = {}", s[2]);
        assert!(s[3] < s[2]);
    }

    #[test]
    fn template_survival_matches_fresh_graph() {
        let base = small(12, 3, 120.0);
        let template = ExactTemplate::new(&base).unwrap();
        let variant = base.with_tids(45.0);
        let (eval, surv) = template
            .evaluate_with_survival(&variant, &[1.0e4, 1.0e5])
            .unwrap();
        let model = build_model(&variant);
        let graph = explore(&model.net, &ExploreOptions::default()).unwrap();
        let direct = survival_exact(&graph, &[1.0e4, 1.0e5]).unwrap();
        let surv = surv.unwrap();
        for (a, b) in surv.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-9, "{surv:?} vs {direct:?}");
        }
        assert!(eval.mttsf_seconds > 0.0);
        // empty grid skips the transient solve
        let (_, none) = template.evaluate_with_survival(&variant, &[]).unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn total_cost_reward_matches_breakdown() {
        let cfg = small(10, 3, 120.0);
        let model = build_model(&cfg);
        let r = total_cost_reward(&cfg, &model);
        let init = model.net.initial_marking();
        let direct = cost_breakdown(&cfg, &population(&model.places, &init)).total();
        assert!(((r.rate)(&init) - direct).abs() < 1e-9);
    }
}
