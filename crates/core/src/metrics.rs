//! End-to-end evaluation: configuration → SPN → CTMC → (MTTSF, Ĉtotal).
//!
//! `MTTSF` is the mean time to absorption of the CTMC (reward 1 on every
//! non-failed state); `Ĉtotal` is the expected accumulated communication
//! cost until absorption divided by MTTSF, with the six §2.5 components as
//! rate rewards and eviction rekeys charged as impulse rewards on the
//! transitions that cause them.

use crate::config::SystemConfig;
use crate::cost::{cost_breakdown, gdh_rekey_hop_bits, CostBreakdown};
use crate::model::{build_model, population, GcsIdsModel};
use spn::ctmc::Ctmc;
use spn::error::SpnError;
use spn::reach::{explore, ExploreOptions, ReachabilityGraph};
use spn::reward::{ImpulseReward, RateReward};

/// Evaluation output for one configuration.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Mean time to security failure (seconds).
    pub mttsf_seconds: f64,
    /// Time-averaged communication cost until failure (hop·bits/s).
    pub c_total_hop_bits_per_sec: f64,
    /// Per-component time-averaged costs.
    pub cost_components: CostBreakdown,
    /// Probability the failure was a data leak (condition C1).
    pub p_failure_c1: f64,
    /// Probability the failure was Byzantine capture (condition C2).
    pub p_failure_c2: f64,
    /// Number of tangible CTMC states.
    pub state_count: usize,
    /// Number of CTMC transitions.
    pub edge_count: usize,
}

/// Evaluate MTTSF and Ĉtotal for a configuration.
///
/// # Errors
/// Propagates configuration validation failures (as
/// [`SpnError::InvalidModel`]) and solver errors.
pub fn evaluate(cfg: &SystemConfig) -> Result<Evaluation, SpnError> {
    cfg.validate().map_err(SpnError::InvalidModel)?;
    let model = build_model(cfg);
    let graph = explore(&model.net, &ExploreOptions::default())?;
    evaluate_prebuilt(&model, &graph)
}

/// Evaluate a model whose reachability graph is already known (lets sweeps
/// that only change rates reuse the exploration when the structure is
/// unchanged — note rates are baked into edges, so this is only valid for
/// the graph built from the same model).
pub fn evaluate_prebuilt(
    model: &GcsIdsModel,
    graph: &ReachabilityGraph,
) -> Result<Evaluation, SpnError> {
    let cfg = &model.config;
    let places = model.places;
    let ctmc = Ctmc::from_graph(graph)?;
    let absorption = ctmc.mean_time_to_absorption()?;

    // --- cost rewards -----------------------------------------------------
    // Rate components evaluated per state.
    let rate_components: Vec<CostBreakdown> = graph
        .states
        .iter()
        .map(|m| cost_breakdown(cfg, &population(&places, m)))
        .collect();

    // Impulse rewards: a GDH rekey per eviction (T_IDS / T_FA firing).
    let mut impulse_rates = vec![0.0; graph.state_count()];
    for name in ["T_IDS", "T_FA"] {
        let t = model
            .net
            .transition_by_name(name)
            .ok_or_else(|| SpnError::InvalidModel(format!("missing transition {name}")))?;
        let imp = ImpulseReward::new(format!("evict-rekey-{name}"), t, {
            let cfg = cfg.clone();
            let places = places;
            move |m: &spn::model::Marking| {
                let pop = population(&places, m);
                gdh_rekey_hop_bits(&cfg, pop.per_group_live())
            }
        });
        for (acc, v) in impulse_rates.iter_mut().zip(imp.per_state(&model.net, graph)) {
            *acc += v;
        }
    }

    let mttsf = absorption.mtta;
    // Accumulate each component over the sojourn vector.
    let mut accumulated = CostBreakdown::default();
    let mut accumulated_impulse = 0.0;
    for (i, sojourn) in absorption.sojourn.iter().enumerate() {
        if *sojourn > 0.0 {
            accumulated = accumulated.add(&rate_components[i].scale(*sojourn));
            accumulated_impulse += impulse_rates[i] * sojourn;
        }
    }
    // Eviction rekeys belong to the rekey component.
    accumulated.rekey += accumulated_impulse;

    let components = if mttsf > 0.0 {
        accumulated.scale(1.0 / mttsf)
    } else {
        CostBreakdown::default()
    };

    // --- failure-cause split ------------------------------------------------
    let mut p_c1 = 0.0;
    let mut p_c2 = 0.0;
    for (i, &p) in absorption.absorption_probability.iter().enumerate() {
        if p <= 0.0 {
            continue;
        }
        let m = &graph.states[i];
        if m.tokens(places.gf) > 0 {
            p_c1 += p;
        } else {
            p_c2 += p;
        }
    }

    Ok(Evaluation {
        mttsf_seconds: mttsf,
        c_total_hop_bits_per_sec: components.total(),
        cost_components: components,
        p_failure_c1: p_c1,
        p_failure_c2: p_c2,
        state_count: graph.state_count(),
        edge_count: graph.edge_count(),
    })
}

/// A RateReward adapter for the total cost (exposed for reuse by the
/// simulation validator, which integrates the same per-state rates).
pub fn total_cost_reward(cfg: &SystemConfig, model: &GcsIdsModel) -> RateReward {
    let cfg = cfg.clone();
    let places = model.places;
    RateReward::new("c_total_rate", move |m| {
        cost_breakdown(&cfg, &population(&places, m)).total()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids::functions::RateShape;

    fn small(n: u32, m: u32, tids: f64) -> SystemConfig {
        let mut c = SystemConfig::paper_default();
        c.node_count = n;
        c.vote_participants = m;
        c.detection = c.detection.with_interval(tids);
        c
    }

    #[test]
    fn evaluation_produces_finite_metrics() {
        let e = evaluate(&small(12, 3, 120.0)).unwrap();
        assert!(e.mttsf_seconds.is_finite() && e.mttsf_seconds > 0.0);
        assert!(e.c_total_hop_bits_per_sec > 0.0);
        assert!(e.state_count > 10);
        assert!(e.edge_count > e.state_count);
    }

    #[test]
    fn failure_probabilities_form_distribution() {
        let e = evaluate(&small(12, 3, 120.0)).unwrap();
        assert!((e.p_failure_c1 + e.p_failure_c2 - 1.0).abs() < 1e-6);
        assert!(e.p_failure_c1 > 0.0);
        assert!(e.p_failure_c2 > 0.0);
    }

    #[test]
    fn components_sum_to_total() {
        let e = evaluate(&small(12, 3, 120.0)).unwrap();
        assert!((e.cost_components.total() - e.c_total_hop_bits_per_sec).abs() < 1e-9);
    }

    #[test]
    fn invalid_config_is_reported() {
        let mut c = SystemConfig::paper_default();
        c.node_count = 0;
        assert!(matches!(evaluate(&c), Err(SpnError::InvalidModel(_))));
    }

    #[test]
    fn stronger_attacker_lowers_mttsf() {
        let base = small(12, 3, 120.0);
        let mut hot = base.clone();
        hot.attacker.base_rate *= 10.0;
        let e0 = evaluate(&base).unwrap();
        let e1 = evaluate(&hot).unwrap();
        assert!(e1.mttsf_seconds < e0.mttsf_seconds);
    }

    #[test]
    fn very_long_tids_fails_mostly_by_c1() {
        // with detection nearly off, compromised nodes leak data first
        let e = evaluate(&small(12, 3, 1.0e6)).unwrap();
        assert!(e.p_failure_c1 > 0.5, "C1 share = {}", e.p_failure_c1);
    }

    #[test]
    fn very_short_tids_increases_c2_share() {
        // aggressive IDS evicts good nodes, pushing toward Byzantine ratio
        let slow = evaluate(&small(12, 3, 600.0)).unwrap();
        let fast = evaluate(&small(12, 3, 1.0)).unwrap();
        assert!(
            fast.p_failure_c2 > slow.p_failure_c2,
            "fast {} vs slow {}",
            fast.p_failure_c2,
            slow.p_failure_c2
        );
    }

    #[test]
    fn detection_shape_changes_metrics() {
        let lin = evaluate(&small(12, 3, 60.0)).unwrap();
        let log = evaluate(&small(12, 3, 60.0).with_detection_shape(RateShape::Logarithmic))
            .unwrap();
        assert_ne!(lin.mttsf_seconds, log.mttsf_seconds);
    }

    #[test]
    fn total_cost_reward_matches_breakdown() {
        let cfg = small(10, 3, 120.0);
        let model = build_model(&cfg);
        let r = total_cost_reward(&cfg, &model);
        let init = model.net.initial_marking();
        let direct = cost_breakdown(
            &cfg,
            &population(&model.places, &init),
        )
        .total();
        assert!(((r.rate)(&init) - direct).abs() < 1e-9);
    }
}
