//! Mobility-coupled discrete-event simulation: the fully integrated system.
//!
//! Where [`crate::des`] drives group partition/merge from the *calibrated
//! birth–death rates* (matching the SPN abstraction), this simulator closes
//! the final gap to the real system: nodes move under random waypoint, and
//! the mobile groups **are** the connected components of the unit-disc
//! graph at every instant. Stochastic protocol events (compromise, voting,
//! data requests, join/leave rekeys) are superimposed on the evolving
//! connectivity with a hybrid scheme: mobility advances in fixed `dt`
//! steps, and within each step protocol events fire by thinning the
//! exponential race.
//!
//! This is the most expensive validator in the repository (every step
//! rebuilds connectivity), so it is used with accelerated parameters by
//! tests and runs in the cross-backend validation harness only on request
//! (`runner --mobility`; see `engine::crossval`). It serves as the
//! ground-truth check that the birth–death abstraction in the SPN/DES does
//! not distort MTTSF (EXPERIMENTS.md §6).

use crate::config::SystemConfig;
use crate::cost::gdh_rekey_hop_bits;
use crate::des::FailureCause;
use crate::scenario_model::scenario_system;
use ids::voting::{run_vote_with_collusion, CollusionModel, VotingConfig};
use manet::{ConnectivityGraph, MobilityConfig, RandomWaypoint};
use numerics::replicate::{run_plan, OutcomeSink, Replicate, SamplingPlan};
use numerics::stats::Welford;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use scenario::{
    burst_capture_multiplier, targeted_capture_multiplier, targeted_effective_collusion,
    AttackerStrategy, ScenarioConfig,
};

/// Parameters of the mobility-coupled simulation.
#[derive(Debug, Clone)]
pub struct MobilityDesConfig {
    /// The protocol/attacker configuration.
    pub system: SystemConfig,
    /// Mobility model (node count is taken from `system.node_count`).
    pub mobility: MobilityConfig,
    /// Radio range (m) defining the unit-disc groups.
    pub radio_range: f64,
    /// Mobility step (s).
    pub dt: f64,
    /// Censoring horizon (s).
    pub max_time: f64,
    /// Adversary scenario. Only the *attacker* axis is modeled here (burst,
    /// stealth, targeted); response policies other than eviction are not
    /// meaningful on live connectivity components and are rejected upstream
    /// by `engine` spec validation.
    pub scenario: ScenarioConfig,
}

impl MobilityDesConfig {
    /// Defaults: the system's node count in the paper's 500 m disc with
    /// 250 m range, 1 s steps, one-year horizon.
    pub fn new(system: SystemConfig) -> Self {
        let mobility = MobilityConfig {
            node_count: system.node_count as usize,
            ..Default::default()
        };
        Self {
            system,
            mobility,
            radio_range: 250.0,
            dt: 1.0,
            max_time: 3.15e7,
            scenario: ScenarioConfig::baseline(),
        }
    }
}

/// Outcome of one mobility-coupled replication.
#[derive(Debug, Clone)]
pub struct MobilityDesOutcome {
    /// End time.
    pub time: f64,
    /// Cause of the ending.
    pub cause: FailureCause,
    /// Accumulated traffic (hop·bits).
    pub hop_bits: f64,
    /// Observed partition events.
    pub partitions: u64,
    /// Observed merge events.
    pub merges: u64,
    /// Compromises performed by the attacker.
    pub compromises: u64,
    /// Evictions by the voting IDS (true + false).
    pub evictions: u64,
    /// Evictions of actually compromised nodes.
    pub true_evictions: u64,
    /// Evictions of healthy nodes (false alarms).
    pub false_evictions: u64,
    /// Time of the first compromise (`None` if none happened).
    pub first_compromise: Option<f64>,
    /// Time of the first eviction of a compromised node (`None` if none).
    pub first_true_detection: Option<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    Trusted,
    Compromised,
    Evicted,
}

/// Per-replication counters threaded to every return site.
#[derive(Debug, Clone, Copy, Default)]
struct MobCounters {
    partitions: u64,
    merges: u64,
    compromises: u64,
    evictions: u64,
    true_evictions: u64,
    false_evictions: u64,
    first_compromise: Option<f64>,
    first_true_detection: Option<f64>,
}

fn finish(t: f64, cause: FailureCause, hop_bits: f64, k: &MobCounters) -> MobilityDesOutcome {
    MobilityDesOutcome {
        time: t,
        cause,
        hop_bits,
        partitions: k.partitions,
        merges: k.merges,
        compromises: k.compromises,
        evictions: k.evictions,
        true_evictions: k.true_evictions,
        false_evictions: k.false_evictions,
        first_compromise: k.first_compromise,
        first_true_detection: k.first_true_detection,
    }
}

/// Run one mobility-coupled replication.
pub fn run_mobility_des(cfg: &MobilityDesConfig, seed: u64) -> MobilityDesOutcome {
    // Stealth is a pure parameter transform, exactly as in the other
    // backends; burst/targeted modulate rates inside the loop.
    let sys_owned = scenario_system(&cfg.system, &cfg.scenario);
    let sys = &sys_owned;
    let focus = cfg.scenario.attacker.focus();
    let burst = match cfg.scenario.attacker {
        AttackerStrategy::Burst {
            on_rate,
            off_rate,
            multiplier,
        } => Some((on_rate, off_rate, multiplier)),
        _ => None,
    };
    // detlint::allow(D003): leaf constructor — `seed` is a child_seed from the replicate grid, passed down by the executor
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mobility = RandomWaypoint::new(
        MobilityConfig {
            node_count: sys.node_count as usize,
            ..cfg.mobility
        },
        &mut rng,
    );
    let mut status = vec![St::Trusted; sys.node_count as usize];
    let vote_cfg = VotingConfig {
        participants: sys.vote_participants,
        host: ids::host::HostIds::new(sys.p1_host_false_negative, sys.p2_host_false_positive),
    };

    let mut t = 0.0f64;
    let mut hop_bits = 0.0f64;
    let mut k = MobCounters::default();
    let mut burst_active = false;

    let positions = mobility.positions();
    let mut graph = ConnectivityGraph::build(&positions, cfg.radio_range);
    let mut prev_components = graph.component_count();

    while t < cfg.max_time {
        // --- mobility step and group bookkeeping ---------------------------
        mobility.step(cfg.dt, &mut rng);
        t += cfg.dt;
        let positions = mobility.positions();
        graph = ConnectivityGraph::build(&positions, cfg.radio_range);
        let components = graph.component_count();
        // Count topology events and charge their rekeys (evicted nodes keep
        // moving but are cryptographically outside every group).
        if components > prev_components {
            k.partitions += (components - prev_components) as u64;
            hop_bits += gdh_rekey_hop_bits(sys, mean_live_group_size(&graph, &status));
        } else if components < prev_components {
            k.merges += (prev_components - components) as u64;
            hop_bits += gdh_rekey_hop_bits(sys, mean_live_group_size(&graph, &status));
        }
        prev_components = components;

        // --- live population -------------------------------------------------
        let trusted = status.iter().filter(|&&s| s == St::Trusted).count() as u32;
        let undetected = status.iter().filter(|&&s| s == St::Compromised).count() as u32;
        let live = trusted + undetected;
        if live == 0 {
            return finish(t, FailureCause::Attrition, hop_bits, &k);
        }

        // --- background traffic over actual components ----------------------
        hop_bits += background_rate(sys, &graph, &status) * cfg.dt;

        // --- scenario phase (burst attackers only; no draw otherwise) --------
        if let Some((on, off, _)) = burst {
            let toggle_rate = if burst_active { off } else { on };
            if rng.gen::<f64>() < 1.0 - (-toggle_rate * cfg.dt).exp() {
                burst_active = !burst_active;
            }
        }

        // --- protocol events within the step (thinned Poisson) --------------
        let r_compromise = if trusted > 0 {
            let mut r = sys.attacker.rate(trusted, undetected);
            if focus > 0.0 {
                r *= targeted_capture_multiplier(focus, trusted, undetected);
            }
            if let Some((_, _, mult)) = burst {
                r *= burst_capture_multiplier(mult, burst_active);
            }
            r
        } else {
            0.0
        };
        if trusted > 0 && rng.gen::<f64>() < 1.0 - (-r_compromise * cfg.dt).exp() {
            let victims: Vec<usize> = (0..status.len())
                .filter(|&i| status[i] == St::Trusted)
                .collect();
            let &victim = victims.choose(&mut rng).expect("trusted node exists");
            status[victim] = St::Compromised;
            k.compromises += 1;
            if k.first_compromise.is_none() {
                k.first_compromise = Some(t);
            }
        }

        let d_rate = sys.detection.rate(sys.node_count, trusted, undetected);
        let p_eval = 1.0 - (-(live as f64) * d_rate * cfg.dt).exp();
        if rng.gen::<f64>() < p_eval {
            // evaluate one random live node within its actual component
            let live_nodes: Vec<usize> = (0..status.len())
                .filter(|&i| status[i] != St::Evicted)
                .collect();
            let &target = live_nodes.choose(&mut rng).expect("live node exists");
            let comp = graph.component_of(target);
            let peers: Vec<bool> = live_nodes
                .iter()
                .filter(|&&n| n != target && graph.component_of(n) == comp)
                .map(|&n| status[n] == St::Compromised)
                .collect();
            let target_bad = status[target] == St::Compromised;
            // Targeted attackers press their numeric advantage inside the
            // vote too — same effective collusion as the SPN's Pfn/Pfp.
            let collusion = if focus > 0.0 {
                CollusionModel::Probabilistic(targeted_effective_collusion(
                    sys.collusion.malice_probability(),
                    focus,
                    trusted,
                    undetected,
                ))
            } else {
                sys.collusion
            };
            let o = run_vote_with_collusion(&vote_cfg, target_bad, &peers, collusion, &mut rng);
            hop_bits += o.votes as f64 * sys.vote_packet_bits as f64 * (peers.len() + 1) as f64;
            if o.evicted {
                status[target] = St::Evicted;
                k.evictions += 1;
                if target_bad {
                    k.true_evictions += 1;
                    if k.first_true_detection.is_none() {
                        k.first_true_detection = Some(t);
                    }
                } else {
                    k.false_evictions += 1;
                }
                hop_bits += gdh_rekey_hop_bits(sys, peers.len() as u32);
            }
        }

        let r_leak = sys.group_comm_rate * undetected as f64;
        if undetected > 0 && rng.gen::<f64>() < 1.0 - (-r_leak * cfg.dt).exp() {
            hop_bits += sys.data_packet_bits as f64 * sys.mean_hops;
            if rng.gen::<f64>() < sys.p1_host_false_negative {
                return finish(t, FailureCause::DataLeak, hop_bits, &k);
            }
        }

        // join/leave rekey traffic (population-neutral, as in `des`)
        let r_jl = sys.join_rate * (sys.node_count - live) as f64 + sys.leave_rate * live as f64;
        if rng.gen::<f64>() < 1.0 - (-r_jl * cfg.dt).exp() {
            hop_bits += gdh_rekey_hop_bits(sys, mean_live_group_size(&graph, &status));
        }

        // --- C2 check on real components ------------------------------------
        if any_component_byzantine(&graph, &status) {
            return finish(t, FailureCause::ByzantineCapture, hop_bits, &k);
        }
    }
    finish(cfg.max_time, FailureCause::Censored, hop_bits, &k)
}

fn mean_live_group_size(graph: &ConnectivityGraph, status: &[St]) -> u32 {
    let live: u32 = status.iter().filter(|&&s| s != St::Evicted).count() as u32;
    let comps = graph.component_count().max(1) as u32;
    (live / comps).max(1)
}

fn background_rate(sys: &SystemConfig, graph: &ConnectivityGraph, status: &[St]) -> f64 {
    // live members per component
    let mut live_per_comp = vec![0u32; graph.component_count()];
    for (i, &s) in status.iter().enumerate() {
        if s != St::Evicted {
            live_per_comp[graph.component_of(i) as usize] += 1;
        }
    }
    live_per_comp
        .iter()
        .map(|&n| {
            let nf = n as f64;
            sys.group_comm_rate * nf * sys.data_packet_bits as f64 * nf
                + nf * sys.status_packet_bits as f64 * nf / sys.status_period
                + nf * sys.beacon_bits as f64 / sys.beacon_period
        })
        .sum()
}

fn any_component_byzantine(graph: &ConnectivityGraph, status: &[St]) -> bool {
    let comps = graph.component_count();
    let mut trusted = vec![0u32; comps];
    let mut bad = vec![0u32; comps];
    for (i, &s) in status.iter().enumerate() {
        match s {
            St::Trusted => trusted[graph.component_of(i) as usize] += 1,
            St::Compromised => bad[graph.component_of(i) as usize] += 1,
            St::Evicted => {}
        }
    }
    trusted
        .iter()
        .zip(&bad)
        .any(|(&t, &u)| t + u > 0 && 2 * u > t)
}

/// Aggregate over parallel replications.
#[derive(Debug, Clone)]
pub struct MobilityDesStats {
    /// Time-to-failure statistics (non-censored runs).
    pub mttsf: Welford,
    /// Observed partition-rate statistics (events per second).
    pub partition_rate: Welford,
    /// C1 failures.
    pub c1_failures: u64,
    /// C2 failures.
    pub c2_failures: u64,
    /// Censored runs.
    pub censored: u64,
}

impl Replicate for MobilityDesConfig {
    type Outcome = MobilityDesOutcome;

    fn run_one(&self, seed: u64) -> MobilityDesOutcome {
        run_mobility_des(self, seed)
    }
}

/// Streaming [`MobilityDesOutcome`] aggregation for the shared replication
/// engine (no outcome `Vec`).
#[derive(Clone)]
struct MobilitySink {
    stats: MobilityDesStats,
    confidence: f64,
}

impl MobilitySink {
    fn new(confidence: f64) -> Self {
        Self {
            stats: MobilityDesStats {
                mttsf: Welford::new(),
                partition_rate: Welford::new(),
                c1_failures: 0,
                c2_failures: 0,
                censored: 0,
            },
            confidence,
        }
    }
}

impl OutcomeSink<MobilityDesOutcome> for MobilitySink {
    fn record(&mut self, o: MobilityDesOutcome) {
        let s = &mut self.stats;
        if o.time > 0.0 {
            s.partition_rate.push(o.partitions as f64 / o.time);
        }
        match o.cause {
            FailureCause::DataLeak => {
                s.c1_failures += 1;
                s.mttsf.push(o.time);
            }
            FailureCause::ByzantineCapture | FailureCause::Attrition => {
                s.c2_failures += 1;
                s.mttsf.push(o.time);
            }
            FailureCause::Censored => s.censored += 1,
        }
    }

    fn merge(&mut self, other: Self) {
        let (s, o) = (&mut self.stats, other.stats);
        s.mttsf.merge(&o.mttsf);
        s.partition_rate.merge(&o.partition_rate);
        s.c1_failures += o.c1_failures;
        s.c2_failures += o.c2_failures;
        s.censored += o.censored;
    }

    fn precision(&self) -> Option<f64> {
        self.stats.mttsf.relative_precision(self.confidence)
    }
}

/// Run a [`SamplingPlan`] through the shared replication engine (adaptive
/// plans stop on the MTTSF CI's relative half-width at `confidence`).
/// Returns the stats plus the adaptive verdict (`None` for fixed plans).
///
/// # Panics
/// Panics on an invalid plan (see [`SamplingPlan::validate`]).
pub fn run_mobility_des_sampled(
    cfg: &MobilityDesConfig,
    plan: &SamplingPlan,
    master_seed: u64,
    confidence: f64,
) -> (MobilityDesStats, Option<bool>) {
    let done = run_plan(cfg, plan, master_seed, || MobilitySink::new(confidence));
    (done.sink.stats, done.target_met)
}

/// Run `n` replications in parallel (a fixed [`SamplingPlan`] through the
/// shared replication engine).
pub fn run_mobility_des_replications(
    cfg: &MobilityDesConfig,
    n: u64,
    master_seed: u64,
) -> MobilityDesStats {
    run_mobility_des_sampled(cfg, &SamplingPlan::Fixed(n), master_seed, 0.95).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small, fast-failing configuration.
    fn hot() -> MobilityDesConfig {
        let mut sys = SystemConfig::paper_default();
        sys.node_count = 16;
        sys.vote_participants = 3;
        sys.attacker.base_rate = 1.0 / 300.0;
        sys.detection = sys.detection.with_interval(60.0);
        let mut c = MobilityDesConfig::new(sys);
        c.dt = 2.0;
        c.max_time = 50_000.0;
        c
    }

    #[test]
    fn replication_terminates() {
        let o = run_mobility_des(&hot(), 5);
        assert!(o.time > 0.0);
        assert!(o.hop_bits > 0.0);
        assert!(matches!(
            o.cause,
            FailureCause::DataLeak | FailureCause::ByzantineCapture | FailureCause::Censored
        ));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_mobility_des(&hot(), 9);
        let b = run_mobility_des(&hot(), 9);
        assert_eq!(a.time, b.time);
        assert_eq!(a.compromises, b.compromises);
        assert_eq!(a.hop_bits, b.hop_bits);
    }

    #[test]
    fn censoring_respected() {
        let mut cfg = hot();
        cfg.system.attacker.base_rate = 1e-12;
        cfg.max_time = 50.0;
        let o = run_mobility_des(&cfg, 3);
        assert_eq!(o.cause, FailureCause::Censored);
        assert!((o.time - 50.0).abs() < cfg.dt + 1e-9);
    }

    #[test]
    fn replications_aggregate() {
        let stats = run_mobility_des_replications(&hot(), 8, 11);
        assert_eq!(stats.c1_failures + stats.c2_failures + stats.censored, 8);
        assert!(stats.mttsf.count() > 0);
    }

    #[test]
    fn scenario_deterministic_and_burst_changes_outcome() {
        let mut cfg = hot();
        cfg.scenario.attacker = AttackerStrategy::Burst {
            on_rate: 1.0 / 200.0,
            off_rate: 1.0 / 100.0,
            multiplier: 6.0,
        };
        let a = run_mobility_des(&cfg, 17);
        let b = run_mobility_des(&cfg, 17);
        assert_eq!(a.time, b.time);
        assert_eq!(a.hop_bits, b.hop_bits);
        assert_eq!(a.first_compromise, b.first_compromise);
        // the burst phase draws perturb the event stream vs baseline
        let base = run_mobility_des(&hot(), 17);
        assert!(a.time != base.time || a.hop_bits != base.hop_bits);
    }

    #[test]
    fn targeted_attacker_does_not_outlive_baseline() {
        let mut cfg = hot();
        cfg.scenario.attacker = AttackerStrategy::Targeted { focus: 1.0 };
        let t = run_mobility_des_replications(&cfg, 6, 3);
        let b = run_mobility_des_replications(&hot(), 6, 3);
        // with full-collusion defaults the capture multiplier is the lever;
        // a small sample still should not show the targeted attacker losing
        assert!(t.mttsf.mean() <= b.mttsf.mean() * 1.5);
        assert!(t.mttsf.count() + t.censored == 6);
    }

    #[test]
    fn eviction_split_sums_to_total() {
        let o = run_mobility_des(&hot(), 29);
        assert_eq!(o.evictions, o.true_evictions + o.false_evictions);
        if let (Some(fc), Some(fd)) = (o.first_compromise, o.first_true_detection) {
            assert!(fd >= fc);
        }
    }

    #[test]
    fn sparse_network_sees_partitions() {
        let mut cfg = hot();
        cfg.radio_range = 120.0; // sparse → frequent partitions
        cfg.max_time = 3_000.0;
        cfg.system.attacker.base_rate = 1e-12; // isolate topology dynamics
        let o = run_mobility_des(&cfg, 21);
        assert!(o.partitions > 0, "expected partitions in sparse network");
        assert!(o.merges > 0);
    }
}
