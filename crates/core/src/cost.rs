//! The communication-cost model (the paper's Ĉtotal components).
//!
//! The paper defines `Ĉtotal,i = ĈGC,i + Ĉstatus,i + Ĉrekey,i + ĈIDS,i +
//! Ĉbeacon,i + Ĉmp,i` but omits the algebra; DESIGN.md §2.5 documents the
//! reconstruction implemented here. All quantities are **hop·bits per
//! second**: a unicast of `L` bits crossing `h` hops costs `h·L`; an
//! intra-group flood costs one transmission per member.

use crate::config::{KeyAgreementProtocol, SystemConfig};
use crate::model::Population;
use gcs::gdh::RekeyCost;
use gcs::gdh3::Gdh3Cost;

/// Per-state cost rates, hop·bits/s.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBreakdown {
    /// Group data communication `ĈGC`.
    pub group_comm: f64,
    /// Host-IDS status exchange `Ĉstatus`.
    pub status: f64,
    /// Join/leave rekeying `Ĉrekey`.
    pub rekey: f64,
    /// Voting-IDS traffic `ĈIDS`.
    pub ids: f64,
    /// Beaconing `Ĉbeacon`.
    pub beacon: f64,
    /// Partition/merge rekeying `Ĉmp`.
    pub partition_merge: f64,
}

impl CostBreakdown {
    /// Total cost rate.
    pub fn total(&self) -> f64 {
        self.group_comm + self.status + self.rekey + self.ids + self.beacon + self.partition_merge
    }

    /// Component-wise sum.
    pub fn add(&self, o: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            group_comm: self.group_comm + o.group_comm,
            status: self.status + o.status,
            rekey: self.rekey + o.rekey,
            ids: self.ids + o.ids,
            beacon: self.beacon + o.beacon,
            partition_merge: self.partition_merge + o.partition_merge,
        }
    }

    /// Component-wise scaling.
    pub fn scale(&self, s: f64) -> CostBreakdown {
        CostBreakdown {
            group_comm: self.group_comm * s,
            status: self.status * s,
            rekey: self.rekey * s,
            ids: self.ids * s,
            beacon: self.beacon * s,
            partition_merge: self.partition_merge * s,
        }
    }
}

/// Hop·bits of one rekey for a group of `n_g` members under the configured
/// key agreement protocol: unicast elements cross the mean hop count, the
/// broadcast elements flood the group.
pub fn gdh_rekey_hop_bits(cfg: &SystemConfig, group_size: u32) -> f64 {
    if group_size <= 1 {
        return 0.0;
    }
    let (unicast_elements, broadcast_elements) = match cfg.key_agreement {
        KeyAgreementProtocol::Gdh2 => {
            let cost = RekeyCost::for_group_size(group_size as usize);
            let bcast = (group_size - 1) as u64;
            (cost.total_elements - bcast, bcast)
        }
        KeyAgreementProtocol::Gdh3 => {
            let cost = Gdh3Cost::for_group_size(group_size as usize);
            (
                cost.total_elements - cost.broadcast_elements,
                cost.broadcast_elements,
            )
        }
    };
    let unicast_bits = (unicast_elements * cfg.key_element_bits) as f64;
    let bcast_bits = (broadcast_elements * cfg.key_element_bits) as f64;
    unicast_bits * cfg.mean_hops + bcast_bits * group_size as f64
}

/// Effective join/leave rekey-event rate under the optional batch window:
/// Poisson events at rate `r` aggregated into one GDH run per busy window
/// of length `W` renew at rate `r / (1 + r·W)` (a renewal cycle is one
/// exponential inter-event gap plus the window).
pub fn effective_rekey_rate(raw_rate: f64, batch_window: Option<f64>) -> f64 {
    match batch_window {
        None => raw_rate,
        Some(w) => raw_rate / (1.0 + raw_rate * w),
    }
}

/// Time for one GDH rekey over the shared channel — the paper's `Tcm`
/// (reciprocal of the `T_RK` service rate).
pub fn rekey_time(cfg: &SystemConfig, group_size: u32) -> f64 {
    gdh_rekey_hop_bits(cfg, group_size) / cfg.bandwidth_bps
}

/// Per-state cost rates in the given population state.
pub fn cost_breakdown(cfg: &SystemConfig, pop: &Population) -> CostBreakdown {
    let n = pop.live() as f64;
    if n == 0.0 {
        return CostBreakdown::default();
    }
    let g = pop.groups as f64;
    let n_g = pop.per_group_live();
    let n_g_f = n_g as f64;
    let flood = n_g_f; // one transmission per group member

    // Group data dissemination: n senders × λq × flood cost.
    let group_comm = cfg.group_comm_rate * n * cfg.data_packet_bits as f64 * flood;

    // Periodic status exchange feeding host IDS.
    let status = n * cfg.status_packet_bits as f64 * flood / cfg.status_period;

    // Join/leave rekeying (evictions and partition/merge are charged where
    // they fire).
    let n_init = cfg.node_count as f64;
    let join_leave_rate = cfg.join_rate * (n_init - n).max(0.0) + cfg.leave_rate * n;
    let rekey = effective_rekey_rate(join_leave_rate, cfg.batch_rekey_interval)
        * gdh_rekey_hop_bits(cfg, n_g);

    // Voting IDS: every live node is evaluated at rate D(md); each
    // evaluation makes m voters flood their vote within the group so every
    // member can independently verify the majority tally (Byzantine
    // accountability — a unicast tally could be forged by a compromised
    // collector).
    let d = cfg
        .detection
        .rate(cfg.node_count, pop.trusted, pop.undetected);
    let m_eff = cfg.vote_participants.min(n_g.saturating_sub(1)) as f64;
    let ids = d * n * m_eff * cfg.vote_packet_bits as f64 * flood;

    // One-hop beacons.
    let beacon = n * cfg.beacon_bits as f64 / cfg.beacon_period;

    // Partition/merge: a partition rekeys the two fragments, a merge rekeys
    // the combined group.
    let partition_rate = cfg.partition_rate_per_group * g;
    let merge_rate = if pop.groups >= 2 {
        cfg.merge_rate_per_group * (g - 1.0)
    } else {
        0.0
    };
    let half = (n_g / 2).max(1);
    let partition_merge = partition_rate * 2.0 * gdh_rekey_hop_bits(cfg, half)
        + merge_rate * gdh_rekey_hop_bits(cfg, (2 * n_g).min(pop.live()));

    CostBreakdown {
        group_comm,
        status,
        rekey,
        ids,
        beacon,
        partition_merge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::paper_default()
    }

    fn full_pop() -> Population {
        Population {
            trusted: 100,
            undetected: 0,
            groups: 1,
        }
    }

    #[test]
    fn total_is_sum_of_components() {
        let b = cost_breakdown(&cfg(), &full_pop());
        let s = b.group_comm + b.status + b.rekey + b.ids + b.beacon + b.partition_merge;
        assert!((b.total() - s).abs() < 1e-9);
        assert!(b.total() > 0.0);
    }

    #[test]
    fn empty_population_costs_nothing() {
        let b = cost_breakdown(
            &cfg(),
            &Population {
                trusted: 0,
                undetected: 0,
                groups: 1,
            },
        );
        assert_eq!(b.total(), 0.0);
    }

    #[test]
    fn group_comm_dominates_at_paper_defaults() {
        // λq = 1/min over 100 nodes with 8-kbit packets flooded to the
        // whole group dwarfs beacons and votes.
        let b = cost_breakdown(&cfg(), &full_pop());
        assert!(b.group_comm > b.beacon);
        assert!(b.group_comm > b.ids);
    }

    #[test]
    fn shorter_tids_raises_ids_cost_only() {
        let base = cost_breakdown(&cfg(), &full_pop());
        let fast = cost_breakdown(&cfg().with_tids(5.0), &full_pop());
        assert!(fast.ids > base.ids * 10.0);
        assert!((fast.group_comm - base.group_comm).abs() < 1e-9);
        assert!((fast.beacon - base.beacon).abs() < 1e-9);
    }

    #[test]
    fn more_vote_participants_cost_more() {
        let b3 = cost_breakdown(&cfg().with_vote_participants(3), &full_pop());
        let b9 = cost_breakdown(&cfg().with_vote_participants(9), &full_pop());
        assert!(b9.ids > b3.ids * 2.5);
    }

    #[test]
    fn fewer_members_less_group_comm() {
        let all = cost_breakdown(&cfg(), &full_pop());
        let half = cost_breakdown(
            &cfg(),
            &Population {
                trusted: 50,
                undetected: 0,
                groups: 1,
            },
        );
        // flood factor also shrinks: quadratic effect
        assert!(half.group_comm < all.group_comm / 3.0);
    }

    #[test]
    fn partition_reduces_gc_but_adds_mp() {
        let one = cost_breakdown(&cfg(), &full_pop());
        let two = cost_breakdown(
            &cfg(),
            &Population {
                trusted: 100,
                undetected: 0,
                groups: 2,
            },
        );
        assert!(two.group_comm < one.group_comm);
        assert!(two.partition_merge > one.partition_merge);
    }

    #[test]
    fn gdh_hop_bits_zero_for_singleton() {
        assert_eq!(gdh_rekey_hop_bits(&cfg(), 1), 0.0);
        assert_eq!(gdh_rekey_hop_bits(&cfg(), 0), 0.0);
        assert!(gdh_rekey_hop_bits(&cfg(), 2) > 0.0);
    }

    #[test]
    fn gdh_hop_bits_grow_superlinearly() {
        let c = cfg();
        let g10 = gdh_rekey_hop_bits(&c, 10);
        let g20 = gdh_rekey_hop_bits(&c, 20);
        assert!(g20 > 2.5 * g10, "{g20} vs {g10}");
    }

    #[test]
    fn rekey_time_positive_and_scaled_by_bandwidth() {
        let c = cfg();
        let t = rekey_time(&c, 50);
        assert!(t > 0.0);
        let mut c2 = c.clone();
        c2.bandwidth_bps *= 2.0;
        assert!((rekey_time(&c2, 50) - t / 2.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_algebra() {
        let b = cost_breakdown(&cfg(), &full_pop());
        let doubled = b.add(&b);
        assert!((doubled.total() - 2.0 * b.total()).abs() < 1e-9);
        let scaled = b.scale(0.5);
        assert!((scaled.total() - 0.5 * b.total()).abs() < 1e-9);
    }

    #[test]
    fn gdh3_pricing_cheaper_for_large_groups() {
        let mut c2 = cfg();
        c2.key_agreement = KeyAgreementProtocol::Gdh2;
        let mut c3 = cfg();
        c3.key_agreement = KeyAgreementProtocol::Gdh3;
        // In raw field elements GDH.3 is O(n) vs GDH.2's O(n²), but its
        // final broadcast still floods n−1 elements to n members, so in
        // hop·bits the saving at n = 100 is ~2×, not element-proportional.
        let g2 = gdh_rekey_hop_bits(&c2, 100);
        let g3 = gdh_rekey_hop_bits(&c3, 100);
        assert!(g3 < g2 / 1.5, "GDH.3 {g3:.3e} vs GDH.2 {g2:.3e}");
        // still zero for singleton groups
        assert_eq!(gdh_rekey_hop_bits(&c3, 1), 0.0);
    }

    #[test]
    fn batch_window_reduces_rekey_component_only() {
        let immediate = cost_breakdown(&cfg(), &full_pop());
        let mut batched_cfg = cfg();
        batched_cfg.batch_rekey_interval = Some(600.0);
        let batched = cost_breakdown(&batched_cfg, &full_pop());
        assert!(batched.rekey < immediate.rekey);
        assert_eq!(batched.group_comm, immediate.group_comm);
        assert_eq!(batched.ids, immediate.ids);
    }

    #[test]
    fn effective_rekey_rate_limits() {
        // no window: identity
        assert_eq!(effective_rekey_rate(0.02, None), 0.02);
        // long window: rate approaches 1/W
        let r = effective_rekey_rate(10.0, Some(100.0));
        assert!((r - 0.01).abs() < 1e-3, "{r}");
        // tiny window: barely changes
        let r = effective_rekey_rate(0.001, Some(1.0));
        assert!((r - 0.001).abs() < 1e-5);
        // zero rate stays zero
        assert_eq!(effective_rekey_rate(0.0, Some(10.0)), 0.0);
    }

    #[test]
    fn vote_participants_capped_by_group_size() {
        // tiny group: m capped at n_g − 1
        let pop = Population {
            trusted: 4,
            undetected: 0,
            groups: 1,
        };
        let b9 = cost_breakdown(&cfg().with_vote_participants(9), &pop);
        let b3 = cost_breakdown(&cfg().with_vote_participants(3), &pop);
        assert_eq!(b9.ids, b3.ids);
    }
}
